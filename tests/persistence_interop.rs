//! Persistence and interchange: everything the reproduction materializes
//! must round-trip losslessly so external tooling can verify it — through
//! the JSON strings and, equivalently, through the binary snapshot store.

use entitylink::Dictionary;
use searchlite::{Analyzer, Index, IndexBuilder, QlParams};
use sqe_store::{encode_snapshot, Snapshot, SnapshotContents};
use synthwiki::persist;
use synthwiki::{TestBed, TestBedConfig};

/// Encodes a one-collection snapshot (empty dictionary unless given).
fn snapshot_of(graph: &kbgraph::KbGraph, named: &[(&str, &Index)], dict: &Dictionary) -> Vec<u8> {
    let segment_slices: Vec<Vec<&Index>> = named.iter().map(|(_, i)| vec![*i]).collect();
    let collections: Vec<(&str, &[&Index])> = named
        .iter()
        .map(|(n, _)| *n)
        .zip(segment_slices.iter().map(Vec::as_slice))
        .collect();
    encode_snapshot(&SnapshotContents {
        graph,
        collections: &collections,
        dict,
    })
    .expect("world encodes to a snapshot")
}

#[test]
fn dataset_export_roundtrips() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let ds = bed.dataset("chic2013");
    let coll = bed.collection_of(ds);

    let docs = persist::collection_from_jsonl(&persist::collection_to_jsonl(coll)).unwrap();
    assert_eq!(docs.len(), coll.docs.len());
    let queries = persist::queries_from_json(&persist::queries_to_json(ds)).unwrap();
    assert_eq!(queries.len(), ds.queries.len());

    // The exported qrels agree with ireval's parser.
    let qrels_text = persist::qrels_to_trec(ds);
    let qrels = ireval::trec::parse_qrels(&qrels_text).unwrap();
    for q in &ds.queries {
        let expected = ds.relevant[&q.id].len();
        if expected > 0 {
            assert_eq!(qrels.num_relevant(&q.id), expected, "query {}", q.id);
        }
    }
}

#[test]
fn index_persistence_preserves_full_retrieval() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let coll = &bed.collections[0];
    let mut b = IndexBuilder::new(Analyzer::english());
    for d in coll.docs.iter().take(800) {
        b.add_document(&d.id, &d.text).expect("generated ids are unique");
    }
    let index = b.build();
    let restored = Index::from_json(&index.to_json().unwrap()).unwrap();

    // The same index through the binary snapshot: decode must agree with
    // the JSON round-trip hit for hit.
    let bytes = snapshot_of(&bed.kb.graph, &[("interop", &index)], &Dictionary::new());
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    let from_snap = snap.index("interop").unwrap();

    let s1 = searchlite::Searcher::from_index(index.clone());
    let s2 = searchlite::Searcher::from_index(restored);
    let s3 = searchlite::Searcher::from_index(from_snap.clone());
    let ds = bed.dataset("imageclef");
    for q in ds.queries.iter().take(5) {
        let query = searchlite::Query::parse_text(&q.text, index.analyzer());
        let h1 = searchlite::ql::rank(&s1, &query, QlParams { mu: 15.0 }, 50);
        let h2 = searchlite::ql::rank(&s2, &query, QlParams { mu: 15.0 }, 50);
        assert_eq!(h1, h2, "json round-trip changed query {}", q.id);
        let h3 = searchlite::ql::rank(&s3, &query, QlParams { mu: 15.0 }, 50);
        assert_eq!(h1, h3, "snapshot round-trip changed query {}", q.id);
    }
}

#[test]
fn graph_persistence_preserves_motifs() {
    use sqe::{Motif, MotifSpec};
    let bed = TestBed::generate(&TestBedConfig::small());
    let g = &bed.kb.graph;
    let restored = kbgraph::KbGraph::from_json(&g.to_json().unwrap()).unwrap();

    // The same graph through the binary snapshot (a snapshot always
    // carries at least the graph and dictionary; indexes may be absent).
    let bytes = snapshot_of(g, &[], &Dictionary::new());
    let snap = Snapshot::from_bytes(&bytes).unwrap();

    let tri = MotifSpec::triangular();
    let sq = MotifSpec::square();
    for e in bed.space.entities.iter().step_by(61).take(12) {
        let a = bed.kb.article_of[e.id];
        assert_eq!(tri.expansions(g, a), tri.expansions(&restored, a));
        assert_eq!(sq.expansions(g, a), sq.expansions(&restored, a));
        assert_eq!(
            tri.expansions(g, a),
            tri.expansions(snap.graph(), a),
            "snapshot round-trip changed triangular expansions"
        );
        assert_eq!(
            sq.expansions(g, a),
            sq.expansions(snap.graph(), a),
            "snapshot round-trip changed square expansions"
        );
    }
}

/// The sharded cold-start contract: a sharded service restored from one
/// snapshot file per shard must produce byte-identical run files to the
/// monolithic pipeline over the same corpus.
#[test]
fn per_shard_snapshots_restore_an_identical_sharded_service() {
    use ireval::{trec, Run};
    use searchlite::ShardRouter;
    use sqe::{ServeConfig, ShardedService, SqeConfig, SqePipeline};

    let bed = TestBed::generate(&TestBedConfig::small());
    let dataset = bed.dataset("imageclef");
    let coll = &bed.collections[dataset.collection];
    let shards = 3;
    let router = ShardRouter::with_salt(shards, 0x5eed);

    // Route every document to its shard, remembering the global ingest
    // ordinal each shard-local id corresponds to.
    let mut builders: Vec<IndexBuilder> = (0..shards)
        .map(|_| IndexBuilder::new(Analyzer::english()))
        .collect();
    let mut ordinals: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for (i, d) in coll.docs.iter().enumerate() {
        let s = router.route(&d.id);
        builders[s]
            .add_document(&d.id, &d.text)
            .expect("generated ids are unique");
        ordinals[s].push(i as u32);
    }

    // One snapshot file per shard (store v2), then restore the service
    // from the decoded snapshots alone.
    let snaps: Vec<Snapshot> = builders
        .into_iter()
        .map(|b| {
            let index = b.build();
            let bytes = snapshot_of(&bed.kb.graph, &[("imageclef", &index)], &Dictionary::new());
            Snapshot::from_bytes(&bytes).expect("per-shard snapshot decodes")
        })
        .collect();
    let cfg = SqeConfig {
        ql: QlParams { mu: 15.0 },
        ..SqeConfig::default()
    };
    let restored = ShardedService::from_shard_snapshots(
        &bed.kb.graph,
        &snaps,
        "imageclef",
        router,
        ordinals,
        cfg,
        ServeConfig::default(),
    )
    .expect("per-shard snapshots restore a sharded service");
    assert_eq!(restored.num_shards(), shards);
    assert_eq!(restored.num_docs(), coll.docs.len());

    let batch: Vec<(String, Vec<kbgraph::ArticleId>)> = dataset
        .queries
        .iter()
        .map(|q| {
            let nodes = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
            (q.text.clone(), nodes)
        })
        .collect();
    let mut b = IndexBuilder::new(Analyzer::english());
    for d in &coll.docs {
        b.add_document(&d.id, &d.text).expect("generated ids are unique");
    }
    let index = b.build();
    let pipeline = SqePipeline::from_index(&bed.kb.graph, &index, cfg);
    let run_file = |rankings: &[Vec<String>]| {
        let mut run = Run::new("SQE_C");
        for (q, ids) in dataset.queries.iter().zip(rankings) {
            run.set_ranking(&q.id, ids.clone());
        }
        trec::write_run(&run)
    };
    let want: Vec<Vec<String>> = batch
        .iter()
        .map(|(text, nodes)| pipeline.rank_sqe_c(text, nodes))
        .collect();
    assert_eq!(
        run_file(&restored.run_batch_sqe_c(&batch)),
        run_file(&want),
        "snapshot-restored sharded service diverged from the monolithic pipeline"
    );
}

/// The cold-start contract: a pipeline over a snapshot-loaded world must
/// produce byte-identical trec run files to a pipeline over the freshly
/// built world — for every dataset and every motif configuration.
#[test]
fn snapshot_loaded_pipeline_reproduces_fresh_run_files() {
    use ireval::{trec, Run};
    use sqe::{MotifSet, SqeConfig, SqePipeline};

    let bed = TestBed::generate(&TestBedConfig::small());
    let indexes: Vec<Index> = bed
        .collections
        .iter()
        .map(|coll| {
            let mut b = IndexBuilder::new(Analyzer::english());
            for d in &coll.docs {
                b.add_document(&d.id, &d.text).expect("generated ids are unique");
            }
            b.build()
        })
        .collect();
    let named: Vec<(&str, &Index)> = bed
        .collections
        .iter()
        .map(|c| c.name.as_str())
        .zip(indexes.iter())
        .collect();
    let mut dict = Dictionary::new();
    dict.extend(bed.kb.linker_entries(&bed.space));
    let bytes = snapshot_of(&bed.kb.graph, &named, &dict);
    let snap = Snapshot::from_bytes(&bytes).unwrap();

    let cfg = || SqeConfig {
        ql: QlParams { mu: 15.0 },
        ..SqeConfig::default()
    };
    let run_file = |name: &str, ds: &synthwiki::Dataset, rankings: &[Vec<String>]| {
        let mut run = Run::new(name);
        for (q, ids) in ds.queries.iter().zip(rankings) {
            run.set_ranking(&q.id, ids.clone());
        }
        trec::write_run(&run)
    };

    for ds_name in ["imageclef", "chic2012", "chic2013"] {
        let dataset = bed.dataset(ds_name);
        let coll_name = &bed.collections[dataset.collection].name;
        let fresh = SqePipeline::from_index(&bed.kb.graph, &indexes[dataset.collection], cfg());
        let loaded = SqePipeline::from_snapshot(&snap, coll_name, cfg()).unwrap();
        let batch: Vec<(String, Vec<kbgraph::ArticleId>)> = dataset
            .queries
            .iter()
            .map(|q| {
                let nodes = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
                (q.text.clone(), nodes)
            })
            .collect();

        for (cfg_name, motifs) in [
            ("SQE_T", MotifSet::triangular()),
            ("SQE_S", MotifSet::square()),
            ("SQE_TS", MotifSet::t_and_s()),
        ] {
            let rank = |p: &SqePipeline| -> Vec<Vec<String>> {
                batch
                    .iter()
                    .map(|(text, nodes)| p.external_ids(&p.rank_sqe(text, nodes, &motifs).0))
                    .collect()
            };
            assert_eq!(
                run_file(cfg_name, dataset, &rank(&fresh)),
                run_file(cfg_name, dataset, &rank(&loaded)),
                "{ds_name}/{cfg_name}: snapshot-loaded run file differs from fresh"
            );
        }
        let rank_c = |p: &SqePipeline| -> Vec<Vec<String>> {
            batch
                .iter()
                .map(|(text, nodes)| p.rank_sqe_c(text, nodes))
                .collect()
        };
        assert_eq!(
            run_file("SQE_C", dataset, &rank_c(&fresh)),
            run_file("SQE_C", dataset, &rank_c(&loaded)),
            "{ds_name}/SQE_C: snapshot-loaded run file differs from fresh"
        );
    }
}
