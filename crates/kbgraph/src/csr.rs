//! Compressed sparse row adjacency.
//!
//! `Csr` stores one sorted, deduplicated neighbour list per source node in
//! two flat arrays (offsets + targets). This is the struct-of-arrays layout
//! recommended for graph workloads: one allocation per edge set, cache-local
//! scans, and binary-search membership tests.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A structural defect found while shape-checking a CSR assembled from
/// untrusted bytes (JSON or a binary snapshot). Shape errors cover the
/// cheap always-on length/offset/bounds invariants; the deeper semantic
/// invariants (sorted rows, forward/reverse agreement, DAG-ness) remain
/// the `validate`-feature auditor's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — decode error, never persisted
pub enum CsrShapeError {
    /// The offsets array is empty (a valid CSR has `num_rows + 1` entries).
    EmptyOffsets,
    /// The offsets array describes a different number of rows than the
    /// surrounding structure expects (e.g. titles vs adjacency).
    RowCountMismatch {
        /// Rows described by the offsets array.
        rows: usize,
        /// Rows the surrounding structure expects.
        expected: usize,
    },
    /// The first offset is not zero.
    NonZeroFirstOffset {
        /// The offending first entry.
        first: u32,
    },
    /// `offsets[row + 1] < offsets[row]`: rows would slice backwards.
    NonMonotonicOffsets {
        /// First row at which monotonicity breaks.
        row: usize,
        /// Offset at `row`.
        lo: u32,
        /// Offset at `row + 1`.
        hi: u32,
    },
    /// The terminal offset does not equal the target-array length, so the
    /// flat edge array and the row structure disagree about the edge count.
    TerminalMismatch {
        /// The last offsets entry.
        terminal: u32,
        /// Actual number of stored targets.
        targets: usize,
    },
    /// A target index is outside the destination id space.
    TargetOutOfBounds {
        /// Edge position in the flat target array.
        position: usize,
        /// The offending target.
        target: u32,
        /// Exclusive bound of the destination id space.
        bound: usize,
    },
}

impl fmt::Display for CsrShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CsrShapeError::EmptyOffsets => write!(f, "offsets array is empty"),
            CsrShapeError::RowCountMismatch { rows, expected } => {
                write!(f, "offsets describe {rows} rows, expected {expected}")
            }
            CsrShapeError::NonZeroFirstOffset { first } => {
                write!(f, "first offset is {first}, expected 0")
            }
            CsrShapeError::NonMonotonicOffsets { row, lo, hi } => {
                write!(f, "offsets decrease at row {row} ({lo} -> {hi})")
            }
            CsrShapeError::TerminalMismatch { terminal, targets } => {
                write!(
                    f,
                    "terminal offset {terminal} disagrees with {targets} stored targets"
                )
            }
            CsrShapeError::TargetOutOfBounds {
                position,
                target,
                bound,
            } => {
                write!(
                    f,
                    "target {target} at edge position {position} exceeds id space bound {bound}"
                )
            }
        }
    }
}

impl std::error::Error for CsrShapeError {}

/// Immutable CSR adjacency over `u32` node indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an edge list. `num_sources` fixes the number of
    /// rows; every `(src, dst)` pair must satisfy `src < num_sources`.
    /// Duplicate edges are collapsed; neighbour lists come out sorted.
    ///
    /// # Panics
    ///
    /// Panics if any source index is out of range.
    pub fn from_edges(num_sources: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; num_sources];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_sources + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0u32; edges.len()];
        let mut cursor: Vec<u32> = offsets[..num_sources].to_vec();
        for &(s, d) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = d;
            *c += 1;
        }
        // Sort and dedup each row, then recompact.
        let mut out = Csr {
            offsets: Vec::with_capacity(num_sources + 1),
            targets: Vec::with_capacity(edges.len()),
        };
        out.offsets.push(0);
        for row in 0..num_sources {
            let lo = offsets[row] as usize;
            let hi = offsets[row + 1] as usize;
            let slice = &mut targets[lo..hi];
            slice.sort_unstable();
            let mut prev: Option<u32> = None;
            for &t in slice.iter() {
                if prev != Some(t) {
                    out.targets.push(t);
                    prev = Some(t);
                }
            }
            out.offsets.push(
                u32::try_from(out.targets.len())
                    .expect("invariant: edge count fits in u32 offsets"),
            );
        }
        out
    }

    /// Number of rows (source nodes).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of (deduplicated) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The sorted neighbour list of `src`.
    #[inline]
    pub fn neighbors(&self, src: u32) -> &[u32] {
        let lo = self.offsets[src as usize] as usize;
        let hi = self.offsets[src as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of `src`.
    #[inline]
    pub fn degree(&self, src: u32) -> usize {
        self.neighbors(src).len()
    }

    /// True if the edge `src → dst` exists (binary search).
    #[inline]
    pub fn contains(&self, src: u32, dst: u32) -> bool {
        self.neighbors(src).binary_search(&dst).is_ok()
    }

    /// Builds the reverse adjacency (`dst → src`) with `num_targets` rows.
    pub fn reversed(&self, num_targets: usize) -> Csr {
        let mut edges = Vec::with_capacity(self.targets.len());
        for src in 0..self.num_rows() as u32 {
            for &dst in self.neighbors(src) {
                edges.push((dst, src));
            }
        }
        Csr::from_edges(num_targets, &edges)
    }

    /// Iterates over all edges as `(src, dst)` pairs.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_rows() as u32)
            .flat_map(move |src| self.neighbors(src).iter().map(move |&dst| (src, dst)))
    }

    /// The raw offsets array (`num_rows + 1` entries, starts at 0, ends at
    /// `targets.len()`). Exposed for the structural auditor.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw flat target array. Exposed for the structural auditor.
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Assembles a CSR directly from raw arrays **without validation**.
    /// Callers must uphold the invariants checked by the `validate`-feature
    /// auditor (monotonic offsets ending at `targets.len()`, sorted
    /// deduplicated rows, in-bounds targets); violating them makes accessors
    /// panic or return garbage. Intended for persistence tooling and for the
    /// auditor's own corruption tests.
    pub fn from_raw_parts(offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        Csr { offsets, targets }
    }

    /// Shape-checks a CSR assembled from untrusted bytes: `num_rows + 1`
    /// offsets starting at 0, monotonically non-decreasing, terminating at
    /// `targets.len()`, and every target below `num_targets`. These are
    /// exactly the invariants that make the accessors panic-free; callers
    /// loading persisted graphs must reject structures that fail here
    /// *before* handing them to the query layer. Sortedness, deduplication
    /// and cross-CSR agreement are audited separately (feature `validate`).
    pub fn validate_shape(&self, num_rows: usize, num_targets: usize) -> Result<(), CsrShapeError> {
        let Some(&first) = self.offsets.first() else {
            return Err(CsrShapeError::EmptyOffsets);
        };
        if first != 0 {
            return Err(CsrShapeError::NonZeroFirstOffset { first });
        }
        if self.offsets.len() != num_rows + 1 {
            return Err(CsrShapeError::RowCountMismatch {
                rows: self.offsets.len().saturating_sub(1),
                expected: num_rows,
            });
        }
        for (row, w) in self.offsets.windows(2).enumerate() {
            if let [lo, hi] = *w {
                if hi < lo {
                    return Err(CsrShapeError::NonMonotonicOffsets { row, lo, hi });
                }
            }
        }
        let terminal = self.offsets.last().copied().unwrap_or(0);
        if terminal as usize != self.targets.len() {
            return Err(CsrShapeError::TerminalMismatch {
                terminal,
                targets: self.targets.len(),
            });
        }
        for (position, &target) in self.targets.iter().enumerate() {
            if target as usize >= num_targets {
                return Err(CsrShapeError::TargetOutOfBounds {
                    position,
                    target,
                    bound: num_targets,
                });
            }
        }
        Ok(())
    }

    /// Maximum out-degree over all rows (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_rows() as u32)
            .map(|s| self.degree(s))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let c = Csr::from_edges(0, &[]);
        assert_eq!(c.num_rows(), 0);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.max_degree(), 0);
    }

    #[test]
    fn rows_without_edges() {
        let c = Csr::from_edges(3, &[]);
        assert_eq!(c.num_rows(), 3);
        assert!(c.neighbors(0).is_empty());
        assert!(c.neighbors(2).is_empty());
    }

    #[test]
    fn builds_sorted_rows() {
        let c = Csr::from_edges(2, &[(0, 3), (0, 1), (0, 2), (1, 0)]);
        assert_eq!(c.neighbors(0), &[1, 2, 3]);
        assert_eq!(c.neighbors(1), &[0]);
        assert_eq!(c.num_edges(), 4);
    }

    #[test]
    fn dedups_parallel_edges() {
        let c = Csr::from_edges(1, &[(0, 5), (0, 5), (0, 5)]);
        assert_eq!(c.neighbors(0), &[5]);
        assert_eq!(c.num_edges(), 1);
    }

    #[test]
    fn contains_uses_binary_search() {
        let c = Csr::from_edges(1, &[(0, 2), (0, 4), (0, 8)]);
        assert!(c.contains(0, 4));
        assert!(!c.contains(0, 3));
    }

    #[test]
    fn reverse_roundtrip() {
        let c = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
        let r = c.reversed(3);
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[0, 1]);
        assert_eq!(r.neighbors(0), &[2]);
        // Reversing twice recovers the original edge set.
        let rr = r.reversed(3);
        assert_eq!(rr, c);
    }

    #[test]
    fn iter_edges_covers_all() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let c = Csr::from_edges(3, &edges);
        let mut got: Vec<(u32, u32)> = c.iter_edges().collect();
        got.sort_unstable();
        let mut want = edges.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn max_degree_is_max_row_len() {
        let c = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn validate_shape_accepts_checked_constructions() {
        let c = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(c.validate_shape(3, 3), Ok(()));
        let empty = Csr::from_edges(0, &[]);
        assert_eq!(empty.validate_shape(0, 0), Ok(()));
    }

    #[test]
    fn validate_shape_rejects_each_defect_class() {
        assert_eq!(
            Csr::from_raw_parts(vec![], vec![]).validate_shape(0, 0),
            Err(CsrShapeError::EmptyOffsets)
        );
        assert_eq!(
            Csr::from_raw_parts(vec![1, 1], vec![1]).validate_shape(1, 2),
            Err(CsrShapeError::NonZeroFirstOffset { first: 1 })
        );
        assert_eq!(
            Csr::from_raw_parts(vec![0, 1], vec![0]).validate_shape(2, 1),
            Err(CsrShapeError::RowCountMismatch {
                rows: 1,
                expected: 2
            })
        );
        assert_eq!(
            Csr::from_raw_parts(vec![0, 2, 1], vec![0, 0]).validate_shape(2, 1),
            Err(CsrShapeError::NonMonotonicOffsets {
                row: 1,
                lo: 2,
                hi: 1
            })
        );
        assert_eq!(
            Csr::from_raw_parts(vec![0, 1], vec![0, 0]).validate_shape(1, 1),
            Err(CsrShapeError::TerminalMismatch {
                terminal: 1,
                targets: 2
            })
        );
        assert_eq!(
            Csr::from_raw_parts(vec![0, 1], vec![5]).validate_shape(1, 3),
            Err(CsrShapeError::TargetOutOfBounds {
                position: 0,
                target: 5,
                bound: 3
            })
        );
    }
}
