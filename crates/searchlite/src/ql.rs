//! Dirichlet-smoothed query-likelihood retrieval.
//!
//! Implements the paper's retrieval model (Section 2.3): the query
//! likelihood `P(Q|D) = Π_i P(w_i|D)` with the Dirichlet-smoothed feature
//! function `P(w|D) = (tf_{w,D} + μ·P(w|C)) / (|D| + μ)`, generalized to
//! n-gram (exact phrase) features and per-feature weights:
//!
//! `score(D) = Σ_f (λ_f / Σλ) · log P(f|D)`.
//!
//! Documents are ranked among the candidates that match at least one query
//! feature (standard OR-mode evaluation). Scoring runs against a
//! [`Searcher`], whose merged statistics are exact integer sums over its
//! segments — so the scores (and therefore the ranking) are identical for
//! any partition of the same corpus.

use rustc_hash::FxHashMap;

use crate::index::{DocId, PositionalScratch, TermId};
use crate::searcher::Searcher;
use crate::structured::{Feature, Query};
use crate::topk::TopK;

/// Parameters of the Dirichlet query-likelihood scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QlParams {
    /// Dirichlet smoothing mass μ. Indri's default is 2500; the paper's
    /// short caption-like documents favour a smaller value, configured by
    /// the experiment harness.
    pub mu: f64,
}

impl Default for QlParams {
    fn default() -> Self {
        QlParams { mu: 2500.0 }
    }
}

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matched document.
    pub doc: DocId,
    /// Weighted log query likelihood.
    pub score: f64,
}

/// A query feature resolved against a concrete searcher.
enum ResolvedFeature {
    /// In-vocabulary single term.
    Term { term: TermId, weight: f64, pc: f64 },
    /// Out-of-vocabulary term: contributes only background smoothing.
    OovTerm { weight: f64, pc: f64 },
    /// Exact phrase with precomputed per-document frequencies.
    Phrase {
        tfs: FxHashMap<u32, u32>,
        weight: f64,
        pc: f64,
    },
}

impl ResolvedFeature {
    fn weight(&self) -> f64 {
        match self {
            ResolvedFeature::Term { weight, .. }
            | ResolvedFeature::OovTerm { weight, .. }
            | ResolvedFeature::Phrase { weight, .. } => *weight,
        }
    }
}

/// Resolves the query against the searcher: maps tokens to term ids, runs
/// phrase intersections once, and computes collection probabilities.
/// `pos` is the reusable staging buffer for the positional kernels.
fn resolve(
    searcher: &Searcher,
    query: &Query,
    pos: &mut PositionalScratch,
) -> Vec<ResolvedFeature> {
    let mut resolved = Vec::with_capacity(query.len());
    for wf in query.features() {
        match &wf.feature {
            Feature::Term(tok) => match searcher.term_id(tok) {
                Some(t) => resolved.push(ResolvedFeature::Term {
                    term: t,
                    weight: wf.weight,
                    pc: searcher.collection_prob(Some(t)),
                }),
                None => resolved.push(ResolvedFeature::OovTerm {
                    weight: wf.weight,
                    pc: searcher.collection_prob(None),
                }),
            },
            Feature::Phrase(tokens) => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| searcher.term_id(t)).collect();
                match ids {
                    Some(ids) => {
                        let postings = searcher.phrase_postings_with(&ids, pos);
                        resolved.push(positional_feature(searcher, postings, wf.weight));
                    }
                    None => resolved.push(ResolvedFeature::OovTerm {
                        weight: wf.weight,
                        pc: searcher.collection_prob(None),
                    }),
                }
            }
            Feature::Unordered { tokens, window } => {
                let ids: Option<Vec<TermId>> =
                    tokens.iter().map(|t| searcher.term_id(t)).collect();
                match ids {
                    Some(ids) => {
                        let postings =
                            searcher.unordered_window_postings_with(&ids, *window, pos);
                        resolved.push(positional_feature(searcher, postings, wf.weight));
                    }
                    None => resolved.push(ResolvedFeature::OovTerm {
                        weight: wf.weight,
                        pc: searcher.collection_prob(None),
                    }),
                }
            }
        }
    }
    resolved
}

/// Wraps positional postings (phrase or unordered window) as a resolved
/// feature with an on-the-fly collection probability.
fn positional_feature(
    searcher: &Searcher,
    postings: Vec<(DocId, u32)>,
    weight: f64,
) -> ResolvedFeature {
    let coll: u64 = postings.iter().map(|&(_, tf)| tf as u64).sum();
    let tfs: FxHashMap<u32, u32> = postings.into_iter().map(|(d, tf)| (d.0, tf)).collect();
    ResolvedFeature::Phrase {
        tfs,
        weight,
        pc: searcher.collection_prob_for_count(coll),
    }
}

/// Scores one document under the resolved features.
fn score_resolved(
    searcher: &Searcher,
    features: &[ResolvedFeature],
    doc: DocId,
    mu: f64,
) -> f64 {
    let total: f64 = features.iter().map(|f| f.weight()).sum();
    if total <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let dl = searcher.doc_len(doc) as f64;
    let denom = (dl + mu).ln();
    let mut score = 0.0;
    for f in features {
        let (tf, w, pc) = match f {
            ResolvedFeature::Term { term, weight, pc } => {
                (searcher.tf(*term, doc) as f64, *weight, *pc)
            }
            ResolvedFeature::OovTerm { weight, pc } => (0.0, *weight, *pc),
            ResolvedFeature::Phrase { tfs, weight, pc } => {
                (tfs.get(&doc.0).copied().unwrap_or(0) as f64, *weight, *pc)
            }
        };
        score += w / total * ((tf + mu * pc).ln() - denom);
    }
    score
}

/// Scores a single document (used by feedback and by tests that check the
/// formula against hand calculations).
pub fn score_document(searcher: &Searcher, query: &Query, doc: DocId, params: QlParams) -> f64 {
    let resolved = resolve(searcher, query, &mut PositionalScratch::default());
    score_resolved(searcher, &resolved, doc, params.mu)
}

/// Reusable buffers for [`rank_with_scratch`]: the candidate union, the
/// bounded top-k collector, and the positional staging buffers survive
/// across queries so batch serving does not reallocate per query.
#[derive(Debug)]
pub struct QlScratch {
    candidates: Vec<u32>,
    top: TopK,
    pos: PositionalScratch,
}

impl QlScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        QlScratch {
            candidates: Vec::new(),
            top: TopK::new(0),
            pos: PositionalScratch::new(),
        }
    }

    /// The positional staging buffers, for callers that run phrase or
    /// window intersections outside [`rank_with_scratch`] (the expansion
    /// layer's entity-phrase statistics do).
    pub fn positional(&mut self) -> &mut PositionalScratch {
        &mut self.pos
    }
}

impl Default for QlScratch {
    fn default() -> Self {
        QlScratch::new()
    }
}

/// Ranks the top `k` documents for `query`. Candidates are the documents
/// matching at least one in-vocabulary feature; they are scored with the
/// full weighted log-likelihood (absent features contribute their
/// background-smoothing mass).
pub fn rank(searcher: &Searcher, query: &Query, params: QlParams, k: usize) -> Vec<SearchHit> {
    rank_with_scratch(searcher, query, params, k, &mut QlScratch::new())
}

/// [`rank`] with caller-owned scratch buffers; identical output.
pub fn rank_with_scratch(
    searcher: &Searcher,
    query: &Query,
    params: QlParams,
    k: usize,
    scratch: &mut QlScratch,
) -> Vec<SearchHit> {
    let resolved = resolve(searcher, query, &mut scratch.pos);
    if resolved.is_empty() {
        return Vec::new();
    }
    // Candidate union.
    let candidates = &mut scratch.candidates;
    candidates.clear();
    for f in &resolved {
        match f {
            ResolvedFeature::Term { term, .. } => {
                searcher.push_docs(*term, candidates);
            }
            ResolvedFeature::Phrase { tfs, .. } => {
                candidates.extend(tfs.keys().copied());
            }
            ResolvedFeature::OovTerm { .. } => {}
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    scratch.top.reset(k);
    for &doc in candidates.iter() {
        let s = score_resolved(searcher, &resolved, DocId(doc), params.mu);
        scratch.top.push(doc, s);
    }
    scratch
        .top
        .drain_sorted()
        .into_iter()
        .map(|(doc, score)| SearchHit {
            doc: DocId(doc),
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::index::IndexBuilder;
    use crate::ingest::SegmentedIndex;

    fn build(docs: &[(&str, &str)]) -> Searcher {
        let mut b = IndexBuilder::new(Analyzer::plain());
        for (id, text) in docs {
            b.add_document(id, text).expect("unique test ids");
        }
        Searcher::from_index(b.build())
    }

    const TINY: [(&str, &str); 3] = [
        ("d0", "cable car climbs the hill"), // len 5
        ("d1", "cable car cable car"),       // len 4
        ("d2", "graffiti on the wall"),      // len 4
    ];

    fn tiny() -> Searcher {
        build(&TINY)
    }

    #[test]
    fn dirichlet_formula_matches_hand_calculation() {
        let idx = tiny();
        let q = Query::parse_text("cable", &Analyzer::plain());
        let params = QlParams { mu: 10.0 };
        // P(cable|C) = 3/13; doc d0: tf=1, |D|=5.
        let expected = (1.0f64 + 10.0 * (3.0 / 13.0)).ln() - (5.0f64 + 10.0).ln();
        let got = score_document(&idx, &q, DocId(0), params);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn higher_tf_scores_higher() {
        let idx = tiny();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let hits = rank(&idx, &q, QlParams { mu: 10.0 }, 10);
        assert_eq!(hits[0].doc, DocId(1), "doc with tf=2 per term wins");
        assert_eq!(hits.len(), 2, "only matching docs are candidates");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn phrase_feature_rewards_adjacency() {
        let idx = build(&[
            ("adj", "cable car network"),
            ("sep", "cable network of the car"),
        ]);
        let mut q = Query::new();
        q.push_phrase_tokens(vec!["cable".into(), "car".into()], 1.0);
        let hits = rank(&idx, &q, QlParams { mu: 10.0 }, 10);
        assert_eq!(idx.external_id(hits[0].doc), "adj");
        // The separated doc still appears via background smoothing of the
        // phrase? No: it has phrase tf 0 and is not a candidate.
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn unordered_window_feature_matches_separated_terms() {
        let idx = build(&[
            ("near", "cable red car"),
            ("far", "cable one two three four five six seven car"),
        ]);
        let mut q = Query::new();
        q.push_unordered_text("cable car", &Analyzer::plain(), 4, 1.0);
        let hits = rank(&idx, &q, QlParams { mu: 10.0 }, 10);
        let ids: Vec<&str> = hits.iter().map(|h| idx.external_id(h.doc)).collect();
        assert_eq!(ids, vec!["near"], "only the within-window doc matches");
    }

    #[test]
    fn oov_query_returns_empty() {
        let idx = tiny();
        let q = Query::parse_text("zeppelin", &Analyzer::plain());
        assert!(rank(&idx, &q, QlParams::default(), 10).is_empty());
    }

    #[test]
    fn empty_query_returns_empty() {
        let idx = tiny();
        let q = Query::new();
        assert!(rank(&idx, &q, QlParams::default(), 10).is_empty());
    }

    #[test]
    fn weights_shift_ranking() {
        let idx = build(&[
            ("c", "cable cable cable"),
            ("g", "graffiti graffiti graffiti"),
        ]);
        let mut q = Query::new();
        q.push_term("cable".into(), 0.1);
        q.push_term("graffiti".into(), 0.9);
        let hits = rank(&idx, &q, QlParams { mu: 5.0 }, 10);
        assert_eq!(idx.external_id(hits[0].doc), "g");
        let mut q2 = Query::new();
        q2.push_term("cable".into(), 0.9);
        q2.push_term("graffiti".into(), 0.1);
        let hits2 = rank(&idx, &q2, QlParams { mu: 5.0 }, 10);
        assert_eq!(idx.external_id(hits2[0].doc), "c");
    }

    #[test]
    fn score_is_weight_normalized() {
        // Scaling all weights by a constant must not change scores.
        let idx = tiny();
        let mut q1 = Query::new();
        q1.push_term("cable".into(), 1.0);
        q1.push_term("hill".into(), 2.0);
        let mut q2 = Query::new();
        q2.push_term("cable".into(), 10.0);
        q2.push_term("hill".into(), 20.0);
        let s1 = score_document(&idx, &q1, DocId(0), QlParams::default());
        let s2 = score_document(&idx, &q2, DocId(0), QlParams::default());
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn k_limits_results() {
        let idx = tiny();
        let q = Query::parse_text("the", &Analyzer::plain());
        let hits = rank(&idx, &q, QlParams::default(), 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scratch_reuse_matches_fresh_rank() {
        let idx = tiny();
        let mut scratch = QlScratch::new();
        for text in ["cable car", "the hill", "graffiti", "cable"] {
            let q = Query::parse_text(text, &Analyzer::plain());
            let fresh = rank(&idx, &q, QlParams { mu: 10.0 }, 5);
            let reused = rank_with_scratch(&idx, &q, QlParams { mu: 10.0 }, 5, &mut scratch);
            assert_eq!(fresh, reused, "query {text:?}");
        }
    }

    #[test]
    fn shorter_doc_wins_at_equal_tf() {
        // Same tf, shorter document ⇒ higher P(w|D).
        let idx = build(&[
            ("short", "cable hill"),
            ("long", "cable hill extra words here padding"),
        ]);
        let q = Query::parse_text("cable", &Analyzer::plain());
        let hits = rank(&idx, &q, QlParams { mu: 10.0 }, 10);
        assert_eq!(idx.external_id(hits[0].doc), "short");
    }

    #[test]
    fn segmented_scores_are_bit_identical_to_monolithic() {
        let mono = tiny();
        let mut seg = SegmentedIndex::new(Analyzer::plain());
        for (id, text) in TINY {
            seg.add_document(id, text).expect("unique test ids");
            seg.seal().expect("non-empty buffer seals");
        }
        let segd = seg.searcher();
        assert!(segd.num_segments() > 1, "test must exercise >1 segment");
        for text in ["cable car", "the hill", "cable", "graffiti wall"] {
            let q = Query::parse_text(text, &Analyzer::plain());
            let a = rank(&mono, &q, QlParams { mu: 10.0 }, 10);
            let b = rank(&segd, &q, QlParams { mu: 10.0 }, 10);
            assert_eq!(a, b, "query {text:?}: scores and order must be bit-identical");
        }
        let mut q = Query::new();
        q.push_phrase_tokens(vec!["cable".into(), "car".into()], 1.0);
        assert_eq!(
            rank(&mono, &q, QlParams { mu: 10.0 }, 10),
            rank(&segd, &q, QlParams { mu: 10.0 }, 10)
        );
    }
}
