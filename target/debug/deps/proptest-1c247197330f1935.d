/root/repo/target/debug/deps/proptest-1c247197330f1935.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1c247197330f1935.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1c247197330f1935.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
