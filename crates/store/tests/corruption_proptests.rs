//! Property-based corruption wall for the snapshot store: no sequence
//! of bit flips, truncations or section-table lies may ever be accepted
//! — and none may panic. Every injected fault must surface as a typed
//! [`StoreError`] from [`Snapshot::from_bytes`].
//!
//! The unit tests in `snapshot.rs` already prove the *exhaustive*
//! single-bit case; this wall adds randomized multi-byte damage and the
//! adversarial case where the liar also fixes up the header checksum,
//! so only the structural validation stands between the lie and the
//! pipeline.

use std::sync::OnceLock;

use entitylink::Dictionary;
use kbgraph::GraphBuilder;
use proptest::prelude::*;
use searchlite::{Analyzer, IndexBuilder};
use sqe_store::crc32::crc32;
use sqe_store::format::{HEADER_PREFIX_LEN, SECTION_ENTRY_LEN};
use sqe_store::{encode_snapshot, Snapshot, SnapshotContents};

/// A small but fully populated world: two articles, a category, two
/// collections, a linker dictionary. Encoded once and shared.
fn valid_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let rail = b.add_category("rail transport");
        b.add_article_link(cable, funi);
        b.add_article_link(funi, cable);
        b.add_membership(cable, rail);
        b.add_membership(funi, rail);
        let graph = b.build();

        let mut ib = IndexBuilder::new(Analyzer::english());
        ib.add_document("d0", "the cable car climbs the hill");
        ib.add_document("d1", "a funicular railway in the alps");
        let idx_a = ib.build();
        let mut ib = IndexBuilder::new(Analyzer::english());
        ib.add_document("e0", "history of rail transport");
        let idx_b = ib.build();

        let mut dict = Dictionary::new();
        dict.add("cable car", cable, 1.0);
        dict.add("funicular", funi, 1.0);

        encode_snapshot(&SnapshotContents {
            graph: &graph,
            indexes: &[("alpha", &idx_a), ("beta", &idx_b)],
            dict: &dict,
        })
        .expect("the valid toy world encodes")
    })
}

/// Number of sections in the toy snapshot's table.
fn section_count(bytes: &[u8]) -> usize {
    u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize
}

/// Recomputes the header CRC over `[0, table_end)` and patches it in,
/// so a table lie survives the checksum and must be caught structurally.
fn fix_header_crc(bytes: &mut [u8]) {
    let table_end = HEADER_PREFIX_LEN + section_count(bytes) * SECTION_ENTRY_LEN;
    let crc = crc32(&bytes[..table_end]);
    bytes[table_end..table_end + 4].copy_from_slice(&crc.to_le_bytes());
}

proptest! {
    /// Random bit flips anywhere in the file are always rejected.
    #[test]
    fn random_bit_flip_rejected(at in 0usize..1 << 24, bit in 0u8..8) {
        let bytes = valid_bytes();
        let mut bad = bytes.to_vec();
        let at = at % bad.len();
        bad[at] ^= 1 << bit;
        prop_assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "bit {bit} of byte {at} flipped and the snapshot was accepted"
        );
    }

    /// A handful of random byte overwrites is always rejected (as long
    /// as at least one byte actually changed).
    #[test]
    fn random_byte_smear_rejected(
        edits in prop::collection::vec((0usize..1 << 24, 0u8..=255), 1..8),
    ) {
        let bytes = valid_bytes();
        let mut bad = bytes.to_vec();
        for (at, val) in edits {
            bad[at % bytes.len()] = val;
        }
        prop_assume!(bad != bytes);
        prop_assert!(Snapshot::from_bytes(&bad).is_err());
    }

    /// Every proper prefix of the file is rejected: the table pins the
    /// exact file length, so truncation anywhere is detected.
    #[test]
    fn truncation_rejected(cut in 0usize..1 << 24) {
        let bytes = valid_bytes();
        let keep = cut % bytes.len();
        prop_assert!(
            Snapshot::from_bytes(&bytes[..keep]).is_err(),
            "truncation to {keep} of {} bytes was accepted",
            bytes.len()
        );
    }

    /// Trailing garbage is rejected: the file must end exactly where
    /// the section table says.
    #[test]
    fn trailing_garbage_rejected(tail in prop::collection::vec(0u8..=255, 1..64)) {
        let bytes = valid_bytes();
        let mut bad = bytes.to_vec();
        bad.extend_from_slice(&tail);
        prop_assert!(Snapshot::from_bytes(&bad).is_err());
    }

    /// A section-table lie with a *fixed-up header checksum* is still
    /// rejected. The mutation flips one bit in one field of one entry,
    /// then recomputes the header CRC so the lie is checksum-clean:
    /// only the structural checks (known ids, uniqueness, alignment,
    /// contiguity, exact file end, payload CRCs) can catch it.
    #[test]
    fn checksum_clean_table_lie_rejected(
        entry in 0usize..1 << 8,
        field_byte in 0usize..SECTION_ENTRY_LEN,
        bit in 0u8..8,
    ) {
        let bytes = valid_bytes();
        let mut bad = bytes.to_vec();
        let entry = entry % section_count(bytes);
        let at = HEADER_PREFIX_LEN + entry * SECTION_ENTRY_LEN + field_byte;
        bad[at] ^= 1 << bit;
        fix_header_crc(&mut bad);
        prop_assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "entry {entry} byte {field_byte} bit {bit}: checksum-clean lie accepted"
        );
    }

    /// A checksum-clean lie about the *file itself* — version or section
    /// count — is still rejected.
    #[test]
    fn checksum_clean_prefix_lie_rejected(at in 8usize..HEADER_PREFIX_LEN, bit in 0u8..8) {
        let bytes = valid_bytes();
        let mut bad = bytes.to_vec();
        bad[at] ^= 1 << bit;
        // A larger section count changes where the header CRC lives; the
        // reader must reject the table before trusting any of it, so
        // patching the *original* CRC position is the strongest lie we
        // can tell without also inventing new entries.
        if section_count(&bad) == section_count(bytes) {
            fix_header_crc(&mut bad);
        }
        prop_assert!(Snapshot::from_bytes(&bad).is_err());
    }
}

#[test]
fn empty_and_tiny_inputs_are_rejected_not_panics() {
    for len in 0..64usize {
        let zeros = vec![0u8; len];
        assert!(Snapshot::from_bytes(&zeros).is_err(), "{len} zero bytes accepted");
    }
    assert!(Snapshot::from_bytes(b"SQESNAP\0").is_err());
}

#[test]
fn unknown_section_id_with_clean_checksums_is_rejected() {
    // Rewrite the DICT section id (0x3) to an id no reader knows, keep
    // its payload and CRC intact, and fix the header CRC: the file is
    // checksum-perfect yet must be rejected, because accepting unknown
    // sections would let a v2 writer smuggle state past a v1 reader.
    let bytes = valid_bytes().to_vec();
    let n = section_count(&bytes);
    let mut bad = bytes.clone();
    let mut patched = false;
    for e in 0..n {
        let at = HEADER_PREFIX_LEN + e * SECTION_ENTRY_LEN;
        let id = u32::from_le_bytes([bad[at], bad[at + 1], bad[at + 2], bad[at + 3]]);
        if id == 0x3 {
            bad[at..at + 4].copy_from_slice(&0xDEAD_u32.to_le_bytes());
            patched = true;
        }
    }
    assert!(patched, "toy snapshot must contain the DICT section");
    fix_header_crc(&mut bad);
    assert!(Snapshot::from_bytes(&bad).is_err());
}
