//! Whole-file snapshot assembly: encode, atomic write, verified load.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use entitylink::Dictionary;
use kbgraph::KbGraph;
use searchlite::Index;

use crate::codec::{
    decode_dict, decode_graph, decode_index, decode_meta, encode_dict, encode_graph, encode_index,
    encode_meta, SnapshotMeta,
};
use crate::crc32::crc32;
use crate::error::StoreError;
use crate::format::{
    align8, decode_and_verify_header, decode_header, encode_header, find_section, header_span,
    section_payload, verify_section_crc, SectionEntry, SEC_DICT, SEC_GRAPH, SEC_INDEX_BASE,
    SEC_META,
};

/// Identification string embedded in the META section.
const WRITER: &str = concat!("sqe-store ", env!("CARGO_PKG_VERSION"));

/// Everything a snapshot persists, borrowed from the live pipeline state.
#[derive(Debug, Clone, Copy)]
// lint:allow(persist-types-derive-serde) — borrowed view, hand-serialized
pub struct SnapshotContents<'a> {
    /// The knowledge graph.
    pub graph: &'a KbGraph,
    /// `(collection name, index)` pairs; order is preserved.
    pub indexes: &'a [(&'a str, &'a Index)],
    /// The entity-linker surface-form dictionary.
    pub dict: &'a Dictionary,
}

/// Summary of a snapshot file, cheap to obtain (header walk only).
#[derive(Debug, Clone)]
// lint:allow(persist-types-derive-serde) — diagnostic value, printed not persisted
pub struct SnapshotInfo {
    /// Format version.
    pub version: u32,
    /// Total file size in bytes.
    pub file_len: u64,
    /// Writer string from the META section.
    pub writer: String,
    /// Collection names in index-section order.
    pub collections: Vec<String>,
    /// `(id, len, crc)` of every section, in file order.
    pub sections: Vec<(u32, u64, u32)>,
}

/// Serializes the full snapshot into an in-memory byte image (header,
/// section table, aligned payloads). Deterministic: the same contents
/// always produce identical bytes — the golden-stability test depends
/// on it, and it makes snapshot diffs meaningful.
pub fn encode_snapshot(contents: &SnapshotContents<'_>) -> Result<Vec<u8>, StoreError> {
    let meta = SnapshotMeta {
        writer: WRITER.to_owned(),
        collections: contents
            .indexes
            .iter()
            .map(|(name, _)| (*name).to_owned())
            .collect(),
    };
    let mut payloads: Vec<(u32, Vec<u8>)> = Vec::with_capacity(3 + contents.indexes.len());
    payloads.push((SEC_META, encode_meta(&meta)?));
    payloads.push((SEC_GRAPH, encode_graph(contents.graph)?));
    payloads.push((SEC_DICT, encode_dict(contents.dict)?));
    for (i, (_, index)) in contents.indexes.iter().enumerate() {
        let id = SEC_INDEX_BASE
            .checked_add(u32::try_from(i).unwrap_or(u32::MAX))
            .ok_or_else(|| StoreError::SectionTable {
                detail: format!("too many collections: {}", contents.indexes.len()),
            })?;
        payloads.push((id, encode_index(index)?));
    }

    let mut offset = header_span(payloads.len());
    let mut entries = Vec::with_capacity(payloads.len());
    for (id, payload) in &payloads {
        entries.push(SectionEntry {
            id: *id,
            crc: crc32(payload),
            offset: offset as u64,
            len: payload.len() as u64,
        });
        offset = align8(offset + payload.len());
    }
    let header = encode_header(&entries)?;
    let mut out = Vec::with_capacity(offset);
    out.extend_from_slice(&header);
    for (_, payload) in &payloads {
        out.extend_from_slice(payload);
        out.resize(align8(out.len()), 0);
    }
    Ok(out)
}

/// Writes a snapshot atomically: the image goes to `<path>.tmp` in the
/// same directory, is flushed and synced, then renamed over `path`.
/// Readers therefore only ever observe either the old complete file or
/// the new complete file. Returns the number of bytes written.
pub fn write_snapshot(path: &Path, contents: &SnapshotContents<'_>) -> Result<u64, StoreError> {
    let bytes = encode_snapshot(contents)?;
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        // Leave no orphaned temp file behind a failed publication.
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::Io(e));
    }
    Ok(bytes.len() as u64)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// A fully decoded, fully audited snapshot.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — decoded runtime state
pub struct Snapshot {
    graph: KbGraph,
    indexes: Vec<(String, Index)>,
    dict: Dictionary,
    info: SnapshotInfo,
}

impl Snapshot {
    /// Decodes a snapshot image: header and checksum verification,
    /// section decoding, shape validation, and the full graph/index
    /// audits. Every failure is a typed [`StoreError`].
    ///
    /// Sections decode on parallel scoped threads (graph + dictionary on
    /// one, each index on its own) with the per-section CRC scan folded
    /// into the thread that reads the section, so cold-start wall time
    /// is bounded by the largest section rather than the file size.
    /// Errors are still reported in deterministic section order.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        let entries = decode_header(bytes)?;
        let meta_entry = find_section(&entries, SEC_META)?;
        verify_section_crc(bytes, &meta_entry)?;
        let meta = decode_meta(section_payload(bytes, &meta_entry))?;
        let graph_entry = find_section(&entries, SEC_GRAPH)?;
        let dict_entry = find_section(&entries, SEC_DICT)?;
        let mut index_entries = Vec::with_capacity(meta.collections.len());
        for (i, name) in meta.collections.iter().enumerate() {
            let id = SEC_INDEX_BASE
                .checked_add(u32::try_from(i).unwrap_or(u32::MAX))
                .ok_or_else(|| StoreError::SectionTable {
                    detail: format!("too many collections: {}", meta.collections.len()),
                })?;
            index_entries.push((name.as_str(), id, find_section(&entries, id)?));
        }
        // Every table entry must be one of the sections decoded above:
        // an id this version does not know would otherwise escape both
        // decoding and CRC verification.
        for e in &entries {
            let known = e.id == SEC_META
                || e.id == SEC_GRAPH
                || e.id == SEC_DICT
                || index_entries.iter().any(|(_, id, _)| *id == e.id);
            if !known {
                return Err(StoreError::SectionTable {
                    detail: format!("unknown section id {:#x}", e.id),
                });
            }
        }

        let decode_graph_dict = || -> Result<(KbGraph, Dictionary), StoreError> {
            verify_section_crc(bytes, &graph_entry)?;
            let graph = decode_graph(section_payload(bytes, &graph_entry))?;
            verify_section_crc(bytes, &dict_entry)?;
            let dict = decode_dict(section_payload(bytes, &dict_entry), graph.num_articles())?;
            Ok((graph, dict))
        };
        let decode_one_index = |name: &str, id: u32, entry: &SectionEntry| {
            verify_section_crc(bytes, entry)?;
            decode_index(section_payload(bytes, entry), id, name)
        };
        let parallel = std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1
            && !index_entries.is_empty();
        let (graph, dict, index_results) = if parallel {
            let thread_died = |what: &str| StoreError::Malformed {
                section: SEC_META,
                detail: format!("{what} decoder thread panicked"),
            };
            let (graph_dict, index_results) = std::thread::scope(|s| {
                let graph_dict = s.spawn(decode_graph_dict);
                let index_handles: Vec<_> = index_entries
                    .iter()
                    .map(|(name, id, entry)| {
                        s.spawn(move || decode_one_index(name, *id, entry))
                    })
                    .collect();
                let graph_dict = graph_dict.join();
                let index_results: Vec<_> =
                    index_handles.into_iter().map(|h| h.join()).collect();
                (graph_dict, index_results)
            });
            let (graph, dict) = graph_dict.map_err(|_| thread_died("graph"))??;
            let index_results = index_results
                .into_iter()
                .map(|r| r.unwrap_or_else(|_| Err(thread_died("index"))))
                .collect::<Vec<_>>();
            (graph, dict, index_results)
        } else {
            let (graph, dict) = decode_graph_dict()?;
            let index_results = index_entries
                .iter()
                .map(|(name, id, entry)| decode_one_index(name, *id, entry))
                .collect::<Vec<_>>();
            (graph, dict, index_results)
        };
        let mut indexes = Vec::with_capacity(meta.collections.len());
        for (name, result) in meta.collections.iter().zip(index_results) {
            indexes.push((name.clone(), result?));
        }
        let info = SnapshotInfo {
            version: crate::format::VERSION,
            file_len: bytes.len() as u64,
            writer: meta.writer,
            collections: meta.collections,
            sections: entries.iter().map(|e| (e.id, e.len, e.crc)).collect(),
        };
        Ok(Snapshot {
            graph,
            indexes,
            dict,
            info,
        })
    }

    /// Reads and decodes a snapshot file (see [`Snapshot::from_bytes`]).
    pub fn load(path: &Path) -> Result<Snapshot, StoreError> {
        let bytes = fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Full verification of a snapshot image — everything
    /// [`Snapshot::from_bytes`] checks, reported as a [`SnapshotInfo`].
    pub fn verify(bytes: &[u8]) -> Result<SnapshotInfo, StoreError> {
        Snapshot::from_bytes(bytes).map(|s| s.info)
    }

    /// Header-only inspection: magic, version, header CRC, section CRCs
    /// and the META section — without decoding graph or index payloads.
    pub fn info(bytes: &[u8]) -> Result<SnapshotInfo, StoreError> {
        let entries = decode_and_verify_header(bytes)?;
        let meta_entry = find_section(&entries, SEC_META)?;
        let meta = decode_meta(section_payload(bytes, &meta_entry))?;
        Ok(SnapshotInfo {
            version: crate::format::VERSION,
            file_len: bytes.len() as u64,
            writer: meta.writer,
            collections: meta.collections,
            sections: entries.iter().map(|e| (e.id, e.len, e.crc)).collect(),
        })
    }

    /// The decoded knowledge graph.
    pub fn graph(&self) -> &KbGraph {
        &self.graph
    }

    /// The decoded entity-linker dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Collection names in snapshot order.
    pub fn collections(&self) -> impl Iterator<Item = &str> + '_ {
        self.indexes.iter().map(|(n, _)| n.as_str())
    }

    /// The decoded index of a collection, by name.
    pub fn index(&self, name: &str) -> Result<&Index, StoreError> {
        self.indexes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, i)| i)
            .ok_or_else(|| StoreError::NoSuchCollection {
                name: name.to_owned(),
            })
    }

    /// The decoded index of a collection, by snapshot position.
    pub fn index_at(&self, i: usize) -> Option<&Index> {
        self.indexes.get(i).map(|(_, idx)| idx)
    }

    /// File-level metadata captured at decode time.
    pub fn summary(&self) -> &SnapshotInfo {
        &self.info
    }

    /// Decomposes into owned parts (graph, named indexes, dictionary) so
    /// callers can move them into long-lived service state.
    pub fn into_parts(self) -> (KbGraph, Vec<(String, Index)>, Dictionary) {
        (self.graph, self.indexes, self.dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;
    use searchlite::{Analyzer, IndexBuilder};

    fn toy_contents() -> (KbGraph, Vec<(String, Index)>, Dictionary) {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let rail = b.add_category("rail transport");
        b.add_article_link(cable, funi);
        b.add_article_link(funi, cable);
        b.add_membership(cable, rail);
        b.add_membership(funi, rail);
        let graph = b.build();
        let mut ib = IndexBuilder::new(Analyzer::english());
        ib.add_document("d0", "the cable car climbs");
        ib.add_document("d1", "a funicular railway");
        let index = ib.build();
        let mut dict = Dictionary::new();
        dict.add("cable car", cable, 1.0);
        dict.add("funicular", funi, 1.0);
        (graph, vec![("toy".to_owned(), index)], dict)
    }

    fn toy_bytes() -> Vec<u8> {
        let (graph, indexes, dict) = toy_contents();
        let borrowed: Vec<(&str, &Index)> =
            indexes.iter().map(|(n, i)| (n.as_str(), i)).collect();
        encode_snapshot(&SnapshotContents {
            graph: &graph,
            indexes: &borrowed,
            dict: &dict,
        })
        .unwrap()
    }

    #[test]
    fn full_roundtrip() {
        let bytes = toy_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.graph().num_articles(), 2);
        assert_eq!(snap.index("toy").unwrap().num_docs(), 2);
        assert!(snap.index("missing").is_err());
        assert_eq!(snap.dict().len(), 2);
        assert_eq!(snap.summary().collections, vec!["toy"]);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(toy_bytes(), toy_bytes());
    }

    #[test]
    fn verify_and_info_agree() {
        let bytes = toy_bytes();
        let v = Snapshot::verify(&bytes).unwrap();
        let i = Snapshot::info(&bytes).unwrap();
        assert_eq!(v.sections, i.sections);
        assert_eq!(v.collections, i.collections);
        assert_eq!(v.file_len, bytes.len() as u64);
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join("sqe-store-test-atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.snap");
        let (graph, indexes, dict) = toy_contents();
        let borrowed: Vec<(&str, &Index)> =
            indexes.iter().map(|(n, i)| (n.as_str(), i)).collect();
        let contents = SnapshotContents {
            graph: &graph,
            indexes: &borrowed,
            dict: &dict,
        };
        let written = write_snapshot(&path, &contents).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
        let snap = Snapshot::load(&path).unwrap();
        assert_eq!(snap.graph().num_articles(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = toy_bytes();
        // Exhaustive over bytes, one bit per byte: cheap on the toy world
        // and covers header, table, every payload and the padding.
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "flip at byte {at} was accepted"
            );
        }
    }
}
