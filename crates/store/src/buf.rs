//! Little-endian section encoding and validated decoding.
//!
//! [`SectionBuf`] is the writer; [`Cursor`] is the reader. The reader
//! never panics on malformed input: every read is bounds-checked and
//! returns [`StoreError::Malformed`] (tagged with the section id) when
//! the payload runs short or lies about a length.
//!
//! Bulk numeric arrays are the hot path. The workspace denies `unsafe`,
//! so instead of reinterpreting the byte buffer in place, the decoder
//! does the safe equivalent: a single bounds check followed by a
//! `chunks_exact` + `from_le_bytes` loop, which the compiler lowers to a
//! straight memcpy on little-endian targets. That keeps loading linear
//! in the payload with no per-element validation or allocation beyond
//! the destination `Vec`.

use crate::error::StoreError;

/// Length prefixes are u32; this caps any single array or string so a
/// corrupt prefix can never drive a multi-gigabyte allocation beyond the
/// payload that backs it (the cursor checks the remaining bytes first).
fn too_short(section: u32, what: &'static str, needed: usize, available: usize) -> StoreError {
    StoreError::Malformed {
        section,
        detail: format!("{what}: needs {needed} bytes, {available} remain"),
    }
}

/// Append-only little-endian encoder for one section payload.
#[derive(Debug, Default)]
// lint:allow(persist-types-derive-serde) — transient encoder, hand-serialized
pub struct SectionBuf {
    bytes: Vec<u8>,
}

impl SectionBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SectionBuf { bytes: Vec::new() }
    }

    /// Finishes the section, yielding its payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` length as `u32`, failing if it does not fit.
    pub fn put_len(&mut self, len: usize) -> Result<(), StoreError> {
        let v = u32::try_from(len).map_err(|_| StoreError::Malformed {
            section: 0,
            detail: format!("length {len} exceeds the u32 prefix limit"),
        })?;
        self.put_u32(v);
        Ok(())
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) -> Result<(), StoreError> {
        self.put_len(s.len())?;
        self.bytes.extend_from_slice(s.as_bytes());
        Ok(())
    }

    /// Appends a length-prefixed list of strings.
    pub fn put_str_list(&mut self, items: &[String]) -> Result<(), StoreError> {
        self.put_len(items.len())?;
        for s in items {
            self.put_str(s)?;
        }
        Ok(())
    }

    /// Appends a length-prefixed `u32` array (the bulk format the
    /// zero-copy-style reader consumes in one pass).
    pub fn put_u32_slice(&mut self, items: &[u32]) -> Result<(), StoreError> {
        self.put_len(items.len())?;
        self.bytes.reserve(items.len() * 4);
        for &v in items {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    /// Appends a length-prefixed `u64` array.
    pub fn put_u64_slice(&mut self, items: &[u64]) -> Result<(), StoreError> {
        self.put_len(items.len())?;
        self.bytes.reserve(items.len() * 8);
        for &v in items {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }
}

/// Validated little-endian reader over one section payload.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — transient decoder view
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: u32,
}

impl<'a> Cursor<'a> {
    /// Wraps a section payload; `section` tags every error this cursor
    /// produces.
    pub fn new(bytes: &'a [u8], section: u32) -> Self {
        Cursor {
            bytes,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Malformed {
                section: self.section,
                detail: format!("{} trailing bytes after the last field", self.remaining()),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        match self.bytes.get(self.pos..self.pos + n) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(too_short(self.section, what, n, self.remaining())),
        }
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, StoreError> {
        let s = self.take(4, what)?;
        let mut le = [0u8; 4];
        le.copy_from_slice(s);
        Ok(u32::from_le_bytes(le))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        let s = self.take(8, what)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(s);
        Ok(u64::from_le_bytes(le))
    }

    /// Reads an `f64` by bit pattern, rejecting NaN (a NaN smuggled into
    /// persisted weights would poison every downstream sort).
    pub fn get_finite_f64(&mut self, what: &'static str) -> Result<f64, StoreError> {
        let s = self.take(8, what)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(s);
        let v = f64::from_le_bytes(le);
        if !v.is_finite() {
            return Err(StoreError::Malformed {
                section: self.section,
                detail: format!("{what}: non-finite value {v}"),
            });
        }
        Ok(v)
    }

    /// Reads a u32 length prefix, pre-validated against the bytes that
    /// must back `elem_size`-byte elements.
    fn get_len(&mut self, elem_size: usize, what: &'static str) -> Result<usize, StoreError> {
        let len = self.get_u32(what)? as usize;
        let needed = len.checked_mul(elem_size).ok_or_else(|| StoreError::Malformed {
            section: self.section,
            detail: format!("{what}: length {len} overflows"),
        })?;
        if needed > self.remaining() {
            return Err(too_short(self.section, what, needed, self.remaining()));
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, StoreError> {
        let len = self.get_len(1, what)?;
        let s = self.take(len, what)?;
        String::from_utf8(s.to_vec()).map_err(|_| StoreError::Malformed {
            section: self.section,
            detail: format!("{what}: invalid UTF-8"),
        })
    }

    /// Reads a length-prefixed list of strings.
    pub fn get_str_list(&mut self, what: &'static str) -> Result<Vec<String>, StoreError> {
        let len = self.get_len(1, what)?;
        let mut out = Vec::with_capacity(len.min(self.remaining()));
        for _ in 0..len {
            out.push(self.get_str(what)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u32` array in one validated pass: a
    /// single bounds check, then a bulk `chunks_exact` conversion the
    /// compiler turns into a memcpy on little-endian targets.
    pub fn get_u32_vec(&mut self, what: &'static str) -> Result<Vec<u32>, StoreError> {
        let len = self.get_len(4, what)?;
        let raw = self.take(len * 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| {
                let mut le = [0u8; 4];
                le.copy_from_slice(c);
                u32::from_le_bytes(le)
            })
            .collect())
    }

    /// Reads a length-prefixed `u64` array (bulk path, as above).
    pub fn get_u64_vec(&mut self, what: &'static str) -> Result<Vec<u64>, StoreError> {
        let len = self.get_len(8, what)?;
        let raw = self.take(len * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut le = [0u8; 8];
                le.copy_from_slice(c);
                u64::from_le_bytes(le)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_bulk_roundtrip() {
        let mut b = SectionBuf::new();
        b.put_u32(7);
        b.put_u64(1 << 40);
        b.put_f64(-2.5);
        b.put_str("snapshot").unwrap();
        b.put_u32_slice(&[1, 2, 3]).unwrap();
        b.put_u64_slice(&[u64::MAX]).unwrap();
        b.put_str_list(&["a".to_owned(), "b".to_owned()]).unwrap();
        let bytes = b.into_bytes();
        let mut c = Cursor::new(&bytes, 9);
        assert_eq!(c.get_u32("a").unwrap(), 7);
        assert_eq!(c.get_u64("b").unwrap(), 1 << 40);
        assert_eq!(c.get_finite_f64("c").unwrap(), -2.5);
        assert_eq!(c.get_str("d").unwrap(), "snapshot");
        assert_eq!(c.get_u32_vec("e").unwrap(), vec![1, 2, 3]);
        assert_eq!(c.get_u64_vec("f").unwrap(), vec![u64::MAX]);
        assert_eq!(c.get_str_list("g").unwrap(), vec!["a", "b"]);
        c.finish().unwrap();
    }

    #[test]
    fn lying_length_prefix_is_typed_error() {
        // Claims 1000 u32s but provides 4 bytes.
        let mut b = SectionBuf::new();
        b.put_u32(1000);
        b.put_u32(42);
        let bytes = b.into_bytes();
        let mut c = Cursor::new(&bytes, 5);
        assert!(matches!(
            c.get_u32_vec("lie"),
            Err(StoreError::Malformed { section: 5, .. })
        ));
    }

    #[test]
    fn nan_f64_rejected() {
        let mut b = SectionBuf::new();
        b.put_f64(f64::NAN);
        let bytes = b.into_bytes();
        let mut c = Cursor::new(&bytes, 3);
        assert!(c.get_finite_f64("w").is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = SectionBuf::new();
        b.put_u32(1);
        b.put_u32(2);
        let bytes = b.into_bytes();
        let mut c = Cursor::new(&bytes, 1);
        assert_eq!(c.get_u32("x").unwrap(), 1);
        assert!(c.finish().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut b = SectionBuf::new();
        b.put_len(2).unwrap();
        let mut bytes = b.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut c = Cursor::new(&bytes, 2);
        assert!(matches!(
            c.get_str("s"),
            Err(StoreError::Malformed { section: 2, .. })
        ));
    }
}
