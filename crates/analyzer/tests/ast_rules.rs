//! Fixture-pair tests for the v2 cross-file rules: every rule's bad
//! fixture must produce at least one finding and its good fixture none,
//! plus suppression-scoping tests for `lint:allow-file`.

use analyzer::{lint_sources, Diagnostic, LintConfig, Severity};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn lint(files: &[(&str, String)]) -> Vec<Diagnostic> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.clone()))
        .collect();
    lint_sources(&owned, &LintConfig::default())
}

fn of_rule<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

/// An entry file whose `rank` reaches into the fixture helper cross-file.
const ENTRY: &str = "pub fn rank(xs: &[u32]) -> u32 { kbgraph::lookup(xs, 0) }";

#[test]
fn panic_reachability_bad_fixture_flagged_cross_file() {
    let diags = lint(&[
        ("crates/searchlite/src/ql.rs", ENTRY.to_string()),
        ("crates/kbgraph/src/lookup.rs", fixture("panic_reach_bad.rs")),
    ]);
    let hits = of_rule(&diags, "panic-reachability");
    assert!(!hits.is_empty(), "bad fixture must be flagged: {diags:?}");
    assert!(
        hits.iter()
            .all(|d| d.path == "crates/kbgraph/src/lookup.rs" && d.severity == Severity::Error),
        "the finding sits at the panic site, in the callee's file: {hits:?}"
    );
    assert!(
        hits[0].message.contains("rank"),
        "message must carry the entry trace: {}",
        hits[0].message
    );
}

#[test]
fn panic_reachability_good_fixture_clean() {
    let diags = lint(&[
        ("crates/searchlite/src/ql.rs", ENTRY.to_string()),
        ("crates/kbgraph/src/lookup.rs", fixture("panic_reach_good.rs")),
    ]);
    assert!(of_rule(&diags, "panic-reachability").is_empty(), "{diags:?}");
}

#[test]
fn hash_iteration_bad_fixture_flagged() {
    let diags = lint(&[(
        "crates/synthwiki/src/report.rs",
        fixture("hash_iter_bad.rs"),
    )]);
    let hits = of_rule(&diags, "hash-iteration-determinism");
    assert_eq!(hits.len(), 2, "collect chain AND for loop: {diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn hash_iteration_good_fixture_clean() {
    let diags = lint(&[(
        "crates/synthwiki/src/report.rs",
        fixture("hash_iter_good.rs"),
    )]);
    assert!(
        of_rule(&diags, "hash-iteration-determinism").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn lossy_cast_bad_fixture_flagged() {
    let diags = lint(&[("crates/kbgraph/src/seal.rs", fixture("lossy_cast_bad.rs"))]);
    let hits = of_rule(&diags, "lossy-id-cast");
    assert_eq!(hits.len(), 2, "len cast AND pos cast: {diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn lossy_cast_good_fixture_clean() {
    let diags = lint(&[("crates/kbgraph/src/seal.rs", fixture("lossy_cast_good.rs"))]);
    assert!(of_rule(&diags, "lossy-id-cast").is_empty(), "{diags:?}");
}

#[test]
fn lossy_cast_out_of_scope_path_ignored() {
    let diags = lint(&[("crates/bench/src/seal.rs", fixture("lossy_cast_bad.rs"))]);
    assert!(of_rule(&diags, "lossy-id-cast").is_empty(), "{diags:?}");
}

#[test]
fn audit_mutation_bad_fixture_flagged() {
    let diags = lint(&[(
        "crates/kbgraph/src/patch.rs",
        fixture("audit_mutation_bad.rs"),
    )]);
    let hits = of_rule(&diags, "must-audit-after-mutation");
    assert_eq!(hits.len(), 2, "raw_mut AND from_raw_parts: {diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn audit_mutation_good_fixture_clean() {
    let diags = lint(&[(
        "crates/kbgraph/src/patch.rs",
        fixture("audit_mutation_good.rs"),
    )]);
    assert!(
        of_rule(&diags, "must-audit-after-mutation").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn seal_merge_bad_fixture_flagged() {
    let diags = lint(&[(
        "crates/searchlite/src/ingest.rs",
        fixture("seal_merge_bad.rs"),
    )]);
    let hits = of_rule(&diags, "must-audit-after-mutation");
    assert_eq!(
        hits.len(),
        2,
        "build() in seal AND in merge, but not in freeze: {diags:?}"
    );
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn seal_merge_good_fixture_clean() {
    let diags = lint(&[(
        "crates/searchlite/src/ingest.rs",
        fixture("seal_merge_good.rs"),
    )]);
    assert!(
        of_rule(&diags, "must-audit-after-mutation").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn snapshot_load_bad_fixture_flagged() {
    let diags = lint(&[(
        "crates/store/src/loader.rs",
        fixture("snapshot_load_bad.rs"),
    )]);
    let hits = of_rule(&diags, "must-audit-after-mutation");
    assert_eq!(
        hits.len(),
        3,
        "two from_raw_parts AND one from_parts: {diags:?}"
    );
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn snapshot_load_good_fixture_clean() {
    let diags = lint(&[(
        "crates/store/src/loader.rs",
        fixture("snapshot_load_good.rs"),
    )]);
    assert!(
        of_rule(&diags, "must-audit-after-mutation").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn audit_mutation_test_code_exempt() {
    let src = format!("#[cfg(test)]\nmod tests {{\n{}\n}}", fixture("audit_mutation_bad.rs"));
    let diags = lint(&[("crates/kbgraph/src/patch.rs", src)]);
    assert!(
        of_rule(&diags, "must-audit-after-mutation").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn lock_order_bad_fixture_flagged_both_directions() {
    let diags = lint(&[("crates/x/src/lib.rs", fixture("lock_order_bad.rs"))]);
    let hits = of_rule(&diags, "lock-order-consistency");
    assert_eq!(hits.len(), 2, "one finding per conflicting function: {diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn lock_order_good_fixture_clean() {
    let diags = lint(&[("crates/x/src/lib.rs", fixture("lock_order_good.rs"))]);
    assert!(of_rule(&diags, "lock-order-consistency").is_empty(), "{diags:?}");
}

#[test]
fn lock_blocking_bad_fixture_flagged() {
    let diags = lint(&[("crates/x/src/lib.rs", fixture("lock_blocking_bad.rs"))]);
    let hits = of_rule(&diags, "no-blocking-while-locked");
    assert_eq!(hits.len(), 1, "seal under the live guard: {diags:?}");
    assert!(hits[0].severity == Severity::Error);
    assert!(hits[0].message.contains("live"), "{}", hits[0].message);
}

#[test]
fn lock_blocking_good_fixture_clean() {
    let diags = lint(&[("crates/x/src/lib.rs", fixture("lock_blocking_good.rs"))]);
    assert!(of_rule(&diags, "no-blocking-while-locked").is_empty(), "{diags:?}");
}

#[test]
fn lock_blocking_reaches_through_helpers_cross_file() {
    // The expensive name sits two hops away: tick holds the guard and
    // calls refresh, which calls force_merge.
    let helper = "pub fn refresh(idx: &mut Index) { idx.force_merge(); }";
    let entry = "pub fn tick(&self) { let g = self.live.lock(); refresh(&mut g); }";
    let diags = lint(&[
        ("crates/x/src/lib.rs", entry.to_string()),
        ("crates/y/src/lib.rs", helper.to_string()),
    ]);
    let hits = of_rule(&diags, "no-blocking-while-locked");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert!(
        hits[0].message.contains("refresh"),
        "message names the call that reaches the slow work: {}",
        hits[0].message
    );
}

#[test]
fn lock_blocking_maint_lock_is_allowlisted() {
    let src = "pub fn maintain(&self) { let g = self.maint.lock(); self.task.seal(); }";
    let diags = lint(&[("crates/x/src/lib.rs", src.to_string())]);
    assert!(
        of_rule(&diags, "no-blocking-while-locked").is_empty(),
        "the maint lock exists to be held across slow work: {diags:?}"
    );
}

#[test]
fn guard_escape_bad_fixture_flagged_for_return_and_store() {
    let diags = lint(&[("crates/x/src/lib.rs", fixture("guard_escape_bad.rs"))]);
    let hits = of_rule(&diags, "guard-escape");
    assert_eq!(hits.len(), 2, "returned AND stored guard: {diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn guard_escape_good_fixture_clean() {
    let diags = lint(&[("crates/x/src/lib.rs", fixture("guard_escape_good.rs"))]);
    assert!(of_rule(&diags, "guard-escape").is_empty(), "{diags:?}");
}

#[test]
fn float_taint_bad_fixture_flagged() {
    let diags = lint(&[("crates/x/src/lib.rs", fixture("float_taint_bad.rs"))]);
    let hits = of_rule(&diags, "float-taint-before-merge");
    assert!(!hits.is_empty(), "float round-trip in a stat merge: {diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn float_taint_good_fixture_clean() {
    let diags = lint(&[("crates/x/src/lib.rs", fixture("float_taint_good.rs"))]);
    assert!(
        of_rule(&diags, "float-taint-before-merge").is_empty(),
        "integer merges and read-only float accessors are fine: {diags:?}"
    );
}

#[test]
fn allow_file_suppresses_whole_file() {
    let src = format!(
        "// lint:allow-file(hash-iteration-determinism)\n{}",
        fixture("hash_iter_bad.rs")
    );
    let diags = lint(&[("crates/synthwiki/src/report.rs", src)]);
    assert!(
        of_rule(&diags, "hash-iteration-determinism").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn allow_file_does_not_leak_across_files() {
    let suppressed = format!(
        "// lint:allow-file(hash-iteration-determinism)\n{}",
        fixture("hash_iter_bad.rs")
    );
    let diags = lint(&[
        ("crates/synthwiki/src/report.rs", suppressed),
        ("crates/synthwiki/src/other.rs", fixture("hash_iter_bad.rs")),
    ]);
    let hits = of_rule(&diags, "hash-iteration-determinism");
    assert_eq!(hits.len(), 2, "only the unsuppressed file: {diags:?}");
    assert!(hits.iter().all(|d| d.path == "crates/synthwiki/src/other.rs"));
}

#[test]
fn allow_file_must_be_in_header() {
    // The marker after the first code token is a line-allow misuse, not a
    // file-wide suppression.
    let src = format!(
        "{}\n// lint:allow-file(hash-iteration-determinism)\n",
        fixture("hash_iter_bad.rs")
    );
    let diags = lint(&[("crates/synthwiki/src/report.rs", src)]);
    assert!(
        !of_rule(&diags, "hash-iteration-determinism").is_empty(),
        "trailing allow-file must not suppress: {diags:?}"
    );
}
