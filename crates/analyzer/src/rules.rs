//! Lint rules.
//!
//! Every rule walks the token stream produced by [`crate::lexer`] and emits
//! [`Diagnostic`]s. Rules are registered in [`registry`]; `sqe-lint rules`
//! prints the table. Suppression (`// lint:allow(rule)`) and severity
//! overrides are applied by the engine, not by the rules themselves.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};

/// Per-file context shared by all rules.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Code tokens only (comments stripped).
    pub code: Vec<&'a Tok>,
    /// First line of a `#[cfg(test)]` attribute, if any. Test modules sit
    /// at the end of files in this workspace, so everything at or after
    /// this line is treated as test code.
    pub cfg_test_line: Option<u32>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context from a full token stream.
    pub fn new(rel: &'a str, toks: &'a [Tok]) -> Self {
        let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mut cfg_test_line = None;
        for w in code.windows(7) {
            if w[0].is_punct('#')
                && w[1].is_punct('[')
                && w[2].is_ident("cfg")
                && w[3].is_punct('(')
                && w[4].is_ident("test")
                && w[5].is_punct(')')
                && w[6].is_punct(']')
            {
                cfg_test_line = Some(w[0].line);
                break;
            }
        }
        FileCtx {
            rel,
            code,
            cfg_test_line,
        }
    }

    /// True when `line` falls inside the file's trailing test module.
    fn in_tests(&self, line: u32) -> bool {
        self.cfg_test_line.is_some_and(|t| line >= t)
    }
}

/// A lint rule: a named check over one file's token stream.
pub trait Rule {
    /// Stable kebab-case rule name used in diagnostics, config, and
    /// `lint:allow(...)` comments.
    fn name(&self) -> &'static str;
    /// One-line description for `sqe-lint rules`.
    fn description(&self) -> &'static str;
    /// Severity when the config does not override it.
    fn default_severity(&self) -> Severity;
    /// Emits diagnostics for `ctx` at effective severity `sev`.
    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>);
}

/// All registered rules, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NanUnsafeSort),
        Box::new(NondeterministicRng),
        Box::new(PanickingHotPath),
        Box::new(PersistTypesDeriveSerde),
    ]
}

/// Index of the code token closing the paren group opened at `open`
/// (which must be `(`), or `None` if unbalanced.
fn matching_paren(code: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// `no-nan-unsafe-sort`: comparator closures passed to sort-family
/// functions must not rank floats with `partial_cmp`, which is not a total
/// order (NaN compares `None` and silently collapses to `Equal` in the
/// usual `unwrap_or` idiom, corrupting ranking determinism). Use the
/// shared `scorecmp` helpers or `f64::total_cmp`.
pub struct NanUnsafeSort;

/// Sort-family methods whose closure argument is a comparator.
const SORT_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

impl Rule for NanUnsafeSort {
    fn name(&self) -> &'static str {
        "no-nan-unsafe-sort"
    }

    fn description(&self) -> &'static str {
        "comparators passed to sort_by/min_by/max_by must use scorecmp or total_cmp, not partial_cmp"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            let t = code[i];
            if t.kind != TokKind::Ident || !SORT_FNS.contains(&t.text.as_str()) {
                continue;
            }
            if i + 1 >= code.len() || !code[i + 1].is_punct('(') {
                continue;
            }
            let Some(close) = matching_paren(code, i + 1) else {
                continue;
            };
            for arg in &code[i + 2..close] {
                if arg.is_ident("partial_cmp") {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: sev,
                        path: ctx.rel.to_string(),
                        line: arg.line,
                        message: format!(
                            "`partial_cmp` inside a `{}` comparator is not a total order \
                             over floats; use `scorecmp::cmp_scores`/`by_score_desc_then_id` \
                             or `f64::total_cmp`",
                            t.text
                        ),
                    });
                }
            }
        }
    }
}

/// `no-nondeterministic-rng`: experiment code must stay reproducible.
/// `thread_rng` (OS-seeded) and `SystemTime::now` (wall clock) are banned
/// outside `benches/` and test modules; seed explicitly instead.
pub struct NondeterministicRng;

impl Rule for NondeterministicRng {
    fn name(&self) -> &'static str {
        "no-nondeterministic-rng"
    }

    fn description(&self) -> &'static str {
        "thread_rng/SystemTime::now are banned outside benches; seed RNGs explicitly"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>) {
        if ctx.rel.starts_with("benches/") || ctx.rel.contains("/benches/") {
            return;
        }
        let code = &ctx.code;
        for i in 0..code.len() {
            let t = code[i];
            if ctx.in_tests(t.line) {
                continue;
            }
            if t.is_ident("thread_rng") {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: "`thread_rng` is OS-seeded and breaks run-to-run \
                              reproducibility; construct a seeded RNG instead"
                        .to_string(),
                });
            }
            // `SystemTime :: now`
            if t.is_ident("SystemTime")
                && i + 3 < code.len()
                && code[i + 1].is_punct(':')
                && code[i + 2].is_punct(':')
                && code[i + 3].is_ident("now")
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: "`SystemTime::now` injects wall-clock nondeterminism; \
                              thread timing state through explicitly"
                        .to_string(),
                });
            }
        }
    }
}

/// `no-panicking-hot-path`: inner-loop files must not contain `.unwrap()`
/// (use `expect` with a message naming the violated invariant, or handle
/// the case). Bare slice indexing in the same files is reported one
/// severity step lower, since bounds are often locally provable.
pub struct PanickingHotPath;

/// Files on the query/expansion hot path.
const HOT_FILES: &[&str] = &[
    "crates/kbgraph/src/csr.rs",
    "crates/searchlite/src/topk.rs",
    "crates/searchlite/src/ql.rs",
    "crates/searchlite/src/index.rs",
    "crates/core/src/motif.rs",
];

/// Keywords that may directly precede an array *literal* `[...]`, which is
/// not indexing.
const PRE_LITERAL_KEYWORDS: &[&str] = &[
    "return", "break", "in", "if", "while", "match", "else", "let", "mut", "ref", "move", "as",
    "box", "yield",
];

impl Rule for PanickingHotPath {
    fn name(&self) -> &'static str {
        "no-panicking-hot-path"
    }

    fn description(&self) -> &'static str {
        "unwrap() (and, at demoted severity, slice indexing) is banned in hot-path files"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>) {
        if !HOT_FILES.contains(&ctx.rel) {
            return;
        }
        let code = &ctx.code;
        for i in 0..code.len() {
            let t = code[i];
            if ctx.in_tests(t.line) {
                continue;
            }
            // `. unwrap ( )`
            if t.is_punct('.')
                && i + 3 < code.len()
                && code[i + 1].is_ident("unwrap")
                && code[i + 2].is_punct('(')
                && code[i + 3].is_punct(')')
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: ctx.rel.to_string(),
                    line: code[i + 1].line,
                    message: "`.unwrap()` on the query hot path panics without context; \
                              use `expect(\"invariant: ...\")` naming the violated \
                              invariant, or handle the case"
                        .to_string(),
                });
            }
            // Expression-position `[`: previous code token is an identifier
            // (not a keyword that starts an array literal) or a closing
            // bracket. Attribute `#[...]`, types `&[T]`/`: [T; N]`, and
            // `vec![...]` are excluded by their preceding token.
            if t.is_punct('[') && i > 0 {
                let prev = code[i - 1];
                let indexing = match prev.kind {
                    TokKind::Ident => {
                        !PRE_LITERAL_KEYWORDS.contains(&prev.text.as_str())
                            && !prev.text.starts_with('\'')
                    }
                    TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                    _ => false,
                };
                let demoted = sev.demoted();
                if indexing && demoted > Severity::Allow {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: demoted,
                        path: ctx.rel.to_string(),
                        line: t.line,
                        message: "bare slice indexing on the hot path can panic; prefer \
                                  `get`, iterators, or a comment-proved bound"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// `persist-types-derive-serde`: types in persisted-state files (the CSR
/// graph and the inverted index, both serialized via `to_json`/`from_json`)
/// must derive `Serialize` and `Deserialize` so persistence cannot
/// silently lose fields. Transient helpers opt out with
/// `// lint:allow(persist-types-derive-serde)`.
pub struct PersistTypesDeriveSerde;

/// Files holding persisted state.
const PERSIST_FILES: &[&str] = &[
    "crates/kbgraph/src/csr.rs",
    "crates/kbgraph/src/graph.rs",
    "crates/searchlite/src/index.rs",
];

impl Rule for PersistTypesDeriveSerde {
    fn name(&self) -> &'static str {
        "persist-types-derive-serde"
    }

    fn description(&self) -> &'static str {
        "top-level types in persisted-state files must derive Serialize and Deserialize"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>) {
        if !PERSIST_FILES.contains(&ctx.rel) {
            return;
        }
        let code = &ctx.code;
        let mut depth = 0i32;
        let mut pending_derives: Vec<String> = Vec::new();
        let mut i = 0usize;
        while i < code.len() {
            let t = code[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    pending_derives.clear();
                }
            } else if depth == 0 {
                if t.is_punct(';') {
                    pending_derives.clear();
                } else if t.is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[') {
                    // Attribute: collect idents; record derive contents.
                    let mut brackets = 0i32;
                    let mut idents = Vec::new();
                    let mut j = i + 1;
                    while j < code.len() {
                        if code[j].is_punct('[') {
                            brackets += 1;
                        } else if code[j].is_punct(']') {
                            brackets -= 1;
                            if brackets == 0 {
                                break;
                            }
                        } else if code[j].kind == TokKind::Ident {
                            idents.push(code[j].text.clone());
                        }
                        j += 1;
                    }
                    if idents.first().is_some_and(|f| f == "derive") {
                        pending_derives.extend(idents.into_iter().skip(1));
                    }
                    i = j + 1;
                    continue;
                } else if (t.is_ident("struct") || t.is_ident("enum"))
                    && i + 1 < code.len()
                    && code[i + 1].kind == TokKind::Ident
                {
                    let name = &code[i + 1].text;
                    let has = |d: &str| pending_derives.iter().any(|p| p == d);
                    if !has("Serialize") || !has("Deserialize") {
                        out.push(Diagnostic {
                            rule: self.name(),
                            severity: sev,
                            path: ctx.rel.to_string(),
                            line: t.line,
                            message: format!(
                                "`{name}` lives in a persisted-state file but does not \
                                 derive both Serialize and Deserialize; derive them or \
                                 mark the type transient with lint:allow"
                            ),
                        });
                    }
                    pending_derives.clear();
                }
            }
            i += 1;
        }
    }
}
