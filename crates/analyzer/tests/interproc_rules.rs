//! Fixture-pair tests for the interprocedural rules. The bad fixtures
//! are designed so the defect is invisible to any single-function
//! analysis — a helper mutates the field, a forwarding chain stores the
//! guard, a laundering call separates the hash iteration from the
//! writer — and only the summary/entry-context machinery connects the
//! dots.

use analyzer::{lint_sources, Diagnostic, LintConfig, Severity};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn lint(files: &[(&str, String)]) -> Vec<Diagnostic> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.clone()))
        .collect();
    lint_sources(&owned, &LintConfig::default())
}

fn of_rule<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

#[test]
fn unguarded_field_bad_fixture_flags_only_the_raceful_access() {
    let diags = lint(&[(
        "crates/x/src/state.rs",
        fixture("unguarded_field_bad.rs"),
    )]);
    let hits = of_rule(&diags, "unguarded-shared-field");
    assert_eq!(hits.len(), 1, "exactly the lock-free write in sneak: {diags:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(
        hits[0].message.contains("sneak") && hits[0].message.contains("state"),
        "message names the function and the inferred guard: {}",
        hits[0].message
    );
    assert!(
        hits[0].message.contains("pending"),
        "message names the field: {}",
        hits[0].message
    );
}

#[test]
fn unguarded_field_guard_inference_needs_entry_contexts() {
    // The helpers `bump` and `read_pending` never lock anything
    // themselves; they are guarded only because every caller holds
    // `state`. If the entry-lock contexts were dropped, only 1 of 4
    // accesses would look guarded and no guard would be inferred at all
    // — so the single finding above doubles as a pin on the
    // interprocedural half of the analysis.
    let diags = lint(&[(
        "crates/x/src/state.rs",
        fixture("unguarded_field_good.rs"),
    )]);
    assert!(
        of_rule(&diags, "unguarded-shared-field").is_empty(),
        "every access path holds the guard: {diags:?}"
    );
}

#[test]
fn taint_output_bad_fixture_flagged_despite_laundering() {
    let diags = lint(&[("crates/bench/src/emit.rs", fixture("taint_output_bad.rs"))]);
    let hits = of_rule(&diags, "determinism-taint-to-output");
    assert_eq!(hits.len(), 1, "the write_report call in emit: {diags:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(
        hits[0].message.contains("write_report"),
        "message names the sink: {}",
        hits[0].message
    );
    assert!(
        hits[0].message.contains("hash-iteration order"),
        "message names the source: {}",
        hits[0].message
    );
    // The defect spans three functions; the single-function hash rule
    // must NOT be what catches it (that would make the fixture useless
    // as an interprocedural pin).
    assert!(
        of_rule(&diags, "hash-iteration-determinism").is_empty(),
        "intraprocedural rule must not see this: {diags:?}"
    );
}

#[test]
fn taint_output_good_fixture_clean() {
    let diags = lint(&[("crates/bench/src/emit.rs", fixture("taint_output_good.rs"))]);
    assert!(
        of_rule(&diags, "determinism-taint-to-output").is_empty(),
        "BTreeMap iteration is deterministic: {diags:?}"
    );
}

#[test]
fn guard_escape_transitive_bad_fixture_flagged_at_the_handoff() {
    let diags = lint(&[(
        "crates/x/src/hold.rs",
        fixture("guard_escape_transitive_bad.rs"),
    )]);
    let hits = of_rule(&diags, "guard-escape");
    assert_eq!(hits.len(), 1, "the stash(g) handoff in pin: {diags:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(
        hits[0].message.contains("live") && hits[0].message.contains("stash"),
        "message names the lock and the storing callee: {}",
        hits[0].message
    );
}

#[test]
fn guard_escape_transitive_good_fixture_clean() {
    let diags = lint(&[(
        "crates/x/src/hold.rs",
        fixture("guard_escape_transitive_good.rs"),
    )]);
    assert!(
        of_rule(&diags, "guard-escape").is_empty(),
        "data passed after an explicit drop is fine: {diags:?}"
    );
}

#[test]
fn every_rule_has_an_explanation() {
    for (name, ..) in analyzer::rules::rule_table() {
        let e = analyzer::rules::explanation(name)
            .unwrap_or_else(|| panic!("rule `{name}` has no explanation"));
        assert_eq!(e.name, name);
        assert!(!e.rationale.is_empty(), "`{name}` rationale empty");
    }
    assert!(analyzer::rules::explanation("no-such-rule").is_none());
}
