//! Vendored stand-in for `serde_derive` (offline build).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored value-tree `serde` without `syn`/`quote`: the input item is
//! shape-parsed directly from its `proc_macro::TokenStream` and the impl is
//! emitted as formatted source re-parsed into a token stream.
//!
//! Supported shapes — the ones the workspace uses:
//! * named-field structs (objects),
//! * newtype and tuple structs (inner value / arrays),
//! * unit structs (null),
//! * enums with unit and tuple variants (externally tagged, like serde).
//!
//! `#[serde(...)]` attributes and generic parameters are rejected loudly
//! rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Shape parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i)?;

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("serde derive: expected struct/enum, got {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected item name, got {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (vendored): generic type `{name}` is unsupported"
        ));
    }

    if kind == "struct" {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("serde derive: malformed struct body: {other:?}")),
        };
        Ok(Item::Struct { name, shape })
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("serde derive: malformed enum body: {other:?}")),
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Advances past outer attributes (`#[..]`, doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") {
                        return Err(format!(
                            "serde derive (vendored): #[serde(..)] attributes unsupported: {text}"
                        ));
                    }
                }
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) and friends
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Splits a token stream on top-level commas, tracking `<>` depth so
/// generic arguments don't split fields.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(Vec::new());
                continue;
            }
            _ => {}
        }
        parts.last_mut().expect("non-empty").push(tt);
    }
    if parts.last().map(|p| p.is_empty()).unwrap_or(false) {
        parts.pop();
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i)?;
        match part.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("serde derive: expected field name, got {other:?}")),
        }
        match part.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde derive: expected `:` after field, got {other:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_top_level_commas(stream) {
        if part.is_empty() {
            continue;
        }
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i)?;
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde derive: expected variant name, got {other:?}")),
        };
        let shape = match part.get(i + 1) {
            None => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde derive (vendored): struct variant `{name}` unsupported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde derive (vendored): discriminant on `{name}` unsupported"
                ));
            }
            other => return Err(format!("serde derive: malformed variant `{name}`: {other:?}")),
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code emission
// ---------------------------------------------------------------------------

fn emit_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => (name, serialize_struct_body(shape)),
        Item::Enum { name, variants } => (name, serialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn serialize_struct_body(shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_owned(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let mut out = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                out.push_str(&format!(
                    "m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            out.push_str("::serde::Value::Object(m)");
            out
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
            )),
            Shape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(x0)".to_owned()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({}) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert({vn:?}.to_string(), {inner});\n\
                         ::serde::Value::Object(m)\n\
                     }}\n",
                    binders.join(", ")
                ));
            }
            Shape::Named(_) => unreachable!("rejected during parsing"),
        }
    }
    format!("match self {{\n{arms}}}")
}

fn emit_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => (name, deserialize_struct_body(name, shape)),
        Item::Enum { name, variants } => (name, deserialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("let _ = v; ::std::result::Result::Ok({name})"),
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array\", {name:?})),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(m, {f:?}, {name:?})?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Object(m) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"object\", {name:?})),\n\
                 }}",
                inits.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => unit_arms.push_str(&format!(
                "::serde::Value::String(s) if s == {vn:?} => \
                     return ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            Shape::Tuple(1) => tagged_arms.push_str(&format!(
                "if let ::std::option::Option::Some(inner) = m.get({vn:?}) {{\n\
                     return ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)?));\n\
                 }}\n"
            )),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "if let ::std::option::Option::Some(inner) = m.get({vn:?}) {{\n\
                         if let ::serde::Value::Array(items) = inner {{\n\
                             if items.len() == {n} {{\n\
                                 return ::std::result::Result::Ok({name}::{vn}({}));\n\
                             }}\n\
                         }}\n\
                         return ::std::result::Result::Err(::serde::Error::expected(\
                             \"{n}-element array\", {name:?}));\n\
                     }}\n",
                    items.join(", ")
                ))
            }
            Shape::Named(_) => unreachable!("rejected during parsing"),
        }
    }
    format!(
        "match v {{\n\
             {unit_arms}\
             ::serde::Value::Object(m) => {{\n\
                 {tagged_arms}\
                 ::std::result::Result::Err(::serde::Error::expected(\"known variant\", {name:?}))\n\
             }}\n\
             _ => ::std::result::Result::Err(::serde::Error::expected(\"enum value\", {name:?})),\n\
         }}"
    )
}
