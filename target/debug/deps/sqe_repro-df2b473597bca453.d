/root/repo/target/debug/deps/sqe_repro-df2b473597bca453.d: src/lib.rs

/root/repo/target/debug/deps/sqe_repro-df2b473597bca453: src/lib.rs

src/lib.rs:
