//! Lint rules, in two layers.
//!
//! **Token rules** ([`Rule`], registered in [`registry`]) walk the raw
//! token stream of one file — cheap pattern checks that need no structure.
//! **Ast rules** ([`AstRule`], registered in [`ast_registry`]) run once
//! over the whole parsed workspace ([`crate::symbols::WorkspaceModel`])
//! and its call graph ([`crate::callgraph::CallGraph`]), so they can
//! reason across files: panic reachability from hot-path entries,
//! hash-iteration determinism through struct fields, narrowing casts at
//! construction boundaries, and audit coverage after raw mutations. The
//! dataflow rules (lock ordering, guard hold duration, guard escape,
//! float taint) additionally run the CFG-based analyses in
//! [`crate::dataflow`] over every function body.
//!
//! `sqe-lint rules` prints [`rule_table`]. Suppression
//! (`// lint:allow(rule)`, `// lint:allow-file(rule)`) and severity
//! overrides are applied by the engine, not by the rules themselves.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::ast::Expr;
use crate::callgraph::{CallGraph, PanicKind};
use crate::dataflow;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};
use crate::symbols::WorkspaceModel;

/// Per-file context shared by all rules.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Code tokens only (comments stripped).
    pub code: Vec<&'a Tok>,
    /// First line of a `#[cfg(test)]` attribute, if any. Test modules sit
    /// at the end of files in this workspace, so everything at or after
    /// this line is treated as test code.
    pub cfg_test_line: Option<u32>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context from a full token stream.
    pub fn new(rel: &'a str, toks: &'a [Tok]) -> Self {
        let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mut cfg_test_line = None;
        for w in code.windows(7) {
            if w[0].is_punct('#')
                && w[1].is_punct('[')
                && w[2].is_ident("cfg")
                && w[3].is_punct('(')
                && w[4].is_ident("test")
                && w[5].is_punct(')')
                && w[6].is_punct(']')
            {
                cfg_test_line = Some(w[0].line);
                break;
            }
        }
        FileCtx {
            rel,
            code,
            cfg_test_line,
        }
    }

    /// True when `line` falls inside the file's trailing test module.
    fn in_tests(&self, line: u32) -> bool {
        self.cfg_test_line.is_some_and(|t| line >= t)
    }
}

/// A lint rule: a named check over one file's token stream.
pub trait Rule {
    /// Stable kebab-case rule name used in diagnostics, config, and
    /// `lint:allow(...)` comments.
    fn name(&self) -> &'static str;
    /// One-line description for `sqe-lint rules`.
    fn description(&self) -> &'static str;
    /// Severity when the config does not override it.
    fn default_severity(&self) -> Severity;
    /// Emits diagnostics for `ctx` at effective severity `sev`.
    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>);
}

/// A workspace-level rule over the parsed model and call graph.
pub trait AstRule {
    /// Stable kebab-case rule name.
    fn name(&self) -> &'static str;
    /// One-line description for `sqe-lint rules`.
    fn description(&self) -> &'static str;
    /// Severity when the config does not override it.
    fn default_severity(&self) -> Severity;
    /// Emits diagnostics over the whole workspace at severity `sev`.
    fn check(
        &self,
        model: &WorkspaceModel,
        graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    );
}

/// All registered token rules, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NanUnsafeSort),
        Box::new(NondeterministicRng),
        Box::new(PanickingHotPath),
        Box::new(PersistTypesDeriveSerde),
    ]
}

/// All registered ast rules, in reporting order.
pub fn ast_registry() -> Vec<Box<dyn AstRule>> {
    vec![
        Box::new(PanicReachability),
        Box::new(HashIterationDeterminism),
        Box::new(LossyIdCast),
        Box::new(MustAuditAfterMutation),
        Box::new(LockOrderConsistency),
        Box::new(NoBlockingWhileLocked),
        Box::new(GuardEscape),
        Box::new(FloatTaintBeforeMerge),
        Box::new(UnguardedSharedField),
        Box::new(DeterminismTaintToOutput),
    ]
}

/// Analysis layer of a rule: `token` (lexical), `ast` (workspace
/// symbols/call graph), `flow` (intraprocedural CFG dataflow), or
/// `inter` (summary-based interprocedural).
fn layer_of(name: &str) -> &'static str {
    match name {
        "lock-order-consistency" | "float-taint-before-merge" => "flow",
        "no-blocking-while-locked"
        | "guard-escape"
        | "unguarded-shared-field"
        | "determinism-taint-to-output" => "inter",
        _ => "ast",
    }
}

/// `(name, description, default severity, layer)` for every rule, token
/// rules first — the source of truth for `sqe-lint rules`.
pub fn rule_table() -> Vec<(&'static str, &'static str, Severity, &'static str)> {
    let mut out: Vec<_> = registry()
        .iter()
        .map(|r| (r.name(), r.description(), r.default_severity(), "token"))
        .collect();
    out.extend(
        ast_registry()
            .iter()
            .map(|r| (r.name(), r.description(), r.default_severity(), layer_of(r.name()))),
    );
    out
}

/// Everything `sqe-lint explain <rule>` prints about one rule.
pub struct Explanation {
    /// Stable kebab-case rule name.
    pub name: &'static str,
    /// Analysis layer (token/ast/flow/inter).
    pub layer: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line description (same as `sqe-lint rules`).
    pub summary: &'static str,
    /// Why the rule exists in *this* codebase.
    pub rationale: &'static str,
    /// `(bad, good)` fixture stems under `crates/analyzer/tests/fixtures/`.
    pub fixture: Option<&'static str>,
}

/// Full explanation of a rule by name, or `None` if unknown.
pub fn explanation(name: &str) -> Option<Explanation> {
    let (rationale, fixture): (&'static str, Option<&'static str>) = match name {
        "no-nan-unsafe-sort" => (
            "Ranking ties are broken by score comparisons; `partial_cmp` on floats \
             panics or misorders on NaN. The scorecmp crate provides NaN-safe \
             total-order comparators — every sort over scores must use them so run \
             files are reproducible.",
            Some("nan_sort"),
        ),
        "no-nondeterministic-rng" => (
            "Unseeded RNGs make experiment runs unreproducible. Every stochastic \
             choice must flow from an explicit seed recorded with the run.",
            Some("rng"),
        ),
        "no-panicking-hot-path" => (
            "Files on the query serving path must not contain bare `unwrap`/panics; \
             a poisoned worker deadlocks the executor. Use `expect(\"invariant: ..\")` \
             naming the violated invariant, or handle the case.",
            Some("hot_path"),
        ),
        "persist-types-derive-serde" => (
            "Types written to disk must round-trip; a missing derive turns a \
             snapshot into a one-way artifact.",
            Some("persist"),
        ),
        "panic-reachability" => (
            "A panic N calls below `topk`/`ql`/`bm25` is still a serving panic. The \
             call graph is walked from every hot-path entry; the invariant-expect \
             allowlist and assert-guarded indexing keep intentional checks legal.",
            Some("panic_reach"),
        ),
        "hash-iteration-determinism" => (
            "HashMap/HashSet iteration order varies across runs and platforms; \
             feeding it into an ordered sink (Vec, String, writer) makes run files \
             irreproducible. Sort with a total order or use BTree containers.",
            Some("hash_iter"),
        ),
        "lossy-id-cast" => (
            "`as u32`-style casts silently truncate doc/node ids at scale \
             boundaries; constructors must use `try_from` with an invariant expect.",
            Some("lossy_cast"),
        ),
        "must-audit-after-mutation" => (
            "Raw constructors (`from_raw_parts`, `from_parts`, `.build()` in \
             seal/merge) bypass the incremental invariants; every such site must be \
             followed by a GraphAudit/IndexAudit before the structure is served.",
            Some("audit_mutation"),
        ),
        "lock-order-consistency" => (
            "Two functions taking the same pair of locks in opposite orders can \
             deadlock under concurrency. The workspace fixes one global order \
             (maint -> live -> view); every acquisition pair is checked against \
             every other.",
            Some("lock_order"),
        ),
        "no-blocking-while-locked" => (
            "A lock held across a segment build, snapshot codec, or file I/O makes \
             that work the latency floor of every reader. The interprocedural \
             summaries propagate may-block bottom-up over the call graph, so \
             blocking buried N calls deep under a guard is still found; do the \
             slow work outside and swap results in under the lock (as split-phase \
             seal does). The maint mutex is allowlisted — serializing slow \
             maintenance is its purpose.",
            Some("lock_blocking"),
        ),
        "guard-escape" => (
            "A guard that outlives its acquiring function makes the critical \
             section unbounded and invisible at the acquisition site. Returns, \
             field stores, and (transitively) handing the guard to a callee whose \
             parameter escapes into a field are all flagged; the audited exception \
             is an explicit `-> ..Guard<..>` accessor.",
            Some("guard_escape"),
        ),
        "float-taint-before-merge" => (
            "Segmented corpus statistics must merge as exact integers or ranking \
             becomes partition-dependent. Float conversion belongs after the merge, \
             in scoring accessors.",
            Some("float_taint"),
        ),
        "unguarded-shared-field" => (
            "Lockset-style race detector: for each struct owning locks and plain \
             fields, the lock held at >=75% of all workspace accesses of a field \
             (minimum two) is inferred as its guard; any access without it is a \
             candidate data race. Lock context flows down the call graph — the \
             intersection of locks held at every call site is a function's entry \
             context — so helpers called only under the lock count as guarded, and \
             a local-only analysis could neither infer the guard nor flag the \
             stray access.",
            Some("unguarded_field"),
        ),
        "determinism-taint-to-output" => (
            "Run files, snapshots, and BENCH json must be byte-reproducible — the \
             whole experimental protocol rests on it. Taint sources (hash-container \
             iteration order, thread ids, wall-clock time, float accumulation over \
             hash order) flow through function summaries (return taint + forwarded \
             parameters), so a nondeterministic value laundered through helper \
             functions is still caught at the writer. Sort into a total order, use \
             BTree containers, or inject the clock.",
            Some("taint_output"),
        ),
        _ => return None,
    };
    let (name, summary, severity, layer) = rule_table().into_iter().find(|(n, ..)| *n == name)?;
    Some(Explanation {
        name,
        layer,
        severity,
        summary,
        rationale,
        fixture,
    })
}

/// Index of the code token closing the paren group opened at `open`
/// (which must be `(`), or `None` if unbalanced.
fn matching_paren(code: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// `no-nan-unsafe-sort`: comparator closures passed to sort-family
/// functions must not rank floats with `partial_cmp`, which is not a total
/// order (NaN compares `None` and silently collapses to `Equal` in the
/// usual `unwrap_or` idiom, corrupting ranking determinism). Use the
/// shared `scorecmp` helpers or `f64::total_cmp`.
pub struct NanUnsafeSort;

/// Sort-family methods whose closure argument is a comparator.
const SORT_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

impl Rule for NanUnsafeSort {
    fn name(&self) -> &'static str {
        "no-nan-unsafe-sort"
    }

    fn description(&self) -> &'static str {
        "comparators passed to sort_by/min_by/max_by must use scorecmp or total_cmp, not partial_cmp"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for i in 0..code.len() {
            let t = code[i];
            if t.kind != TokKind::Ident || !SORT_FNS.contains(&t.text.as_str()) {
                continue;
            }
            if i + 1 >= code.len() || !code[i + 1].is_punct('(') {
                continue;
            }
            let Some(close) = matching_paren(code, i + 1) else {
                continue;
            };
            for arg in &code[i + 2..close] {
                if arg.is_ident("partial_cmp") {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: sev,
                        path: ctx.rel.to_string(),
                        line: arg.line,
                        message: format!(
                            "`partial_cmp` inside a `{}` comparator is not a total order \
                             over floats; use `scorecmp::cmp_scores`/`by_score_desc_then_id` \
                             or `f64::total_cmp`",
                            t.text
                        ),
                    });
                }
            }
        }
    }
}

/// `no-nondeterministic-rng`: experiment code must stay reproducible.
/// `thread_rng` (OS-seeded) and `SystemTime::now` (wall clock) are banned
/// outside `benches/` and test modules; seed explicitly instead.
pub struct NondeterministicRng;

impl Rule for NondeterministicRng {
    fn name(&self) -> &'static str {
        "no-nondeterministic-rng"
    }

    fn description(&self) -> &'static str {
        "thread_rng/SystemTime::now are banned outside benches; seed RNGs explicitly"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>) {
        if ctx.rel.starts_with("benches/") || ctx.rel.contains("/benches/") {
            return;
        }
        let code = &ctx.code;
        for i in 0..code.len() {
            let t = code[i];
            if ctx.in_tests(t.line) {
                continue;
            }
            if t.is_ident("thread_rng") {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: "`thread_rng` is OS-seeded and breaks run-to-run \
                              reproducibility; construct a seeded RNG instead"
                        .to_string(),
                });
            }
            // `SystemTime :: now`
            if t.is_ident("SystemTime")
                && i + 3 < code.len()
                && code[i + 1].is_punct(':')
                && code[i + 2].is_punct(':')
                && code[i + 3].is_ident("now")
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: ctx.rel.to_string(),
                    line: t.line,
                    message: "`SystemTime::now` injects wall-clock nondeterminism; \
                              thread timing state through explicitly"
                        .to_string(),
                });
            }
        }
    }
}

/// `no-panicking-hot-path`: inner-loop files must not contain `.unwrap()`
/// (use `expect` with a message naming the violated invariant, or handle
/// the case). Bare slice indexing in the same files is reported one
/// severity step lower, since bounds are often locally provable.
pub struct PanickingHotPath;

/// Files on the query/expansion hot path.
const HOT_FILES: &[&str] = &[
    "crates/kbgraph/src/csr.rs",
    "crates/searchlite/src/topk.rs",
    "crates/searchlite/src/ql.rs",
    "crates/searchlite/src/index.rs",
    "crates/searchlite/src/ingest.rs",
    "crates/searchlite/src/searcher.rs",
    "crates/searchlite/src/segment.rs",
    "crates/searchlite/src/shard.rs",
    "crates/core/src/motif.rs",
    "crates/core/src/spec.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/sharded.rs",
    "crates/admission/src/controller.rs",
    "crates/admission/src/deadline.rs",
    "crates/admission/src/ladder.rs",
    "crates/admission/src/outcome.rs",
    "crates/bench/src/load_bench.rs",
    "crates/store/src/buf.rs",
    "crates/store/src/codec.rs",
    "crates/store/src/crc32.rs",
    "crates/store/src/error.rs",
    "crates/store/src/format.rs",
    "crates/store/src/lib.rs",
    "crates/store/src/snapshot.rs",
];

/// Keywords that may directly precede an array *literal* `[...]`, which is
/// not indexing.
const PRE_LITERAL_KEYWORDS: &[&str] = &[
    "return", "break", "in", "if", "while", "match", "else", "let", "mut", "ref", "move", "as",
    "box", "yield",
];

impl Rule for PanickingHotPath {
    fn name(&self) -> &'static str {
        "no-panicking-hot-path"
    }

    fn description(&self) -> &'static str {
        "unwrap() (and, at demoted severity, slice indexing) is banned in hot-path files"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>) {
        if !HOT_FILES.contains(&ctx.rel) {
            return;
        }
        let code = &ctx.code;
        for i in 0..code.len() {
            let t = code[i];
            if ctx.in_tests(t.line) {
                continue;
            }
            // `. unwrap ( )`
            if t.is_punct('.')
                && i + 3 < code.len()
                && code[i + 1].is_ident("unwrap")
                && code[i + 2].is_punct('(')
                && code[i + 3].is_punct(')')
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: ctx.rel.to_string(),
                    line: code[i + 1].line,
                    message: "`.unwrap()` on the query hot path panics without context; \
                              use `expect(\"invariant: ...\")` naming the violated \
                              invariant, or handle the case"
                        .to_string(),
                });
            }
            // Expression-position `[`: previous code token is an identifier
            // (not a keyword that starts an array literal) or a closing
            // bracket. Attribute `#[...]`, types `&[T]`/`: [T; N]`, and
            // `vec![...]` are excluded by their preceding token.
            if t.is_punct('[') && i > 0 {
                let prev = code[i - 1];
                let indexing = match prev.kind {
                    TokKind::Ident => {
                        !PRE_LITERAL_KEYWORDS.contains(&prev.text.as_str())
                            && !prev.text.starts_with('\'')
                    }
                    TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                    _ => false,
                };
                let demoted = sev.demoted();
                if indexing && demoted > Severity::Allow {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: demoted,
                        path: ctx.rel.to_string(),
                        line: t.line,
                        message: "bare slice indexing on the hot path can panic; prefer \
                                  `get`, iterators, or a comment-proved bound"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// `persist-types-derive-serde`: types in persisted-state files (the CSR
/// graph and the inverted index, both serialized via `to_json`/`from_json`)
/// must derive `Serialize` and `Deserialize` so persistence cannot
/// silently lose fields. Transient helpers opt out with
/// `// lint:allow(persist-types-derive-serde)`.
pub struct PersistTypesDeriveSerde;

/// Files holding persisted state.
const PERSIST_FILES: &[&str] = &[
    "crates/kbgraph/src/csr.rs",
    "crates/kbgraph/src/graph.rs",
    "crates/searchlite/src/index.rs",
];

impl Rule for PersistTypesDeriveSerde {
    fn name(&self) -> &'static str {
        "persist-types-derive-serde"
    }

    fn description(&self) -> &'static str {
        "top-level types in persisted-state files must derive Serialize and Deserialize"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &FileCtx<'_>, sev: Severity, out: &mut Vec<Diagnostic>) {
        if !PERSIST_FILES.contains(&ctx.rel) {
            return;
        }
        let code = &ctx.code;
        let mut depth = 0i32;
        let mut pending_derives: Vec<String> = Vec::new();
        let mut i = 0usize;
        while i < code.len() {
            let t = code[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    pending_derives.clear();
                }
            } else if depth == 0 {
                if t.is_punct(';') {
                    pending_derives.clear();
                } else if t.is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[') {
                    // Attribute: collect idents; record derive contents.
                    let mut brackets = 0i32;
                    let mut idents = Vec::new();
                    let mut j = i + 1;
                    while j < code.len() {
                        if code[j].is_punct('[') {
                            brackets += 1;
                        } else if code[j].is_punct(']') {
                            brackets -= 1;
                            if brackets == 0 {
                                break;
                            }
                        } else if code[j].kind == TokKind::Ident {
                            idents.push(code[j].text.clone());
                        }
                        j += 1;
                    }
                    if idents.first().is_some_and(|f| f == "derive") {
                        pending_derives.extend(idents.into_iter().skip(1));
                    }
                    i = j + 1;
                    continue;
                } else if (t.is_ident("struct") || t.is_ident("enum"))
                    && i + 1 < code.len()
                    && code[i + 1].kind == TokKind::Ident
                {
                    let name = &code[i + 1].text;
                    let has = |d: &str| pending_derives.iter().any(|p| p == d);
                    if !has("Serialize") || !has("Deserialize") {
                        out.push(Diagnostic {
                            rule: self.name(),
                            severity: sev,
                            path: ctx.rel.to_string(),
                            line: t.line,
                            message: format!(
                                "`{name}` lives in a persisted-state file but does not \
                                 derive both Serialize and Deserialize; derive them or \
                                 mark the type transient with lint:allow"
                            ),
                        });
                    }
                    pending_derives.clear();
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Ast rules (workspace-level)
// ---------------------------------------------------------------------------

/// `panic-reachability`: no panic source may be transitively reachable
/// from a hot-path entry point. Entries are every non-test function in the
/// query-scoring and serving files (`topk.rs`, `ql.rs`, `bm25.rs`,
/// `motif.rs`, `cache.rs`, `serve.rs`) plus
/// `Csr::neighbors`. Panic sources are `.unwrap()`, `.expect(..)` whose
/// message does not name an invariant, the panicking macros, and (one
/// severity step lower) bare indexing with no covering assert.
pub struct PanicReachability;

/// Files whose non-test functions are hot-path entry points.
const ENTRY_FILES: &[&str] = &[
    "crates/searchlite/src/topk.rs",
    "crates/searchlite/src/ql.rs",
    "crates/searchlite/src/bm25.rs",
    "crates/searchlite/src/searcher.rs",
    "crates/searchlite/src/shard.rs",
    "crates/core/src/motif.rs",
    "crates/core/src/spec.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/sharded.rs",
    "crates/admission/src/controller.rs",
    "crates/admission/src/deadline.rs",
    "crates/admission/src/ladder.rs",
    "crates/admission/src/outcome.rs",
    "crates/bench/src/load_bench.rs",
    "crates/store/src/buf.rs",
    "crates/store/src/codec.rs",
    "crates/store/src/crc32.rs",
    "crates/store/src/error.rs",
    "crates/store/src/format.rs",
    "crates/store/src/lib.rs",
    "crates/store/src/snapshot.rs",
];

impl AstRule for PanicReachability {
    fn name(&self) -> &'static str {
        "panic-reachability"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/unguarded indexing reachable from hot-path entries (topk, ql, bm25, motif, Csr::neighbors)"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        _model: &WorkspaceModel,
        graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        let entries: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                !n.is_test
                    && (ENTRY_FILES.contains(&n.file.as_str()) || n.qual == "Csr::neighbors")
            })
            .map(|(i, _)| i)
            .collect();
        let parent = graph.reachable_from(&entries);
        for (i, node) in graph.nodes.iter().enumerate() {
            if node.is_test || parent[i].is_none() || node.panics.is_empty() {
                continue;
            }
            let trace = graph.trace(&parent, i).join(" -> ");
            for site in &node.panics {
                let (eff, what) = match &site.kind {
                    PanicKind::Unwrap => (sev, "`.unwrap()`".to_string()),
                    PanicKind::NonInvariantExpect => (
                        sev,
                        "`.expect(..)` without an invariant-naming message".to_string(),
                    ),
                    PanicKind::PanicMacro(m) => (sev, format!("`{m}!`")),
                    PanicKind::Indexing => (sev.demoted(), "bare indexing".to_string()),
                };
                if eff == Severity::Allow {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: eff,
                    path: node.file.clone(),
                    line: site.line,
                    message: format!(
                        "{what} in `{}` is reachable from a hot-path entry ({trace}); \
                         handle the case or use `expect(\"invariant: ...\")` naming the \
                         violated invariant",
                        node.qual
                    ),
                });
            }
        }
    }
}

/// `hash-iteration-determinism`: iterating a `HashMap`/`HashSet` (or the
/// Fx variants) in arbitrary order must not feed an order-sensitive sink —
/// a collected `Vec`/`String`, pushes inside the loop body, or writer
/// macros — unless a total-order sort is applied in the same function.
pub struct HashIterationDeterminism;

use crate::dataflow::{is_hash_ty, HASH_ITER_METHODS};

/// Splits a method chain into `(methods outermost-first, base expr)`.
fn chain_parts(mut e: &Expr) -> (Vec<&str>, &Expr) {
    let mut methods = Vec::new();
    loop {
        match e {
            Expr::MethodCall { recv, method, .. } => {
                methods.push(method.as_str());
                e = recv;
            }
            _ => return (methods, e),
        }
    }
}

/// True when `e` *is* a hash container: a binding from `roots` or a
/// `self.field` whose declared type is a hash container.
fn base_is_hash(
    e: &Expr,
    roots: &BTreeSet<String>,
    model: &WorkspaceModel,
    impl_ty: Option<&str>,
) -> bool {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => roots.contains(&segs[0]),
        Expr::Field { recv, name, .. } => {
            matches!(
                recv.as_ref(),
                Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self"
            ) && impl_ty
                .and_then(|t| model.field_type(t, name))
                .is_some_and(is_hash_ty)
        }
        _ => false,
    }
}

/// True when any node of `e` is a hash container reference.
fn subtree_touches_hash(
    e: &Expr,
    roots: &BTreeSet<String>,
    model: &WorkspaceModel,
    impl_ty: Option<&str>,
) -> bool {
    let mut found = false;
    e.walk(&mut |n| {
        if base_is_hash(n, roots, model, impl_ty) {
            found = true;
        }
    });
    found
}

impl HashIterationDeterminism {
    /// Checks one `collect` chain. `dest_ty` is the binding's ascribed
    /// type when known. Returns true when the chain linearizes hash
    /// iteration order into a Vec/String.
    fn collect_is_bad(
        collect_node: &Expr,
        dest_ty: Option<&str>,
        roots: &BTreeSet<String>,
        model: &WorkspaceModel,
        impl_ty: Option<&str>,
    ) -> bool {
        let Expr::MethodCall {
            recv, turbofish, ..
        } = collect_node
        else {
            return false;
        };
        let (methods, base) = chain_parts(recv);
        if !methods.iter().any(|m| HASH_ITER_METHODS.contains(m)) {
            return false;
        }
        if !base_is_hash(base, roots, model, impl_ty) {
            return false;
        }
        // Only flag when the destination is demonstrably order-sensitive:
        // collecting back into a map/set (or a BTree) is order-free.
        let target = if !turbofish.is_empty() {
            turbofish.as_str()
        } else {
            dest_ty.unwrap_or("")
        };
        target.contains("Vec") || target.contains("String")
    }
}

impl AstRule for HashIterationDeterminism {
    fn name(&self) -> &'static str {
        "hash-iteration-determinism"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iteration must not feed ordered output without a total-order sort; use BTreeMap or sort (scorecmp)"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        _graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        model.for_each_fn(&mut |file, impl_ty, is_test, def| {
            if is_test {
                return;
            }
            let Some(body) = &def.body else { return };
            // Pass 1: hash-typed bindings and sorted destinations.
            let mut roots: BTreeSet<String> = def
                .params
                .iter()
                .filter(|(_, t)| is_hash_ty(t))
                .map(|(n, _)| n.clone())
                .collect();
            let mut sorted: BTreeSet<String> = BTreeSet::new();
            for s in &body.stmts {
                s.walk(&mut |e| match e {
                    Expr::Let {
                        name: Some(n),
                        ty,
                        init,
                        ..
                    } => {
                        let hashy = ty.as_deref().is_some_and(is_hash_ty)
                            || (ty.is_none()
                                && init.as_deref().is_some_and(|i| is_hash_ty(&i.text())));
                        if hashy {
                            roots.insert(n.clone());
                        }
                    }
                    Expr::MethodCall { recv, method, .. } if method.starts_with("sort") => {
                        sorted.insert(recv.text());
                    }
                    _ => {}
                });
            }
            // Pass 2: order-sensitive sinks fed by hash iteration.
            let mut flagged: BTreeSet<u32> = BTreeSet::new();
            let mut handled_collects: BTreeSet<u32> = BTreeSet::new();
            let mut flag = |line: u32, what: &str, out: &mut Vec<Diagnostic>| {
                if flagged.insert(line) {
                    out.push(Diagnostic {
                        rule: "hash-iteration-determinism",
                        severity: sev,
                        path: file.rel.to_string(),
                        line,
                        message: format!(
                            "{what} in `{}` depends on hash-iteration order; switch the \
                             container to BTreeMap/BTreeSet or apply a total-order sort \
                             (scorecmp for float keys) before emitting",
                            def.name
                        ),
                    });
                }
            };
            for s in &body.stmts {
                s.walk(&mut |e| match e {
                    Expr::For {
                        iter, body, line, ..
                    } => {
                        if !subtree_touches_hash(iter, &roots, model, impl_ty) {
                            return;
                        }
                        let mut sink = false;
                        for bs in &body.stmts {
                            bs.walk(&mut |b| match b {
                                Expr::MethodCall { recv, method, .. }
                                    if method == "push" || method == "push_str" =>
                                {
                                    if !sorted.contains(&recv.text()) {
                                        sink = true;
                                    }
                                }
                                Expr::Macro { name, .. }
                                    if name.ends_with("write") || name.ends_with("writeln") =>
                                {
                                    sink = true;
                                }
                                _ => {}
                            });
                        }
                        if sink {
                            flag(*line, "a `for` loop over a hash container", out);
                        }
                    }
                    Expr::Let {
                        name, init: Some(i), ty, ..
                    } => {
                        i.walk(&mut |n| {
                            if let Expr::MethodCall { method, line, .. } = n {
                                if method == "collect" {
                                    handled_collects.insert(*line);
                                    let sorted_later = name
                                        .as_deref()
                                        .is_some_and(|b| sorted.contains(b));
                                    if !sorted_later
                                        && Self::collect_is_bad(
                                            n,
                                            ty.as_deref(),
                                            &roots,
                                            model,
                                            impl_ty,
                                        )
                                    {
                                        flag(*line, "`collect()` from hash iteration", out);
                                    }
                                }
                            }
                        });
                    }
                    Expr::MethodCall { method, line, .. } if method == "collect" => {
                        if !handled_collects.contains(line)
                            && Self::collect_is_bad(e, None, &roots, model, impl_ty)
                        {
                            flag(*line, "`collect()` from hash iteration", out);
                        }
                    }
                    Expr::MethodCall {
                        recv, method, args, line, ..
                    } if method == "extend" => {
                        if args
                            .iter()
                            .any(|a| subtree_touches_hash(a, &roots, model, impl_ty))
                            && !sorted.contains(&recv.text())
                        {
                            flag(*line, "`extend(..)` from hash iteration", out);
                        }
                    }
                    _ => {}
                });
            }
        });
    }
}

/// `lossy-id-cast`: `as u8`/`u16`/`u32` on id-, offset-, or length-valued
/// expressions silently truncates once the graph or index outgrows the
/// target width. In the persisted-structure crates these casts must go
/// through `try_from` with an invariant-naming `expect`, or be dominated
/// by an assert on the same operand.
pub struct LossyIdCast;

/// Path prefixes (and one file) in scope for `lossy-id-cast`.
const CAST_SCOPE: &[&str] = &["crates/kbgraph/", "crates/searchlite/"];

/// Narrowing cast targets worth guarding.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32"];

/// True for identifiers that carry id/offset/position/count semantics.
fn idish(s: &str) -> bool {
    let s = s.to_ascii_lowercase();
    s == "id"
        || s.ends_with("id")
        || s.ends_with("ids")
        || s.starts_with("id")
        || s.contains("offset")
        || s.starts_with("pos")
        || s.contains("count")
}

impl AstRule for LossyIdCast {
    fn name(&self) -> &'static str {
        "lossy-id-cast"
    }

    fn description(&self) -> &'static str {
        "as u32/u16/u8 on id/offset/len expressions in kbgraph/searchlite/persist must be try_from or assert-dominated"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        _graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        model.for_each_fn(&mut |file, _impl_ty, is_test, def| {
            let in_scope = CAST_SCOPE.iter().any(|p| file.rel.starts_with(p))
                || file.rel == "crates/synthwiki/src/persist.rs";
            if !in_scope || is_test {
                return;
            }
            let Some(body) = &def.body else { return };
            // Asserts anywhere in the function dominate (this analysis has
            // no real control-flow ordering; an assert on the operand is
            // taken as the author proving the bound).
            let mut guard_text = String::new();
            for s in &body.stmts {
                s.walk(&mut |e| {
                    if let Expr::Macro { name, inner, .. } = e {
                        let base = name.rsplit("::").next().unwrap_or(name);
                        if base.starts_with("assert") || base.starts_with("debug_assert") {
                            for i in inner {
                                guard_text.push_str(&i.text());
                                guard_text.push(' ');
                            }
                        }
                    }
                });
            }
            for s in &body.stmts {
                s.walk(&mut |e| {
                    let Expr::Cast { expr, ty, line } = e else {
                        return;
                    };
                    if !NARROW_TYPES.contains(&ty.trim()) {
                        return;
                    }
                    // Trigger only on id/offset/len-valued operands.
                    let mut risky = false;
                    expr.walk(&mut |n| match n {
                        Expr::MethodCall { method, .. } if method == "len" => risky = true,
                        Expr::Path { segs, .. } => {
                            if segs.iter().any(|s| idish(s)) {
                                risky = true;
                            }
                        }
                        Expr::Field { name, .. } if idish(name) => risky = true,
                        _ => {}
                    });
                    if !risky {
                        return;
                    }
                    if expr
                        .root_ident()
                        .is_some_and(|root| guard_text.contains(root))
                    {
                        return;
                    }
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: sev,
                        path: file.rel.to_string(),
                        line: *line,
                        message: format!(
                            "narrowing cast `{} as {}` in `{}` can silently truncate \
                             ids/offsets; use `{}::try_from(..).expect(\"invariant: ...\")` \
                             or assert the bound on the operand first",
                            expr.text(),
                            ty.trim(),
                            def.name,
                            ty.trim()
                        ),
                    });
                });
            }
        });
    }
}

/// `must-audit-after-mutation`: `Index::raw_mut`, `*::from_raw_parts` and
/// `*::from_parts` bypass checked constructors, so any non-test function
/// using them must also invoke a structural audit
/// (`GraphAudit`/`IndexAudit`/`audit*`) before returning the mutated
/// structure to the rest of the system. This covers snapshot decoding: a
/// loader that reassembles a graph or index from raw section bytes and
/// skips the audit is a lint error, not a code-review judgement call.
///
/// Segment lifecycle functions get the same treatment: inside a function
/// named `seal` or `merge`, a `.build()` call freezes buffered documents
/// into an immutable segment that the rest of the system will trust
/// forever, so the function must audit what it built.
pub struct MustAuditAfterMutation;

impl AstRule for MustAuditAfterMutation {
    fn name(&self) -> &'static str {
        "must-audit-after-mutation"
    }

    fn description(&self) -> &'static str {
        "non-test callers of raw_mut/from_raw_parts/from_parts (and .build() inside seal/merge) must run a structural audit in the same function"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        _graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        model.for_each_fn(&mut |file, _impl_ty, is_test, def| {
            if is_test
                || def.name == "raw_mut"
                || def.name == "from_raw_parts"
                || def.name == "from_parts"
            {
                return;
            }
            let Some(body) = &def.body else { return };
            // Sealing or merging freezes buffered state into an immutable
            // segment, so `.build()` there is a mutation site too.
            let seals_segment = def.name == "seal" || def.name == "merge";
            let mut sites: Vec<(u32, &'static str)> = Vec::new();
            let mut has_audit = false;
            for s in &body.stmts {
                s.walk(&mut |e| match e {
                    Expr::MethodCall { method, line, .. } => {
                        if method == "raw_mut" {
                            sites.push((*line, "raw_mut"));
                        } else if seals_segment && method == "build" {
                            sites.push((*line, "build"));
                        } else if method.to_ascii_lowercase().contains("audit") {
                            has_audit = true;
                        }
                    }
                    Expr::Call { callee, line, .. } => {
                        if let Expr::Path { segs, .. } = callee.as_ref() {
                            if segs.last().is_some_and(|s| s == "from_raw_parts") {
                                sites.push((*line, "from_raw_parts"));
                            } else if segs.last().is_some_and(|s| s == "from_parts") {
                                sites.push((*line, "from_parts"));
                            }
                        }
                    }
                    Expr::Path { segs, .. } => {
                        if segs
                            .iter()
                            .any(|s| s.to_ascii_lowercase().contains("audit"))
                        {
                            has_audit = true;
                        }
                    }
                    Expr::Macro { name, .. } => {
                        if name.to_ascii_lowercase().contains("audit") {
                            has_audit = true;
                        }
                    }
                    _ => {}
                });
            }
            if has_audit {
                return;
            }
            for (line, which) in sites {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: file.rel.to_string(),
                    line,
                    message: format!(
                        "`{which}` in `{}` mutates raw graph/index state with no structural \
                         audit in the same function; run GraphAudit/IndexAudit on the result \
                         or construct through a checked constructor",
                        def.name
                    ),
                });
            }
        });
    }
}

/// `lock-order-consistency`: every pair of locks must be acquired in one
/// global order. Built on [`crate::dataflow::lock_model`]: each function
/// contributes (held → acquired) pairs from the CFG held-set fixpoint;
/// two functions acquiring the same two locks in opposite orders is a
/// deadlock waiting for the right interleaving.
pub struct LockOrderConsistency;

impl AstRule for LockOrderConsistency {
    fn name(&self) -> &'static str {
        "lock-order-consistency"
    }

    fn description(&self) -> &'static str {
        "two locks must be acquired in the same order everywhere; opposite-order pairs across functions can deadlock"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        _graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        let lm = dataflow::lock_model(model);
        // (held, acquired) → first acquisition site per function.
        let mut edges: BTreeMap<(String, String), Vec<(String, String, u32)>> = BTreeMap::new();
        for f in &lm.fns {
            if f.is_test {
                continue;
            }
            for p in &f.order_pairs {
                let sites = edges
                    .entry((p.held.clone(), p.acquired.clone()))
                    .or_default();
                if !sites.iter().any(|(q, _, _)| *q == f.qual) {
                    sites.push((f.qual.clone(), f.file.clone(), p.line));
                }
            }
        }
        for ((a, b), sites) in &edges {
            let Some(reverse) = edges.get(&(b.clone(), a.clone())) else {
                continue;
            };
            // Both orders exist: flag every function on this side; the
            // (b, a) iteration flags the other side.
            let (rq, rf, rl) = &reverse[0];
            for (qual, file, line) in sites {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: file.clone(),
                    line: *line,
                    message: format!(
                        "`{qual}` acquires `{b}` while holding `{a}`, but `{rq}` \
                         ({rf}:{rl}) acquires them in the opposite order; pick one \
                         global lock order and stick to it"
                    ),
                });
            }
        }
    }
}

use crate::summaries::{is_expensive_name, Summaries};

/// Locks that exist to serialize slow maintenance work; holding them
/// across expensive calls is their whole purpose.
const ALLOWED_SLOW_LOCKS: &[&str] = &["maint"];

/// `no-blocking-while-locked`: a guard live-range (from the CFG held-set
/// analysis) must not span a call that reaches expensive work through
/// the call graph. Transitive: the may-block fact comes from the
/// interprocedural summaries ([`crate::summaries`]), so blocking buried
/// N calls deep is found, and the message names the chain. The service's
/// lock-held windows are the latency floor of every concurrent query;
/// sealing or file I/O belongs outside them.
pub struct NoBlockingWhileLocked;

impl AstRule for NoBlockingWhileLocked {
    fn name(&self) -> &'static str {
        "no-blocking-while-locked"
    }

    fn description(&self) -> &'static str {
        "no segment build/merge, snapshot codec, or file I/O while holding a lock guard; narrow the critical section"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        // The may-block fact is interprocedural: summaries carry it
        // bottom-up over the call graph (SCC fixpoint), with the chain
        // of workspace hops to the expensive work.
        let sums = Summaries::build(model, graph);
        let lm = dataflow::lock_model(model);
        let mut seen: BTreeSet<(String, u32, String, String)> = BTreeSet::new();
        for f in &lm.fns {
            if f.is_test {
                continue;
            }
            for call in &f.locked_calls {
                let locks: Vec<&(String, u32)> = call
                    .locks
                    .iter()
                    .filter(|(l, _)| !ALLOWED_SLOW_LOCKS.contains(&l.as_str()))
                    .collect();
                let Some((lock, acq_line)) = locks.first() else {
                    continue;
                };
                let why = if is_expensive_name(&call.callee) {
                    Some(format!("`{}` is expensive/blocking work", call.callee))
                } else {
                    graph
                        .find(&call.callee)
                        .into_iter()
                        .find_map(|id| {
                            if graph.nodes[id].is_test {
                                return None;
                            }
                            sums.fns[id].blocks.as_ref().map(|b| (id, b))
                        })
                        .map(|(id, b)| {
                            let mut chain = vec![graph.nodes[id].qual.clone()];
                            chain.extend(b.via.iter().cloned());
                            format!(
                                "`{}` reaches expensive/blocking work (`{}` via `{}`)",
                                graph.nodes[id].qual,
                                b.what,
                                chain.join(" -> ")
                            )
                        })
                };
                let Some(why) = why else { continue };
                if !seen.insert((f.file.clone(), call.line, call.callee.clone(), lock.clone())) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: f.file.clone(),
                    line: call.line,
                    message: format!(
                        "{why} but runs while `{}` holds lock `{lock}` (acquired \
                         line {acq_line}); do the slow work outside the guard and \
                         swap results in under the lock",
                        f.qual
                    ),
                });
            }
        }
    }
}

/// `guard-escape`: a lock guard must die in its acquiring function —
/// returned or field-stored guards make the critical section unbounded
/// and invisible at the acquisition site. Transitive: passing a live
/// guard into a callee that stores it (directly or through further
/// forwarding — an escaping-parameter chain in the summaries) is the
/// same bug one call removed. The one audited exception is the accessor
/// pattern: a function whose return type names a guard
/// (`-> MutexGuard<..>`), which callers treat as an acquisition.
pub struct GuardEscape;

impl AstRule for GuardEscape {
    fn name(&self) -> &'static str {
        "guard-escape"
    }

    fn description(&self) -> &'static str {
        "lock guards must not be returned, stored, or handed to storing callees beyond the acquiring function, except via guard-returning accessors"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        let lm = dataflow::lock_model(model);
        for f in &lm.fns {
            if f.is_test || f.returns_guard {
                continue;
            }
            for e in &f.escapes {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: sev,
                    path: f.file.clone(),
                    line: e.line,
                    message: format!(
                        "guard for lock `{}` is {} from `{}` whose return type does \
                         not name a guard; keep guards inside their acquiring \
                         function or use an explicit `-> ..Guard<..>` accessor",
                        e.lock, e.how, f.qual
                    ),
                });
            }
        }
        // Transitive escapes: a held guard passed into an escaping
        // parameter position (the callee — possibly through further
        // hops — stores it into a field).
        let sums = Summaries::build(model, graph);
        for h in crate::summaries::guard_handoffs(model, graph, &sums) {
            out.push(Diagnostic {
                rule: self.name(),
                severity: sev,
                path: h.file.clone(),
                line: h.line,
                message: format!(
                    "guard for lock `{}` is handed from `{}` to `{}`, which stores \
                     it beyond the call; drop the guard first or pass the data, \
                     not the guard",
                    h.lock, h.qual, h.callee_qual
                ),
            });
        }
    }
}

/// `float-taint-before-merge`: corpus-statistic merging must stay in
/// exact integer arithmetic. Built on the [`crate::dataflow`] provenance
/// lattice: inside any function that accumulates into a stat-named
/// target (`coll_tf`, `doc_freq`, `collection_len`, ...), casting a
/// stat-derived value to float or accumulating a float-tainted value is
/// flagged. This pins statically what the partition proptest checks
/// dynamically: `Searcher`'s merged statistics are byte-identical to a
/// monolithic index, so ranking is partition-invariant.
pub struct FloatTaintBeforeMerge;

impl AstRule for FloatTaintBeforeMerge {
    fn name(&self) -> &'static str {
        "float-taint-before-merge"
    }

    fn description(&self) -> &'static str {
        "corpus-stat merging must use exact integer arithmetic; float conversion belongs after the merge, in scoring"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        _graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        for t in dataflow::float_taint(model) {
            out.push(Diagnostic {
                rule: self.name(),
                severity: sev,
                path: t.file.clone(),
                line: t.line,
                message: format!(
                    "{} in `{}`; merge statistics as integers and convert to f64 \
                     only in post-merge scoring (collection_prob and friends)",
                    t.what, t.qual
                ),
            });
        }
    }
}

/// Interprocedural lockset race detector. For every struct owning both
/// lock fields and plain fields, [`crate::summaries::protection`] infers
/// which lock guards each plain field by majority vote over all
/// workspace accesses (entry-lock context flows down the call graph, so
/// helpers reached only under the lock count as guarded). Accesses
/// outside the inferred guard are candidate data races.
pub struct UnguardedSharedField;

impl AstRule for UnguardedSharedField {
    fn name(&self) -> &'static str {
        "unguarded-shared-field"
    }

    fn description(&self) -> &'static str {
        "every access of a shared-struct field must hold the lock that guards it (inferred by majority vote over all accesses)"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        let prot = crate::summaries::protection(model, graph);
        for r in &prot.races {
            out.push(Diagnostic {
                rule: self.name(),
                severity: sev,
                path: r.file.clone(),
                line: r.line,
                message: format!(
                    "field `{}` of `{}` is accessed in `{}` without holding `{}`, \
                     which guards {} of {} accesses of this field; take the lock \
                     (or move the field into it)",
                    r.field, r.struct_name, r.qual, r.guard, r.guarded, r.total
                ),
            });
        }
    }
}

/// Interprocedural determinism-taint pass: nondeterministic sources
/// (hash-container iteration order, thread ids, wall-clock time, float
/// accumulation over hash order) must not reach run-file writers,
/// snapshot encoders, or BENCH json emitters. Taint flows through
/// [`Summaries`] (return taint + forwarded parameters), so values
/// laundered through helper functions are still caught at the sink.
pub struct DeterminismTaintToOutput;

impl AstRule for DeterminismTaintToOutput {
    fn name(&self) -> &'static str {
        "determinism-taint-to-output"
    }

    fn description(&self) -> &'static str {
        "nondeterministic values (hash order, thread ids, wall-clock time) must not reach run-file or snapshot writers"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(
        &self,
        model: &WorkspaceModel,
        graph: &CallGraph,
        sev: Severity,
        out: &mut Vec<Diagnostic>,
    ) {
        let sums = Summaries::build(model, graph);
        for f in crate::summaries::taint_to_output(model, graph, &sums) {
            out.push(Diagnostic {
                rule: self.name(),
                severity: sev,
                path: f.file.clone(),
                line: f.line,
                message: format!(
                    "nondeterministic value ({}) reaches run-file/snapshot writer \
                     `{}` in `{}`; sort into a total order, use a BTree container, \
                     or inject the clock",
                    f.sources.join(", "),
                    f.sink,
                    f.qual
                ),
            });
        }
    }
}
