/root/repo/target/debug/deps/sqe_bench-60cf95897a0672fb.d: crates/bench/src/lib.rs crates/bench/src/context.rs crates/bench/src/export.rs crates/bench/src/report.rs crates/bench/src/runs.rs crates/bench/src/tables.rs crates/bench/src/timing.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libsqe_bench-60cf95897a0672fb.rlib: crates/bench/src/lib.rs crates/bench/src/context.rs crates/bench/src/export.rs crates/bench/src/report.rs crates/bench/src/runs.rs crates/bench/src/tables.rs crates/bench/src/timing.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libsqe_bench-60cf95897a0672fb.rmeta: crates/bench/src/lib.rs crates/bench/src/context.rs crates/bench/src/export.rs crates/bench/src/report.rs crates/bench/src/runs.rs crates/bench/src/tables.rs crates/bench/src/timing.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/context.rs:
crates/bench/src/export.rs:
crates/bench/src/report.rs:
crates/bench/src/runs.rs:
crates/bench/src/tables.rs:
crates/bench/src/timing.rs:
crates/bench/src/figures.rs:
