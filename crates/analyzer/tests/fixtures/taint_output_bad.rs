// Fixture: a float total accumulated in HashMap iteration order is
// laundered through two helper calls before reaching the report writer.
// No single function both iterates the map and writes — only the
// interprocedural taint summaries connect the source to the sink.

pub fn total_score(weights: &HashMap<String, f64>) -> f64 {
    weights.values().sum::<f64>()
}

pub fn scale(total: f64) -> f64 {
    total * 0.5
}

pub fn emit(out: &mut Vec<u8>, weights: &HashMap<String, f64>) {
    write_report(out, scale(total_score(weights)));
}
