// Fixture: a mutex guard stays live across an expensive segment seal —
// every reader and writer of `live` stalls behind index construction.

pub fn flush_under_lock(&self) {
    let mut live = self.live.lock();
    let segment = live.seal();
    self.published.store(segment);
}
