// Fixture: panicking calls on the query hot path. Linted as if this file
// were crates/searchlite/src/topk.rs.

pub fn top_score(scores: &[f64]) -> f64 {
    let first = scores.first().unwrap();
    let second = scores[1];
    first.max(second)
}
