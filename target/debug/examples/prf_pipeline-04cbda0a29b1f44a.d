/root/repo/target/debug/examples/prf_pipeline-04cbda0a29b1f44a.d: examples/prf_pipeline.rs

/root/repo/target/debug/examples/prf_pipeline-04cbda0a29b1f44a: examples/prf_pipeline.rs

examples/prf_pipeline.rs:
