// Fixture: the same snapshot loader, but every reassembled structure is
// fed through the structural audit before it leaves the function.

pub fn decode_graph(payload: &[u8]) -> Result<KbGraph, StoreError> {
    let mut c = Cursor::new(payload);
    let titles_a = c.get_str_list()?;
    let titles_c = c.get_str_list()?;
    let links = Csr::from_raw_parts(c.get_u32_vec()?, c.get_u32_vec()?);
    let links_rev = Csr::from_raw_parts(c.get_u32_vec()?, c.get_u32_vec()?);
    let graph = KbGraph::from_parts(titles_a, titles_c, links, links_rev);
    let audit = GraphAudit::run(&graph);
    if !audit.is_clean() {
        return Err(StoreError::AuditRejected);
    }
    Ok(graph)
}
