//! trec_eval-style evaluation for the SQE reproduction.
//!
//! The paper evaluates "the system's precision for the default tops in
//! TrecEval" and establishes significance with a paired t-test at
//! `p < 0.05`. This crate provides:
//!
//! * [`qrels`] — relevance judgments,
//! * [`run`] — ranked retrieval results per query,
//! * [`precision`] — P@k at the default trec_eval cutoffs
//!   (5, 10, 15, 20, 30, 100, 200, 500, 1000), plus average precision,
//! * [`stats`] — the paired Student t-test (two-sided), with an exact
//!   t-distribution CDF via the regularized incomplete beta function,
//! * [`trec`] — reading/writing trec_eval's qrels and run file formats
//!   for interop with the real evaluation toolchain.
//!
//! # Example
//!
//! ```
//! use ireval::{Qrels, Run, precision::precision_at};
//!
//! let mut qrels = Qrels::new();
//! qrels.add_judgment("q1", "d1");
//! qrels.add_judgment("q1", "d3");
//!
//! let mut run = Run::new("demo");
//! run.set_ranking("q1", vec!["d1".into(), "d2".into(), "d3".into()]);
//!
//! let p2 = precision_at(run.ranking("q1").unwrap(), qrels.relevant("q1"), 2);
//! assert_eq!(p2, 0.5);
//! ```

pub mod precision;
pub mod qrels;
pub mod run;
pub mod stats;
pub mod trec;

pub use precision::{PrecisionTable, TREC_CUTOFFS};
pub use qrels::Qrels;
pub use run::Run;
pub use stats::{paired_t_test, TTestResult};
