//! Pseudo-relevance feedback via Lavrenko's relevance model.
//!
//! Section 4.3 of the paper compares SQE against PRF "as an adaptation of
//! Lavrenko's relevance model": the original query retrieves a ranked list
//! of documents ordered by `P(Q|D)`, the concepts of the top documents are
//! sorted by `P(w|Q) = Σ_D P(w|D)·P(Q|D)·P(D) / P(Q)` and the top *n*
//! become the expansion features. This module implements RM1 (the pure
//! relevance model) and RM3 (interpolation with the original query, which
//! is what "SQE_C/PRF" — feeding the SQE-expanded query into PRF — uses).

use rustc_hash::FxHashMap;

use crate::index::{DocId, TermId};
use crate::ql::{self, QlParams, SearchHit};
use crate::searcher::Searcher;
use crate::structured::Query;

/// Parameters of the relevance-model feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrfParams {
    /// Number of feedback documents (Indri `fbDocs`).
    pub fb_docs: usize,
    /// Number of expansion terms kept (Indri `fbTerms`).
    pub fb_terms: usize,
    /// Interpolation weight of the original query in the reformulated one
    /// (Indri `fbOrigWeight`). `0.0` yields pure RM1 expansion.
    pub orig_weight: f64,
    /// Drop the base query's own terms from the relevance model, keeping
    /// only *new* concepts (the paper's PRF comparator reformulates the
    /// query from the top feedback concepts alone).
    pub exclude_base_terms: bool,
    /// Query-likelihood parameters of both retrieval passes.
    pub ql: QlParams,
}

impl Default for PrfParams {
    fn default() -> Self {
        PrfParams {
            fb_docs: 10,
            fb_terms: 20,
            orig_weight: 0.5,
            exclude_base_terms: false,
            ql: QlParams::default(),
        }
    }
}

/// Computes the relevance model over the feedback documents of `query`:
/// the top `fb_terms` terms with their normalized `P(w|Q)` estimates.
/// Returns an empty vector when the initial retrieval finds nothing.
pub fn relevance_model(index: &Searcher, query: &Query, params: PrfParams) -> Vec<(TermId, f64)> {
    let feedback = ql::rank(index, query, params.ql, params.fb_docs);
    let base_terms: rustc_hash::FxHashSet<TermId> = if params.exclude_base_terms {
        query
            .features()
            .iter()
            .flat_map(|f| f.feature.tokens())
            .filter_map(|t| index.term_id(t))
            .collect()
    } else {
        rustc_hash::FxHashSet::default()
    };
    relevance_model_from_hits(index, &feedback)
        .into_iter()
        .filter(|(t, _)| !base_terms.contains(t))
        .take(params.fb_terms)
        .collect()
}

/// Relevance model from an explicit feedback set (exposed so tests and the
/// experiment harness can inspect the full distribution).
pub fn relevance_model_from_hits(index: &Searcher, feedback: &[SearchHit]) -> Vec<(TermId, f64)> {
    if feedback.is_empty() {
        return Vec::new();
    }
    // P(Q|D) ∝ exp(logscore − max) with uniform P(D); normalized below.
    let max_score = feedback
        .iter()
        .map(|h| h.score)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut doc_weights: Vec<(DocId, f64)> = feedback
        .iter()
        .map(|h| (h.doc, (h.score - max_score).exp()))
        .collect();
    let z: f64 = doc_weights.iter().map(|&(_, w)| w).sum();
    if z <= 0.0 {
        return Vec::new();
    }
    for dw in &mut doc_weights {
        dw.1 /= z;
    }
    // P(w|Q) = Σ_D P(w|D)·P(Q|D) with maximum-likelihood P(w|D).
    let mut rel: FxHashMap<u32, f64> = FxHashMap::default();
    for &(doc, dw) in &doc_weights {
        let dl = index.doc_len(doc) as f64;
        if dl == 0.0 {
            continue;
        }
        for (term, tf) in index.doc_terms(doc) {
            *rel.entry(term.0).or_insert(0.0) += dw * tf as f64 / dl;
        }
    }
    let mut scored: Vec<(TermId, f64)> = rel.into_iter().map(|(t, p)| (TermId(t), p)).collect();
    scored.sort_by(|a, b| scorecmp::by_score_desc_then_id(a.1, b.1, a.0 .0, b.0 .0));
    scored
}

/// Builds the RM3-reformulated query: original query interpolated at
/// `orig_weight` with the relevance-model expansion terms.
pub fn expand_query(index: &Searcher, query: &Query, params: PrfParams) -> Query {
    let model = relevance_model(index, query, params);
    if model.is_empty() {
        return query.clone();
    }
    let mut expansion = Query::new();
    for (term, p) in model {
        expansion.push_term(index.term(term).to_owned(), p);
    }
    Query::combine(&[
        (query.clone(), params.orig_weight),
        (expansion, 1.0 - params.orig_weight),
    ])
}

/// Full PRF retrieval: expand with the relevance model, then rank with the
/// reformulated query.
pub fn rank_with_prf(index: &Searcher, query: &Query, params: PrfParams, k: usize) -> Vec<SearchHit> {
    let expanded = expand_query(index, query, params);
    ql::rank(index, &expanded, params.ql, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::index::IndexBuilder;
    use crate::ingest::SegmentedIndex;

    const CORPUS: [(&str, &str); 5] = [
        ("d0", "cable car funicular mountain"),
        ("d1", "cable car funicular village"),
        ("d2", "cable television news network"),
        ("d3", "funicular railway alpine"),
        ("d4", "political news network debate"),
    ];

    /// Corpus where "cable" co-occurs with "funicular" in the top docs, so
    /// feedback should surface "funicular" as an expansion term.
    fn corpus() -> Searcher {
        let mut b = IndexBuilder::new(Analyzer::plain());
        for (id, text) in CORPUS {
            b.add_document(id, text).expect("unique test ids");
        }
        Searcher::from_index(b.build())
    }

    fn params() -> PrfParams {
        PrfParams {
            fb_docs: 3,
            fb_terms: 5,
            orig_weight: 0.5,
            exclude_base_terms: false,
            ql: QlParams { mu: 10.0 },
        }
    }

    #[test]
    fn exclude_base_terms_drops_query_vocabulary() {
        let idx = corpus();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let p = PrfParams {
            exclude_base_terms: true,
            ..params()
        };
        let model = relevance_model(&idx, &q, p);
        let terms: Vec<&str> = model.iter().map(|&(t, _)| idx.term(t)).collect();
        assert!(!terms.contains(&"cable"));
        assert!(!terms.contains(&"car"));
        assert!(terms.contains(&"funicular"), "new concepts kept: {terms:?}");
    }

    #[test]
    fn relevance_model_surfaces_cooccurring_terms() {
        let idx = corpus();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let model = relevance_model(&idx, &q, params());
        let terms: Vec<&str> = model.iter().map(|&(t, _)| idx.term(t)).collect();
        assert!(terms.contains(&"funicular"), "terms: {terms:?}");
    }

    #[test]
    fn relevance_model_probabilities_are_normalized_per_doc() {
        let idx = corpus();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let feedback = ql::rank(&idx, &q, params().ql, 3);
        let model = relevance_model_from_hits(&idx, &feedback);
        let total: f64 = model.iter().map(|&(_, p)| p).sum();
        // Σ_w P(w|Q) = Σ_D P(Q|D) Σ_w P(w|D) = Σ_D P(Q|D) = 1.
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(model.iter().all(|&(_, p)| p > 0.0));
    }

    #[test]
    fn rm3_keeps_original_terms() {
        let idx = corpus();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let expanded = expand_query(&idx, &q, params());
        let toks: Vec<&str> = expanded
            .features()
            .iter()
            .flat_map(|f| f.feature.tokens())
            .map(|s| s.as_str())
            .collect();
        assert!(toks.contains(&"cable"));
        assert!(toks.contains(&"car"));
        assert!(toks.len() > 2, "expansion terms added");
        assert!((expanded.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_feedback_returns_original_query() {
        let idx = corpus();
        let q = Query::parse_text("zeppelin", &Analyzer::plain());
        let expanded = expand_query(&idx, &q, params());
        assert_eq!(expanded, q);
    }

    #[test]
    fn prf_retrieves_docs_missing_original_terms() {
        let idx = corpus();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let plain = ql::rank(&idx, &q, params().ql, 10);
        let plain_ids: Vec<&str> = plain.iter().map(|h| idx.external_id(h.doc)).collect();
        // d3 has neither "cable" nor "car"; only feedback can reach it.
        assert!(!plain_ids.contains(&"d3"));
        let fed = rank_with_prf(&idx, &q, params(), 10);
        let fed_ids: Vec<&str> = fed.iter().map(|h| idx.external_id(h.doc)).collect();
        assert!(fed_ids.contains(&"d3"), "PRF reaches d3 via 'funicular'");
    }

    #[test]
    fn orig_weight_one_roughly_preserves_ranking() {
        let idx = corpus();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let p = PrfParams {
            orig_weight: 1.0,
            ..params()
        };
        let plain = ql::rank(&idx, &q, p.ql, 3);
        let fed = rank_with_prf(&idx, &q, p, 3);
        let a: Vec<DocId> = plain.iter().map(|h| h.doc).collect();
        let b: Vec<DocId> = fed.iter().map(|h| h.doc).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fb_terms_caps_model_size() {
        let idx = corpus();
        let q = Query::parse_text("cable car", &Analyzer::plain());
        let p = PrfParams {
            fb_terms: 2,
            ..params()
        };
        assert!(relevance_model(&idx, &q, p).len() <= 2);
    }

    #[test]
    fn segmented_prf_is_bit_identical_to_monolithic() {
        let mono = corpus();
        let mut seg = SegmentedIndex::new(Analyzer::plain());
        for (id, text) in CORPUS {
            seg.add_document(id, text).expect("unique test ids");
            seg.seal().expect("non-empty buffer seals");
        }
        let segd = seg.searcher();
        assert!(segd.num_segments() > 1, "test must exercise >1 segment");
        let q = Query::parse_text("cable car", &Analyzer::plain());
        assert_eq!(
            relevance_model(&mono, &q, params()),
            relevance_model(&segd, &q, params())
        );
        assert_eq!(
            rank_with_prf(&mono, &q, params(), 10),
            rank_with_prf(&segd, &q, params(), 10)
        );
    }
}
