// Fixture: a shared counter guarded by convention, not by type. Three
// of its four access paths hold `state` — two of them only via callers
// (`bump` and `read_pending` are helpers reached under the lock), which
// only the interprocedural entry-lock context can see. `sneak` writes
// the field with no lock at all: a data race against every reader.

pub struct Svc {
    state: Mutex<Vec<u32>>,
    pending: usize,
}

impl Svc {
    fn bump(&mut self) {
        self.pending += 1;
    }

    fn read_pending(&self) -> usize {
        self.pending
    }

    pub fn add(&mut self, x: u32) {
        let mut s = self.state.lock().unwrap();
        s.push(x);
        self.bump();
    }

    pub fn drain(&mut self) -> Vec<u32> {
        let mut s = self.state.lock().unwrap();
        let out = s.split_off(0);
        self.bump();
        out
    }

    pub fn report(&self) -> usize {
        let s = self.state.lock().unwrap();
        s.capacity() + self.read_pending()
    }

    pub fn tally(&self) -> usize {
        let s = self.state.lock().unwrap();
        s.capacity() + self.pending
    }

    pub fn sneak(&mut self) {
        self.pending = 0;
    }
}
