//! End-to-end integration: generate a world, index it, expand, retrieve,
//! evaluate — across all six crates.

use ireval::precision::{mean_precision, per_query_precision};
use ireval::{paired_t_test, Qrels, Run};
use searchlite::{Analyzer, Index, IndexBuilder, QlParams};
use sqe::{MotifSet, SqeConfig, SqePipeline};
use synthwiki::{Dataset, TestBed, TestBedConfig};

fn build_world() -> (TestBed, Vec<Index>) {
    let bed = TestBed::generate(&TestBedConfig::small());
    let indexes = bed
        .collections
        .iter()
        .map(|coll| {
            let mut b = IndexBuilder::new(Analyzer::english());
            for d in &coll.docs {
                b.add_document(&d.id, &d.text).expect("generated ids are unique");
            }
            b.build()
        })
        .collect();
    (bed, indexes)
}

fn qrels_of(dataset: &Dataset) -> Qrels {
    let mut q = Qrels::new();
    for spec in &dataset.queries {
        q.add_query(&spec.id);
        for d in &dataset.relevant[&spec.id] {
            q.add_judgment(&spec.id, d);
        }
    }
    q
}

fn config() -> SqeConfig {
    SqeConfig {
        ql: QlParams { mu: 15.0 },
        ..SqeConfig::default()
    }
}

fn run_config(
    bed: &TestBed,
    dataset: &Dataset,
    index: &Index,
    name: &str,
    f: impl Fn(&SqePipeline<'_>, &synthwiki::QuerySpec, &[kbgraph::ArticleId]) -> Vec<String>,
) -> Run {
    let pipeline = SqePipeline::from_index(&bed.kb.graph, index, config());
    let mut run = Run::new(name);
    for q in &dataset.queries {
        let nodes: Vec<_> = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
        run.set_ranking(&q.id, f(&pipeline, q, &nodes));
    }
    run
}

#[test]
fn sqe_significantly_beats_unexpanded_queries() {
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let qrels = qrels_of(dataset);

    let baseline = run_config(&bed, dataset, index, "QL_Q", |p, q, _| {
        p.external_ids(&p.rank_user(&q.text))
    });
    let sqe = run_config(&bed, dataset, index, "SQE_T&S", |p, q, nodes| {
        let (hits, _) = p.rank_sqe(&q.text, nodes, &MotifSet::t_and_s());
        p.external_ids(&hits)
    });

    for k in [10, 30, 100] {
        let b = mean_precision(&baseline, &qrels, k);
        let s = mean_precision(&sqe, &qrels, k);
        assert!(s > b, "P@{k}: SQE {s:.3} must beat QL_Q {b:.3}");
    }
    let t = paired_t_test(
        &per_query_precision(&sqe, &qrels, 30),
        &per_query_precision(&baseline, &qrels, 30),
    )
    .expect("non-degenerate");
    assert!(
        t.significant_improvement(0.05),
        "improvement must be significant: p = {}",
        t.p_value
    );
}

#[test]
fn ground_truth_upper_bound_dominates_at_depth() {
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let qrels = qrels_of(dataset);
    let gt = synthwiki::GroundTruth::derive(&bed.kb, &bed.space, &dataset.queries);

    let ub = run_config(&bed, dataset, index, "UB", |p, q, _| {
        let g = gt.graph(&q.id).unwrap();
        let hits = p.rank_with_expansions(&q.text, &g.query_nodes, &g.weighted_expansions());
        p.external_ids(&hits)
    });
    let sqe = run_config(&bed, dataset, index, "SQE", |p, q, nodes| {
        let (hits, _) = p.rank_sqe(&q.text, nodes, &MotifSet::t_and_s());
        p.external_ids(&hits)
    });
    for k in [100, 500, 1000] {
        assert!(
            mean_precision(&ub, &qrels, k) + 1e-9 >= mean_precision(&sqe, &qrels, k),
            "UB must dominate blind traversal at P@{k}"
        );
    }
}

#[test]
fn sqe_c_stitches_three_configurations() {
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let pipeline = SqePipeline::from_index(&bed.kb.graph, index, config());

    let q = &dataset.queries[0];
    let nodes: Vec<_> = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
    let combined = pipeline.rank_sqe_c(&q.text, &nodes);
    let (t_hits, _) = pipeline.rank_sqe(&q.text, &nodes, &MotifSet::triangular());
    let t_ids = pipeline.external_ids(&t_hits);
    // Prefix comes from SQE_T.
    for i in 0..combined.len().min(t_ids.len()).min(5) {
        assert_eq!(combined[i], t_ids[i]);
    }
    // No duplicates and bounded depth.
    let set: std::collections::HashSet<&String> = combined.iter().collect();
    assert_eq!(set.len(), combined.len());
    assert!(combined.len() <= 1000);
}

#[test]
fn zero_relevant_queries_never_score() {
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("chic2012");
    let index = &indexes[dataset.collection];
    let qrels = qrels_of(dataset);
    let sqe = run_config(&bed, dataset, index, "SQE", |p, q, nodes| {
        let (hits, _) = p.rank_sqe(&q.text, nodes, &MotifSet::t_and_s());
        p.external_ids(&hits)
    });
    for q in dataset.queries.iter().filter(|q| q.zero_relevant) {
        let scores = per_query_precision(&sqe, &qrels, 1000);
        // The zero-relevant query contributes exactly zero precision.
        let idx = qrels.queries().iter().position(|id| *id == q.id).unwrap();
        assert_eq!(scores[idx], 0.0, "query {} should have no relevant docs", q.id);
    }
}

#[test]
fn pipeline_is_deterministic_across_rebuilds() {
    let (bed1, idx1) = build_world();
    let (bed2, idx2) = build_world();
    let d1 = bed1.dataset("imageclef");
    let d2 = bed2.dataset("imageclef");
    let p1 = SqePipeline::from_index(&bed1.kb.graph, &idx1[0], config());
    let p2 = SqePipeline::from_index(&bed2.kb.graph, &idx2[0], config());
    for (q1, q2) in d1.queries.iter().zip(d2.queries.iter()).take(4) {
        assert_eq!(q1.text, q2.text);
        let n1: Vec<_> = q1.targets.iter().map(|&e| bed1.kb.article_of[e]).collect();
        let n2: Vec<_> = q2.targets.iter().map(|&e| bed2.kb.article_of[e]).collect();
        let r1 = p1.rank_sqe_c(&q1.text, &n1);
        let r2 = p2.rank_sqe_c(&q2.text, &n2);
        assert_eq!(r1, r2, "ranking for {} must be reproducible", q1.id);
    }
}

#[test]
fn expansion_features_come_from_the_query_topic_neighborhood() {
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let pipeline = SqePipeline::from_index(&bed.kb.graph, index, config());
    let mut in_topic = 0usize;
    let mut total = 0usize;
    for q in &dataset.queries {
        let nodes: Vec<_> = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
        let qg = pipeline.build_query_graph(&nodes, &MotifSet::t_and_s());
        for &(a, _) in &qg.expansions {
            total += 1;
            if let Some(e) = bed.kb.entity_of_article(a) {
                if bed.space.entities[e].topic == q.topic {
                    in_topic += 1;
                }
            }
        }
    }
    assert!(total > 0, "motifs must fire on the synthetic KB");
    let frac = in_topic as f64 / total as f64;
    assert!(
        frac > 0.6,
        "motifs should mostly stay in the query topic: {frac:.2}"
    );
}
