/root/repo/target/release/deps/serde_json-7424084abb56da73.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7424084abb56da73.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7424084abb56da73.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
