//! `sqe-store`: versioned binary snapshot persistence for the SQE
//! pipeline.
//!
//! The paper's pipeline previously persisted only as JSON strings and
//! was otherwise regenerated from scratch on every boot — the dominant
//! cold-start cost of the query service. This crate gives every
//! artifact the service needs a single checksummed, versioned binary
//! file:
//!
//! * the CSR knowledge graph (titles + six adjacency structures),
//! * one positional inverted index per collection, with document stats,
//! * the entity-linker surface-form dictionary.
//!
//! # Format
//!
//! Format v2 is footer-led: a magic/version prefix, 8-byte aligned
//! section payloads (one per index *segment*), then a trailing section
//! table (`id`, `crc32`, `offset`, `len` per section) with its own CRC
//! and footer magic — see [`format`] for the byte layout and DESIGN.md
//! §10–11 for the policy discussion. Because the table lives at the
//! end, sealing a new segment [`append_segment`]s one payload and
//! rewrites only the footer; existing payload bytes are never touched.
//! Format v1 (front header, one section per collection) is still fully
//! decoded. In both versions every byte of the file is covered by a
//! checksum or pinned to a constant, so any single-bit corruption is
//! detected and reported as a typed [`StoreError`]; the store never
//! panics on untrusted bytes.
//!
//! # Loading
//!
//! [`Snapshot::from_bytes`] verifies checksums, decodes sections with a
//! validated bulk little-endian reader (`chunks_exact` +
//! `from_le_bytes`, the safe equivalent of reinterpreting an aligned
//! buffer — the workspace denies `unsafe`), shape-validates every
//! structure through its typed constructor, and then runs the full
//! `GraphAudit`/`IndexAudit` unconditionally before releasing anything
//! to the pipeline. JSON never appears in the load path.
//!
//! # Writing
//!
//! [`write_snapshot`] is atomic: encode to memory, write to a sibling
//! `.tmp` file, sync, rename. Encoding is byte-deterministic for equal
//! inputs.
//!
//! # Example
//!
//! ```
//! use kbgraph::GraphBuilder;
//! use searchlite::{Analyzer, IndexBuilder};
//! use entitylink::Dictionary;
//! use sqe_store::{encode_snapshot, Snapshot, SnapshotContents};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_article("cable car");
//! let c = b.add_category("transport");
//! b.add_membership(a, c);
//! let graph = b.build();
//! let mut ib = IndexBuilder::new(Analyzer::english());
//! ib.add_document("d0", "a cable car").unwrap();
//! let index = ib.build();
//! let mut dict = Dictionary::new();
//! dict.add("cable car", a, 1.0);
//!
//! let segments = [&index];
//! let collections = [("docs", &segments[..])];
//! let bytes = encode_snapshot(&SnapshotContents {
//!     graph: &graph,
//!     collections: &collections,
//!     dict: &dict,
//! }).unwrap();
//! let snap = Snapshot::from_bytes(&bytes).unwrap();
//! assert_eq!(snap.graph().num_articles(), 1);
//! assert_eq!(snap.index("docs").unwrap().num_docs(), 1);
//! assert_eq!(snap.searcher("docs").unwrap().num_docs(), 1);
//! ```

pub mod buf;
pub mod codec;
pub mod crc32;
pub mod error;
pub mod format;
pub mod snapshot;

pub use error::StoreError;
pub use snapshot::{
    append_segment, encode_snapshot, encode_snapshot_v1, write_snapshot, write_snapshot_bytes,
    Snapshot, SnapshotContents, SnapshotInfo,
};
