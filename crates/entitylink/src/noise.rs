//! Deterministic linking-error channel.
//!
//! The synthetic aliases already create *intrinsic* ambiguity (the wrong
//! but more common sense wins). This channel adds *extrinsic* error on
//! top — missed mentions and mislinks — so experiments can sweep linking
//! quality, as the paper's discussion of Figure 6 suggests ("improving
//! the techniques used in our system would improve the results").

/// Miss / mislink probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability that a detected mention is dropped entirely.
    pub p_miss: f64,
    /// Probability that a resolved mention is swapped to the next-best
    /// sense (when one exists; otherwise dropped).
    pub p_mislink: f64,
}

impl NoiseModel {
    /// The noiseless channel.
    pub fn none() -> Self {
        NoiseModel {
            p_miss: 0.0,
            p_mislink: 0.0,
        }
    }

    /// True when the channel never alters anything.
    pub fn is_none(&self) -> bool {
        self.p_miss <= 0.0 && self.p_mislink <= 0.0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::none()
    }
}

/// A tiny deterministic PRNG (splitmix64) so noise decisions are a pure
/// function of (seed, draw index) — links never change across runs.
#[derive(Debug, Clone)]
pub struct NoiseRng {
    state: u64,
}

impl NoiseRng {
    /// Seeds the generator; the same seed yields the same decisions.
    pub fn new(seed: u64) -> Self {
        NoiseRng { state: seed }
    }

    /// Seeds from arbitrary text (e.g. the query string) via FNV-1a.
    pub fn from_text(text: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        NoiseRng::new(h)
    }

    /// Next uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

/// Probabilities of the seeded query-perturbation channel: deterministic
/// paraphrase/typo variants of a replay query set, so load benchmarks
/// stress cache hit-rates instead of replaying a fixed 50-query loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbationModel {
    /// Probability that a token is dropped (paraphrase-style shortening;
    /// at least one token always survives).
    pub p_drop: f64,
    /// Probability that a surviving token gets one adjacent-character
    /// transposition (typo).
    pub p_typo: f64,
    /// Probability that one adjacent token pair is swapped after the
    /// per-token pass (paraphrase-style reordering).
    pub p_swap: f64,
}

impl PerturbationModel {
    /// The identity channel: every variant equals the original text.
    pub fn none() -> Self {
        PerturbationModel {
            p_drop: 0.0,
            p_typo: 0.0,
            p_swap: 0.0,
        }
    }

    /// A light mix of drops, typos and swaps — enough to perturb most
    /// variants while keeping queries recognizable.
    pub fn light() -> Self {
        PerturbationModel {
            p_drop: 0.15,
            p_typo: 0.25,
            p_swap: 0.2,
        }
    }

    /// True when the channel never alters anything.
    pub fn is_none(&self) -> bool {
        self.p_drop <= 0.0 && self.p_typo <= 0.0 && self.p_swap <= 0.0
    }
}

impl Default for PerturbationModel {
    fn default() -> Self {
        PerturbationModel::none()
    }
}

/// Deterministic variant `variant` of `text` under `model`.
///
/// Variant 0 is always the identity (the replay keeps its originals);
/// higher variants draw from an RNG seeded by `(text, variant)`, so the
/// whole variant family is a pure function of its inputs — the same
/// text and variant index produce the same perturbed query in every
/// run, on every thread.
pub fn perturb_query(text: &str, variant: u64, model: &PerturbationModel) -> String {
    if variant == 0 || model.is_none() {
        return text.to_owned();
    }
    let mut seed_rng = NoiseRng::from_text(text);
    // Mix the variant index into the text-derived seed so each variant
    // has its own independent stream.
    let _ = seed_rng.next_f64();
    let mut rng = NoiseRng::new(
        seed_rng.state ^ variant.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let tokens: Vec<&str> = text.split_whitespace().collect();
    let mut kept: Vec<String> = Vec::with_capacity(tokens.len());
    for tok in &tokens {
        if rng.chance(model.p_drop) {
            continue;
        }
        if rng.chance(model.p_typo) {
            kept.push(transpose_once(tok, &mut rng));
        } else {
            kept.push((*tok).to_owned());
        }
    }
    if kept.is_empty() {
        // Paraphrases shorten queries; they never empty them.
        if let Some(first) = tokens.first() {
            kept.push((*first).to_owned());
        }
    }
    if kept.len() >= 2 && rng.chance(model.p_swap) {
        let pos = (rng.next_f64() * (kept.len() - 1) as f64) as usize;
        if pos + 1 < kept.len() {
            kept.swap(pos, pos + 1);
        }
    }
    kept.join(" ")
}

/// Transposes one adjacent character pair at an RNG-chosen position
/// (identity for single-character tokens).
fn transpose_once(token: &str, rng: &mut NoiseRng) -> String {
    let mut chars: Vec<char> = token.chars().collect();
    if chars.len() < 2 {
        return token.to_owned();
    }
    let pos = (rng.next_f64() * (chars.len() - 1) as f64) as usize;
    if pos + 1 < chars.len() {
        chars.swap(pos, pos + 1);
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_channel_is_none() {
        assert!(NoiseModel::none().is_none());
        assert!(NoiseModel::default().is_none());
        assert!(!NoiseModel {
            p_miss: 0.1,
            p_mislink: 0.0
        }
        .is_none());
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = NoiseRng::new(7);
        let mut b = NoiseRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    #[test]
    fn rng_from_text_stable() {
        let mut a = NoiseRng::from_text("cable cars");
        let mut b = NoiseRng::from_text("cable cars");
        assert_eq!(a.next_f64(), b.next_f64());
        let mut c = NoiseRng::from_text("other");
        assert_ne!(a.next_f64(), c.next_f64());
    }

    #[test]
    fn values_in_unit_interval_and_spread() {
        let mut r = NoiseRng::new(42);
        let mut low = 0;
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                low += 1;
            }
        }
        assert!((350..=650).contains(&low), "roughly balanced: {low}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = NoiseRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn variant_zero_is_identity() {
        let model = PerturbationModel::light();
        assert_eq!(perturb_query("historic cable car photos", 0, &model), "historic cable car photos");
        assert_eq!(
            perturb_query("anything at all", 3, &PerturbationModel::none()),
            "anything at all"
        );
    }

    #[test]
    fn variants_are_deterministic_and_distinct() {
        let model = PerturbationModel::light();
        let text = "historic cable car photos from the mountain village";
        for v in 1..8 {
            assert_eq!(
                perturb_query(text, v, &model),
                perturb_query(text, v, &model),
                "variant {v} must be reproducible"
            );
        }
        // With a light model over a long query, some variant differs
        // from the original and from at least one sibling.
        let variants: Vec<String> = (1..8).map(|v| perturb_query(text, v, &model)).collect();
        assert!(variants.iter().any(|p| p != text), "some variant perturbs");
        assert!(
            variants.iter().any(|p| p != &variants[0]),
            "variants draw independent streams"
        );
    }

    #[test]
    fn perturbation_never_empties_the_query() {
        let always_drop = PerturbationModel {
            p_drop: 1.0,
            p_typo: 0.0,
            p_swap: 0.0,
        };
        for v in 1..5 {
            let p = perturb_query("lonely", v, &always_drop);
            assert_eq!(p, "lonely", "a one-token query survives total drop");
            let p = perturb_query("two tokens", v, &always_drop);
            assert_eq!(p, "two", "the first token is restored when all drop");
        }
    }

    #[test]
    fn typos_transpose_adjacent_characters() {
        let always_typo = PerturbationModel {
            p_drop: 0.0,
            p_typo: 1.0,
            p_swap: 0.0,
        };
        for v in 1..6 {
            let p = perturb_query("funicular", v, &always_typo);
            assert_eq!(p.chars().count(), "funicular".chars().count());
            let mut want: Vec<char> = "funicular".chars().collect();
            let mut got: Vec<char> = p.chars().collect();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "a transposition permutes, never mutates");
        }
        // Single-character tokens are immune.
        assert_eq!(perturb_query("a", 1, &always_typo), "a");
    }

    #[test]
    fn swap_reorders_tokens() {
        let always_swap = PerturbationModel {
            p_drop: 0.0,
            p_typo: 0.0,
            p_swap: 1.0,
        };
        for v in 1..6 {
            let p = perturb_query("alpha beta gamma delta", v, &always_swap);
            let mut want = ["alpha", "beta", "gamma", "delta"];
            let mut got: Vec<&str> = p.split_whitespace().collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "a swap permutes tokens, never drops them");
        }
    }
}
