// Fixture: segment lifecycle functions that freeze buffered state via
// `.build()` without auditing the result.

pub fn seal(&mut self) -> Segment {
    let builder = std::mem::take(&mut self.buffer);
    let index = builder.build();
    Segment::new(self.next_id, index)
}

pub fn merge(&mut self, parts: &[Segment]) -> Segment {
    let mut b = IndexBuilder::new(self.analyzer.clone());
    for part in parts {
        b.absorb(part);
    }
    Segment::new(self.next_id, b.build())
}

// Any other function name keeps the old behaviour: `.build()` alone is
// not a mutation site.
pub fn freeze(&mut self) -> Segment {
    Segment::new(0, self.buffer.build())
}
