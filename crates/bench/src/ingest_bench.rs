//! `experiments ingest-bench`: live-ingestion benchmark for the
//! segmented query service.
//!
//! Measures, per dataset, the three serving regimes of the segmented
//! architecture:
//!
//! * **static** — the corpus fully sealed into its initial segment, no
//!   writes: the pre-refactor baseline throughput;
//! * **ingest** — queries replayed *while* documents stream in and the
//!   buffer seals every `seal_every` additions: queries-per-second under
//!   write load, plus add/seal/merge latency histograms from the
//!   service's [`sqe::IngestHistograms`];
//! * **merged** — after a final [`QueryService::force_merge`] compacts
//!   every segment into one: throughput once the corpus is monolithic
//!   again.
//!
//! Byte-identical scoring across the three regimes is already enforced
//! by the determinism wall (`tests/serve_determinism.rs`); this bench
//! only measures cost. The report is written to `BENCH_ingest.json`;
//! CI runs `--smoke` on the small bed and archives the file.

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use kbgraph::ArticleId;
use searchlite::{Analyzer, QlParams, ShardRouter};
use serde::Serialize;
use sqe::{
    ExpandConfig, MonotonicClock, QueryService, ServeConfig, ShardedService, SqeConfig,
    INGEST_STAGE_NAMES,
};
use synthwiki::{TestBedConfig, TestBedPlan};

use crate::context::ExperimentContext;
use crate::serve_bench::StageStats;

/// Ingest-bench options.
#[derive(Debug, Clone, Copy)]
pub struct IngestBenchOptions {
    /// How many times the query set is replayed per measured batch.
    pub repeat: usize,
    /// Worker threads for the batch executor.
    pub workers: usize,
    /// Documents streamed in during the ingest phase.
    pub ingest_docs: usize,
    /// A seal is forced every this many added documents.
    pub seal_every: usize,
    /// Expansion-cache capacity handed to the service.
    pub cache_capacity: usize,
}

impl Default for IngestBenchOptions {
    fn default() -> Self {
        IngestBenchOptions {
            repeat: 4,
            workers: 4,
            ingest_docs: 400,
            seal_every: 50,
            cache_capacity: 4096,
        }
    }
}

impl IngestBenchOptions {
    /// The CI smoke preset: minimal load, same phase coverage.
    pub fn smoke() -> Self {
        IngestBenchOptions {
            repeat: 1,
            workers: 2,
            ingest_docs: 40,
            seal_every: 10,
            cache_capacity: 4096,
        }
    }
}

/// One measured regime (static, ingest or merged) of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct IngestPhaseReport {
    /// `"static"`, `"ingest"` or `"merged"`.
    pub phase: String,
    /// Queries served in this phase.
    pub queries: u64,
    /// Wall-clock time of the whole phase (ms), including writes.
    pub wall_ms: f64,
    /// Queries per second over the phase wall time.
    pub throughput_qps: f64,
    /// Segment-set epoch at the end of the phase.
    pub epoch: u64,
    /// Segments at the end of the phase.
    pub segments: usize,
    /// Documents added in this phase.
    pub docs_ingested: u64,
    /// Seals performed in this phase.
    pub seals: u64,
    /// Merge operations performed in this phase.
    pub merges: u64,
    /// add/seal/merge latency statistics for this phase.
    pub ingest_stages: Vec<StageStats>,
}

/// All three phases of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct IngestCellReport {
    /// Dataset name.
    pub dataset: String,
    /// Queries per replayed batch.
    pub load: usize,
    /// static → ingest → merged, in order.
    pub phases: Vec<IngestPhaseReport>,
}

/// The whole ingest-bench report (`BENCH_ingest.json`).
#[derive(Debug, Clone, Serialize)]
pub struct IngestBenchReport {
    /// `"small"` or `"full"` test bed.
    pub context: String,
    /// Replays per measured batch.
    pub repeat: usize,
    /// Worker threads used by the batch executor.
    pub workers: usize,
    /// Documents streamed during each ingest phase.
    pub ingest_docs: usize,
    /// Forced seal cadence (documents per seal).
    pub seal_every: usize,
    /// One cell per dataset.
    pub cells: Vec<IngestCellReport>,
}

fn nanos_to_ms(n: u64) -> f64 {
    n as f64 / 1e6
}

/// Converts the phase-scoped metrics snapshot into a report entry.
fn phase_report(
    service: &QueryService<'_>,
    phase: &str,
    wall_ms: f64,
) -> IngestPhaseReport {
    let snap = service.metrics_snapshot();
    let ingest_stages = INGEST_STAGE_NAMES
        .iter()
        .zip(snap.ingest.iter())
        .map(|(name, h)| StageStats {
            stage: (*name).to_owned(),
            count: h.count,
            mean_ms: h.mean_nanos / 1e6,
            p50_ms: nanos_to_ms(h.p50_nanos),
            p95_ms: nanos_to_ms(h.p95_nanos),
            p99_ms: nanos_to_ms(h.p99_nanos),
            p999_ms: nanos_to_ms(h.p999_nanos),
        })
        .collect();
    IngestPhaseReport {
        phase: phase.to_owned(),
        queries: snap.queries,
        wall_ms,
        throughput_qps: if wall_ms > 0.0 {
            snap.queries as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        epoch: snap.epoch,
        segments: service.num_segments(),
        docs_ingested: snap.docs_ingested,
        seals: snap.seals,
        merges: snap.merges,
        ingest_stages,
    }
}

/// Runs the three-regime measurement over every dataset.
pub fn run_ingest_bench(
    ctx: &ExperimentContext,
    context_name: &str,
    opts: &IngestBenchOptions,
) -> IngestBenchReport {
    let mut cells = Vec::new();
    for dataset in ["imageclef", "chic2012", "chic2013"] {
        let runner = ctx.runner(dataset);
        let ds = runner.dataset();
        let index = &ctx.indexes[ds.collection];
        let coll = ctx.bed.collection_of(ds);
        let mut load: Vec<(String, Vec<ArticleId>)> = Vec::new();
        for _ in 0..opts.repeat.max(1) {
            for q in &ds.queries {
                load.push((q.text.clone(), runner.manual_nodes(q)));
            }
        }
        let service = QueryService::with_clock(
            &ctx.bed.kb.graph,
            index,
            ctx.sqe_config,
            ServeConfig {
                workers: opts.workers,
                cache_capacity: opts.cache_capacity,
                ..ServeConfig::default()
            },
            Arc::new(MonotonicClock::new()),
        );

        // Phase 1: static — the sealed corpus, no writes.
        let start = Instant::now();
        std::hint::black_box(service.run_batch_sqe_c(&load).len());
        let static_phase =
            phase_report(&service, "static", start.elapsed().as_secs_f64() * 1e3);

        // Phase 2: ingest — queries interleaved with adds and seals.
        // Document text is recycled from the collection so the streamed
        // load is statistically representative of the corpus.
        service.reset_metrics();
        let start = Instant::now();
        let seal_every = opts.seal_every.max(1);
        let chunks = opts.ingest_docs.div_ceil(seal_every).max(1);
        let mut added = 0usize;
        for chunk in 0..chunks {
            for _ in 0..seal_every.min(opts.ingest_docs - added) {
                let text = &coll.docs[added % coll.docs.len()].text;
                service
                    .add_document(&format!("ingest-{dataset}-{added}"), text)
                    .expect("streamed ingest ids are unique");
                added += 1;
            }
            service.seal();
            std::hint::black_box(service.run_batch_sqe_c(&load).len());
            std::hint::black_box(chunk);
        }
        let ingest_phase =
            phase_report(&service, "ingest", start.elapsed().as_secs_f64() * 1e3);

        // Phase 3: merged — one compaction, then the same replay.
        service.reset_metrics();
        let start = Instant::now();
        service.force_merge();
        std::hint::black_box(service.run_batch_sqe_c(&load).len());
        let merged_phase =
            phase_report(&service, "merged", start.elapsed().as_secs_f64() * 1e3);

        cells.push(IngestCellReport {
            dataset: dataset.to_owned(),
            load: load.len(),
            phases: vec![static_phase, ingest_phase, merged_phase],
        });
    }
    IngestBenchReport {
        context: context_name.to_owned(),
        repeat: opts.repeat,
        workers: opts.workers,
        ingest_docs: opts.ingest_docs,
        seal_every: opts.seal_every,
        cells,
    }
}

/// Serializes the report to pretty JSON.
pub fn report_json(report: &IngestBenchReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_owned())
}

/// Writes `BENCH_ingest.json` (or any other path).
pub fn write_report(report: &IngestBenchReport, path: &Path) -> io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// A human-readable summary table of the report.
pub fn format_report(report: &IngestBenchReport) -> String {
    let mut s = format!(
        "=== ingest-bench ({} bed, x{} replay, {} docs, seal every {}) ===\n\
         {:<11}{:>8}  {:>9}{:>7}{:>6}{:>7}{:>12}{:>12}\n",
        report.context,
        report.repeat,
        report.ingest_docs,
        report.seal_every,
        "dataset",
        "phase",
        "qps",
        "segs",
        "epoch",
        "seals",
        "seal p95 ms",
        "add p95 ms"
    );
    for cell in &report.cells {
        for phase in &cell.phases {
            let p95 = |n: &str| {
                phase
                    .ingest_stages
                    .iter()
                    .find(|st| st.stage == n)
                    .map_or(0.0, |st| st.p95_ms)
            };
            s.push_str(&format!(
                "{:<11}{:>8}  {:>9.1}{:>7}{:>6}{:>7}{:>12.3}{:>12.3}\n",
                cell.dataset,
                phase.phase,
                phase.throughput_qps,
                phase.segments,
                phase.epoch,
                phase.seals,
                p95("seal"),
                p95("add")
            ));
        }
    }
    s
}

// ------------------------------------------------------------------
// Streaming sharded build: `experiments ingest-bench --articles=N
// --shards=M`. The corpus never exists in memory — the streaming
// generator hands each document straight to the router, which buffers
// it on its shard until the periodic seal.
// ------------------------------------------------------------------

/// Options for the streaming sharded build.
#[derive(Debug, Clone, Copy)]
pub struct StreamingIngestOptions {
    /// Total articles across both collections.
    pub articles: usize,
    /// Shards per collection service.
    pub shards: usize,
    /// Every shard of a collection is sealed after this many documents
    /// stream into that collection.
    pub seal_every: usize,
    /// Worker threads for the post-build query replay.
    pub workers: usize,
    /// Expansion-cache capacity per service.
    pub cache_capacity: usize,
}

impl StreamingIngestOptions {
    /// Full preset (used for the headline 1M-article build).
    pub fn new(articles: usize, shards: usize) -> Self {
        StreamingIngestOptions {
            articles,
            shards: shards.max(1),
            seal_every: 50_000,
            workers: 4,
            cache_capacity: 4096,
        }
    }

    /// CI smoke preset: tighter seal cadence so several epochs happen
    /// even on a small article budget.
    pub fn smoke(articles: usize, shards: usize) -> Self {
        StreamingIngestOptions {
            articles,
            shards: shards.max(1),
            seal_every: 10_000,
            workers: 2,
            cache_capacity: 4096,
        }
    }
}

/// Post-build query throughput over one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct StreamingServeCell {
    /// Dataset name.
    pub dataset: String,
    /// Queries replayed (SQE_C).
    pub queries: u64,
    /// Replay wall time (ms).
    pub wall_ms: f64,
    /// Queries per second.
    pub throughput_qps: f64,
}

/// The streaming-build report (`BENCH_ingest.json` in `--articles` mode).
#[derive(Debug, Clone, Serialize)]
pub struct StreamingIngestReport {
    /// Always `"streaming"`.
    pub context: String,
    /// Articles requested (and generated).
    pub articles: usize,
    /// Shards per collection service.
    pub shards: usize,
    /// Seal cadence (documents per collection between seal sweeps).
    pub seal_every: usize,
    /// Worker threads for the query replay.
    pub workers: usize,
    /// Wall time of KB + query-set planning (ms), before any document.
    pub plan_ms: f64,
    /// Wall time of the streamed generate-route-index-seal build (ms).
    pub build_ms: f64,
    /// Documents ingested across both collection services.
    pub docs_ingested: u64,
    /// Build throughput (documents per second).
    pub docs_per_sec: f64,
    /// Seals across all shards of both services.
    pub seals: u64,
    /// Merges across all shards of both services.
    pub merges: u64,
    /// Final per-shard epoch vector of each collection service.
    pub epoch_vectors: Vec<Vec<u64>>,
    /// Post-build SQE_C throughput per dataset.
    pub serve: Vec<StreamingServeCell>,
}

/// Generates `cfg`'s test bed with the streaming generator, routing
/// every document into one of two sharded services (one per
/// collection) as it is emitted, then replays every dataset's query
/// set through the sharded scatter-gather path.
pub fn run_streaming_ingest_bench(
    cfg: &TestBedConfig,
    opts: &StreamingIngestOptions,
) -> StreamingIngestReport {
    let plan_start = Instant::now();
    let plan = TestBedPlan::new(cfg);
    let plan_ms = plan_start.elapsed().as_secs_f64() * 1e3;

    let sqe_config = SqeConfig {
        expand: ExpandConfig::default(),
        ql: QlParams { mu: 15.0 },
        depth: 1000,
    };
    let serve_cfg = ServeConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        ..ServeConfig::default()
    };
    let services: Vec<ShardedService<'_>> = (0..2)
        .map(|_| {
            ShardedService::with_clock(
                &plan.kb.graph,
                Analyzer::english(),
                ShardRouter::new(opts.shards.max(1)),
                sqe_config,
                serve_cfg.clone(),
                Arc::new(MonotonicClock::new()),
            )
        })
        .collect();

    let build_start = Instant::now();
    let seal_every = opts.seal_every.max(1);
    let mut counts = [0usize; 2];
    let (datasets, _doc_counts) = plan.stream_docs(cfg, &mut |coll, doc| {
        let service = services
            .get(coll)
            .expect("invariant: the generator emits exactly two collections");
        service
            .add_document(&doc.id, &doc.text)
            .expect("invariant: generated document ids are unique");
        let count = counts
            .get_mut(coll)
            .expect("invariant: the generator emits exactly two collections");
        *count += 1;
        if *count % seal_every == 0 {
            service.seal_all();
        }
    });
    for service in &services {
        service.seal_all();
    }
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

    let mut docs_ingested = 0u64;
    let mut seals = 0u64;
    let mut merges = 0u64;
    let mut epoch_vectors = Vec::new();
    for service in &services {
        let snap = service.metrics_snapshot();
        docs_ingested += snap.docs_ingested;
        seals += snap.seals;
        merges += snap.merges;
        epoch_vectors.push(service.epoch_vector());
    }

    let mut serve = Vec::new();
    for ds in &datasets {
        let load: Vec<(String, Vec<ArticleId>)> = ds
            .queries
            .iter()
            .map(|q| {
                let nodes = q
                    .targets
                    .iter()
                    .filter_map(|&e| plan.kb.article_of.get(e).copied())
                    .collect();
                (q.text.clone(), nodes)
            })
            .collect();
        let Some(service) = services.get(ds.collection) else {
            continue;
        };
        service.reset_metrics();
        let start = Instant::now();
        std::hint::black_box(service.run_batch_sqe_c(&load).len());
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let queries = service.metrics_snapshot().queries;
        serve.push(StreamingServeCell {
            dataset: ds.name.clone(),
            queries,
            wall_ms,
            throughput_qps: if wall_ms > 0.0 {
                queries as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
        });
    }

    StreamingIngestReport {
        context: "streaming".to_owned(),
        articles: opts.articles,
        shards: opts.shards.max(1),
        seal_every,
        workers: opts.workers,
        plan_ms,
        build_ms,
        docs_ingested,
        docs_per_sec: if build_ms > 0.0 {
            docs_ingested as f64 / (build_ms / 1e3)
        } else {
            0.0
        },
        seals,
        merges,
        epoch_vectors,
        serve,
    }
}

/// Serializes the streaming report to pretty JSON.
pub fn streaming_report_json(report: &StreamingIngestReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_owned())
}

/// Writes the streaming report to disk.
pub fn write_streaming_report(report: &StreamingIngestReport, path: &Path) -> io::Result<()> {
    std::fs::write(path, streaming_report_json(report))
}

/// A human-readable summary of the streaming build.
pub fn format_streaming_report(report: &StreamingIngestReport) -> String {
    let mut s = format!(
        "=== streaming ingest ({} articles, {} shards, seal every {}) ===\n\
         plan {:.0} ms | build {:.0} ms | {} docs @ {:.0} docs/s | {} seals, {} merges\n",
        report.articles,
        report.shards,
        report.seal_every,
        report.plan_ms,
        report.build_ms,
        report.docs_ingested,
        report.docs_per_sec,
        report.seals,
        report.merges,
    );
    for (i, epochs) in report.epoch_vectors.iter().enumerate() {
        s.push_str(&format!("collection {i} epochs: {epochs:?}\n"));
    }
    for cell in &report.serve {
        s.push_str(&format!(
            "{:<11}{:>6} queries  {:>9.1} qps\n",
            cell.dataset, cell.queries, cell.throughput_qps
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_covers_all_three_regimes() {
        let ctx = ExperimentContext::small();
        let opts = IngestBenchOptions::smoke();
        let report = run_ingest_bench(&ctx, "small", &opts);
        assert_eq!(report.cells.len(), 3);
        for cell in &report.cells {
            assert_eq!(cell.phases.len(), 3);
            let [st, ing, merged] = &cell.phases[..] else {
                unreachable!("three phases asserted above")
            };
            assert_eq!(st.phase, "static");
            assert_eq!(ing.phase, "ingest");
            assert_eq!(merged.phase, "merged");
            // Static: sealed single segment, no writes, epoch untouched.
            assert_eq!(st.segments, 1);
            assert_eq!(st.epoch, 0);
            assert_eq!(st.docs_ingested, 0);
            assert!(st.throughput_qps > 0.0);
            // Ingest: every streamed doc was added, every chunk sealed,
            // and the epoch is the number of seals.
            assert_eq!(ing.docs_ingested as usize, opts.ingest_docs);
            assert_eq!(
                ing.seals as usize,
                opts.ingest_docs.div_ceil(opts.seal_every)
            );
            assert_eq!(ing.epoch, ing.seals);
            let by_name = |n: &str| {
                ing.ingest_stages
                    .iter()
                    .find(|s| s.stage == n)
                    .cloned()
                    .expect("ingest stage present")
            };
            assert_eq!(by_name("add").count as usize, opts.ingest_docs);
            assert_eq!(by_name("seal").count, ing.seals);
            assert!(by_name("seal").mean_ms > 0.0);
            // Merged: one segment again, queries still flowing.
            assert_eq!(merged.segments, 1);
            assert!(merged.queries > 0);
            assert!(merged.throughput_qps > 0.0);
        }
        let json = report_json(&report);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("report JSON parses");
        assert!(parsed.get("cells").is_some());
        let table = format_report(&report);
        assert!(table.contains("ingest"));
        assert!(table.contains("merged"));
    }

    #[test]
    fn streaming_build_ingests_every_article_and_serves_queries() {
        let mut cfg = TestBedConfig::small();
        cfg.imageclef.total_docs = 900;
        cfg.chic.total_docs = 1_400;
        let mut opts = StreamingIngestOptions::smoke(2_300, 3);
        opts.seal_every = 500;
        opts.workers = 2;
        let report = run_streaming_ingest_bench(&cfg, &opts);
        assert_eq!(report.docs_ingested, 2_300);
        assert_eq!(report.shards, 3);
        assert!(report.docs_per_sec > 0.0);
        assert!(report.build_ms > 0.0);
        // Two collection services, three shards each; periodic + final
        // seals advanced at least one epoch per service.
        assert_eq!(report.epoch_vectors.len(), 2);
        for epochs in &report.epoch_vectors {
            assert_eq!(epochs.len(), 3);
            assert!(epochs.iter().sum::<u64>() > 0);
        }
        assert!(report.seals > 0);
        // All three datasets replayed their full query sets.
        assert_eq!(report.serve.len(), 3);
        for cell in &report.serve {
            assert!(cell.queries > 0);
            assert!(cell.throughput_qps > 0.0);
        }
        let json = streaming_report_json(&report);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("report JSON parses");
        assert_eq!(
            parsed.get("context").and_then(|c| c.as_str()),
            Some("streaming")
        );
        let table = format_streaming_report(&report);
        assert!(table.contains("docs/s"));
        assert!(table.contains("imageclef"));
    }
}
