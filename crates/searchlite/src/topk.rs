//! Bounded top-k selection with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored candidate; orders by *ascending* score then *descending* doc id
/// so that a max-heap`BinaryHeap` keeps the worst element on top and pops
/// it first — i.e. the heap acts as a bounded min-heap of the best k.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    score: f64,
    doc: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Higher score = better. We invert so the heap's max is the *worst*
        // kept candidate. Ties broken toward larger doc id being worse,
        // yielding ascending-doc-id order among equal scores.
        scorecmp::by_score_desc_then_id(self.score, other.score, self.doc, other.doc)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Collects the k highest-scoring `(doc, score)` pairs, returned sorted by
/// descending score, ties by ascending doc id. NaN scores are skipped.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// Creates a collector for the best `k` entries.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate.
    pub fn push(&mut self, doc: u32, score: f64) {
        if self.k == 0 || score.is_nan() {
            return;
        }
        let entry = HeapEntry { score, doc };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            // `worst` pops first; keep `entry` if it ranks strictly ahead.
            let better = scorecmp::by_score_desc_then_id(score, worst.score, doc, worst.doc)
                == Ordering::Less;
            if better {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Finishes and returns the ranked list (best first).
    pub fn into_sorted(mut self) -> Vec<(u32, f64)> {
        self.drain_sorted()
    }

    /// Drains the held candidates as a ranked list (best first), leaving
    /// the collector empty but with its heap allocation intact — the
    /// scratch-buffer entry point for batch serving.
    pub fn drain_sorted(&mut self) -> Vec<(u32, f64)> {
        let mut v: Vec<HeapEntry> = self.heap.drain().collect();
        v.sort_by(|a, b| scorecmp::by_score_desc_then_id(a.score, b.score, a.doc, b.doc));
        v.into_iter().map(|e| (e.doc, e.score)).collect()
    }

    /// Empties the collector and re-arms it for the best `k` entries,
    /// keeping the heap allocation for reuse.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }

    /// Number of candidates currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidate has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(2);
        for (d, s) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0)] {
            t.push(d, s);
        }
        assert_eq!(t.into_sorted(), vec![(1, 5.0), (3, 4.0)]);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let mut t = TopK::new(3);
        for d in [5, 1, 3, 2] {
            t.push(d, 7.0);
        }
        assert_eq!(t.into_sorted(), vec![(1, 7.0), (2, 7.0), (3, 7.0)]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut t = TopK::new(10);
        t.push(4, 2.0);
        t.push(9, 1.0);
        assert_eq!(t.into_sorted(), vec![(4, 2.0), (9, 1.0)]);
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut t = TopK::new(0);
        t.push(1, 1.0);
        assert!(t.is_empty());
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn nan_scores_skipped() {
        let mut t = TopK::new(2);
        t.push(1, f64::NAN);
        t.push(2, 1.0);
        assert_eq!(t.into_sorted(), vec![(2, 1.0)]);
    }

    #[test]
    fn negative_scores_ordered_correctly() {
        let mut t = TopK::new(2);
        t.push(1, -10.0);
        t.push(2, -5.0);
        t.push(3, -20.0);
        assert_eq!(t.into_sorted(), vec![(2, -5.0), (1, -10.0)]);
    }

    #[test]
    fn reset_and_drain_reuse_matches_fresh_collector() {
        let mut t = TopK::new(2);
        for (d, s) in [(0, 1.0), (1, 5.0), (2, 3.0)] {
            t.push(d, s);
        }
        assert_eq!(t.drain_sorted(), vec![(1, 5.0), (2, 3.0)]);
        assert!(t.is_empty());
        t.reset(1);
        t.push(4, 2.0);
        t.push(5, 9.0);
        assert_eq!(t.drain_sorted(), vec![(5, 9.0)]);
    }

    #[test]
    fn tie_at_boundary_prefers_smaller_doc() {
        let mut t = TopK::new(1);
        t.push(7, 3.0);
        t.push(2, 3.0); // same score, smaller id must displace 7
        assert_eq!(t.into_sorted(), vec![(2, 3.0)]);
    }
}
