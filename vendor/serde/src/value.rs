//! The owned JSON-like value tree plus its text parser and printers.

use std::collections::BTreeMap;
use std::fmt;

use crate::Error;

/// A JSON number: signed, unsigned, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer (only produced for negative values).
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// Wraps an `i64`, normalizing non-negative values to `U64`.
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number::U64(v as u64)
        } else {
            Number::I64(v)
        }
    }

    /// Wraps a `u64`.
    pub fn from_u64(v: u64) -> Number {
        Number::U64(v)
    }

    /// Wraps an `f64`.
    pub fn from_f64(v: f64) -> Number {
        Number::F64(v)
    }

    /// The value as `f64` (always possible, integers may round).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// An ordered string-keyed object map.
///
/// The generic parameters exist only for source compatibility with
/// `serde_json::Map<String, Value>` spellings; the single instantiation
/// used is `Map<String, Value>`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value>
where
    K: Ord,
{
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Inserts a key/value pair, returning any previous value.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        self.inner.insert(k, v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.inner.iter()
    }
}

impl<K: Ord + std::borrow::Borrow<str>, V> Map<K, V> {
    /// Looks up a value by string key.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.inner.get(key)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::collections::btree_map::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Member access on objects; `None` for any other variant.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact single-line JSON.
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty-printed JSON (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }

    /// Parses a JSON document. Trailing non-whitespace is an error.
    pub fn parse_json(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_compact())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::from_f64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::from_f64(v as f64))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::from_i64(v))
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Number(Number::from_i64(v as i64))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::from_u64(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::from_u64(v as u64))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::from_u64(v as u64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // Rust's shortest-roundtrip Display keeps parse(print(x)) == x.
            out.push_str(&v.to_string());
        }
        // JSON has no NaN/Infinity; mirror serde_json's `json!` behaviour.
        Number::F64(_) => out.push_str("null"),
    }
}

fn newline_indent(out: &mut String, indent: usize, depth: usize) {
    out.push('\n');
    for _ in 0..indent * depth {
        out.push(' ');
    }
}

fn write_value(out: &mut String, v: &Value, pretty: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(ind) = pretty {
                    newline_indent(out, ind, depth + 1);
                }
                write_value(out, item, pretty, depth + 1);
            }
            if let Some(ind) = pretty {
                newline_indent(out, ind, depth);
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(ind) = pretty {
                    newline_indent(out, ind, depth + 1);
                }
                write_escaped(out, k);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(out, val, pretty, depth + 1);
            }
            if let Some(ind) = pretty {
                newline_indent(out, ind, depth);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected byte `{}` at {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::custom(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + (((hi - 0xd800) as u32) << 10) + (lo - 0xdc00) as u32
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        c => {
                            return Err(Error::custom(format!("invalid escape `\\{}`", c as char)))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let text = r#"{"a":[1,2.5,-3],"b":{"nested":"va\"lue"},"c":null,"d":true}"#;
        let v = Value::parse_json(text).expect("parses");
        let back = Value::parse_json(&v.to_json_compact()).expect("reparses");
        assert_eq!(v, back);
        let back2 = Value::parse_json(&v.to_json_pretty()).expect("reparses pretty");
        assert_eq!(v, back2);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let v = Value::from(0.123_456_789_012_345_67_f64);
        let back = Value::parse_json(&v.to_json_compact()).expect("parses");
        assert_eq!(v, back);
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse_json(r#""é😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(Value::parse_json("{} x").is_err());
    }
}
