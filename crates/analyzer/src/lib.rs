//! sqe-analyzer: workspace lint engine + structural invariant auditor.
//!
//! Two cooperating passes keep the reproduction honest:
//!
//! 1. **`sqe-lint` lint engine** (this crate): a hand-written lightweight
//!    lexer ([`lexer`]) feeds a rule registry ([`rules`]) that walks every
//!    workspace `.rs` file and reports ranking-determinism and
//!    panic-safety hazards. Findings suppress with
//!    `// lint:allow(<rule>)` on the same line or the line above, and
//!    severities are overridable via `sqe-lint.json`.
//! 2. **Structural invariant auditor** (`kbgraph::audit::GraphAudit`,
//!    `searchlite::audit::IndexAudit`, behind the `validate` feature):
//!    re-derives CSR and inverted-index invariants from raw arrays. The
//!    `sqe-lint audit` subcommand runs both over a synthetic testbed, and
//!    `--selftest` seeds known corruption classes to prove the auditor
//!    still detects them.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod summaries;
pub mod symbols;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::{Diagnostic, LintConfig, Severity};

use lexer::TokKind;
use rules::FileCtx;

/// Directory names never descended into during the workspace walk.
/// `fixtures` holds lint-corpus data files (deliberately bad code used
/// by the rule tests), not workspace sources.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    ".github",
    "node_modules",
    "fixtures",
];

/// Lints one file's source text. Delegates to [`lint_sources`] with a
/// single-file workspace, so ast rules run too (scoped to that file).
pub fn lint_source(rel: &str, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    lint_sources(&[(rel.to_string(), src.to_string())], cfg)
}

/// Rules listed in `lint:allow(...)` / `lint:allow-file(...)` parentheses.
fn parse_allow_list(text: &str, marker: &str) -> Vec<String> {
    let Some(pos) = text.find(marker) else {
        return Vec::new();
    };
    let rest = &text[pos + marker.len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .collect()
}

/// Lints a set of files as one workspace: token rules run per file, then
/// the parsed files are linked into a [`symbols::WorkspaceModel`] and call
/// graph for the cross-file ast rules. Suppressions apply to both layers:
/// `// lint:allow(rule)` on the finding's line or the line above, and
/// `// lint:allow-file(rule)` in the comment header before the first code
/// token (which suppresses the rule for that file only — never for other
/// files in the workspace).
pub fn lint_sources(files: &[(String, String)], cfg: &LintConfig) -> Vec<Diagnostic> {
    use std::collections::BTreeMap;

    let mut out = Vec::new();
    let mut line_allows: BTreeMap<&str, Vec<(u32, String)>> = BTreeMap::new();
    let mut file_allows: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut parsed = Vec::new();
    for (rel, src) in files {
        let toks = lexer::lex(src);
        let first_code_line = toks
            .iter()
            .find(|t| t.kind != TokKind::Comment)
            .map_or(u32::MAX, |t| t.line);
        for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
            if t.line < first_code_line {
                for rule in parse_allow_list(&t.text, "lint:allow-file(") {
                    file_allows.entry(rel).or_default().push(rule);
                }
            }
            for rule in parse_allow_list(&t.text, "lint:allow(") {
                line_allows.entry(rel).or_default().push((t.line, rule));
            }
        }
        let ctx = FileCtx::new(rel, &toks);
        for rule in rules::registry() {
            let sev = cfg.severity(rule.name(), rule.default_severity());
            if sev == Severity::Allow {
                continue;
            }
            rule.check(&ctx, sev, &mut out);
        }
        parsed.push(parser::parse_tokens(rel, &toks));
    }

    let model = symbols::WorkspaceModel::new(parsed);
    let graph = callgraph::CallGraph::build(&model);
    for rule in rules::ast_registry() {
        let sev = cfg.severity(rule.name(), rule.default_severity());
        if sev == Severity::Allow {
            continue;
        }
        rule.check(&model, &graph, sev, &mut out);
    }

    out.retain(|d| {
        if file_allows
            .get(d.path.as_str())
            .is_some_and(|rs| rs.iter().any(|r| r == d.rule))
        {
            return false;
        }
        !line_allows.get(d.path.as_str()).is_some_and(|la| {
            la.iter()
                .any(|(line, rule)| rule == d.rule && (d.line == *line || d.line == line + 1))
        })
    });
    out.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    out
}

/// Collects every workspace `.rs` file under `root`, skipping build
/// output, vendored dependencies, and VCS metadata. Paths are returned
/// sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace file under `root` as one linked workspace.
/// Returns all diagnostics, sorted by path then line.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Diagnostic>> {
    let mut sources = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(lint_sources(&sources, cfg))
}

/// Renders diagnostics as a JSON array (one object per finding), for
/// machine consumption in CI.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    use serde_json::Value;
    let arr: Vec<Value> = diags
        .iter()
        .map(|d| {
            let mut m = serde_json::Map::new();
            m.insert("rule".into(), Value::from(d.rule));
            m.insert("severity".into(), Value::from(d.severity.as_str()));
            m.insert("path".into(), Value::from(d.path.as_str()));
            m.insert("line".into(), Value::from(d.line as u64));
            m.insert("message".into(), Value::from(d.message.as_str()));
            Value::Object(m)
        })
        .collect();
    serde_json::to_string_pretty(&Value::Array(arr)).expect("diagnostics serialize to JSON")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_same_line() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // lint:allow(no-nan-unsafe-sort)\n}";
        assert!(lint_source("crates/x/src/lib.rs", src, &LintConfig::default()).is_empty());
    }

    #[test]
    fn suppression_line_above() {
        let src = "fn f(v: &mut Vec<f64>) {\n    // lint:allow(no-nan-unsafe-sort)\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
        assert!(lint_source("crates/x/src/lib.rs", src, &LintConfig::default()).is_empty());
    }

    #[test]
    fn suppression_is_rule_specific() {
        let src = "fn f(v: &mut Vec<f64>) {\n    // lint:allow(no-nondeterministic-rng)\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
        let diags = lint_source("crates/x/src/lib.rs", src, &LintConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-nan-unsafe-sort");
    }

    #[test]
    fn severity_override_to_allow_disables_rule() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let mut cfg = LintConfig::default();
        cfg.set("no-nan-unsafe-sort", Severity::Allow);
        assert!(lint_source("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn json_output_shape() {
        let src = "fn f() { let r = thread_rng(); }";
        let diags = lint_source("crates/x/src/lib.rs", src, &LintConfig::default());
        let json = diagnostics_to_json(&diags);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("rule").and_then(|v| v.as_str()),
            Some("no-nondeterministic-rng")
        );
    }
}
