//! Serving-layer observability: atomic counters and fixed-bucket latency
//! histograms.
//!
//! Everything here is lock-free (plain `AtomicU64`s) so recording on the
//! query hot path costs a handful of relaxed stores. No library code path
//! reads a wall clock: durations come from an injected [`Clock`], so tests
//! drive a [`ManualClock`] and get bit-exact, timing-independent metrics,
//! while the bench harness injects a [`MonotonicClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source injected into the serving layer.
///
/// Implementations must be monotone non-decreasing per instance; the
/// absolute origin is arbitrary (only differences are recorded).
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's arbitrary origin.
    fn now_nanos(&self) -> u64;
}

/// The default clock: always reads zero, so all recorded durations are
/// zero and the histograms stay empty of signal. Use it when only the
/// cache/throughput counters matter and the timing overhead is unwanted.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_nanos(&self) -> u64 {
        0
    }
}

/// A real monotonic clock anchored at construction (`std::time::Instant`,
/// not wall-clock time — immune to system clock adjustments).
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturates far beyond any process lifetime worth measuring.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic, hand-driven clock for tests: reads an atomic counter
/// that the test advances explicitly.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Creates a clock reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the reading by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.nanos.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the reading to an absolute value.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// A relaxed atomic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets. Bucket `i` holds durations whose bit
/// length is `i` — i.e. the power-of-two range `[2^(i-1), 2^i)` nanoseconds
/// (bucket 0 holds exactly 0). The last bucket absorbs everything from
/// `2^(BUCKETS-2)` ns (~69 seconds) upward.
pub const HISTOGRAM_BUCKETS: usize = 38;

/// A fixed power-of-two-bucket latency histogram over nanosecond
/// durations. Recording is a single relaxed `fetch_add`; percentiles are
/// resolved to the upper bound of the covering bucket, so they are exact
/// to within a factor of two — plenty for p50/p95/p99 latency trending,
/// and fully deterministic given deterministic inputs.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a duration: its bit length, capped to the last bucket.
fn bucket_of(nanos: u64) -> usize {
    let bits = (u64::BITS - nanos.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive) in nanoseconds of bucket `i`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, nanos: u64) {
        if let Some(b) = self.buckets.get(bucket_of(nanos)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded durations in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_nanos() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the covering
    /// bucket, in nanoseconds. Returns 0 for an empty histogram.
    pub fn quantile_upper_nanos(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, at least 1.
        let rank = ((clamped * n as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Exact 99.9th percentile upper bound in nanoseconds: the bucket
    /// covering the observation of rank `ceil(0.999 · n)`. "Exact" in
    /// the same sense as the other quantiles — the rank is exact, the
    /// value is resolved to the covering power-of-two bucket.
    pub fn p999_nanos(&self) -> u64 {
        self.quantile_upper_nanos(0.999)
    }

    /// Zeroes every bucket and the running count/sum. Not atomic with
    /// respect to concurrent `record` calls — reset between measurement
    /// phases, not during one.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum_nanos: self.sum_nanos(),
            mean_nanos: self.mean_nanos(),
            p50_nanos: self.quantile_upper_nanos(0.50),
            p95_nanos: self.quantile_upper_nanos(0.95),
            p99_nanos: self.quantile_upper_nanos(0.99),
            p999_nanos: self.p999_nanos(),
        }
    }
}

/// Point-in-time copy of one histogram's headline statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Recorded durations.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub sum_nanos: u64,
    /// Mean nanoseconds.
    pub mean_nanos: f64,
    /// Median upper bound (ns).
    pub p50_nanos: u64,
    /// 95th percentile upper bound (ns).
    pub p95_nanos: u64,
    /// 99th percentile upper bound (ns).
    pub p99_nanos: u64,
    /// 99.9th percentile upper bound (ns).
    pub p999_nanos: u64,
}

/// The pipeline stages the serving layer times separately.
pub const STAGE_NAMES: [&str; 4] = ["expand", "rank", "combine", "total"];

/// Per-ladder-rung admission metrics: a completion counter and a cost
/// histogram per rung, indexed by ladder position (0 = full quality).
/// Sized at construction from the service's `MotifLadder` length.
#[derive(Debug)]
pub struct LadderMetrics {
    /// Requests served to completion at each rung.
    pub served: Vec<Counter>,
    /// Observed service cost at each rung, recorded for every attempt
    /// (including deadline-exceeded ones — a blown attempt is still a
    /// cost observation). Zero-nanosecond observations are skipped: a
    /// `NullClock` or frozen `ManualClock` measures nothing, and feeding
    /// zeros here would collapse the cost estimates the degraded-mode
    /// ladder selects against.
    pub cost: Vec<LatencyHistogram>,
}

impl LadderMetrics {
    /// Creates zeroed metrics for a ladder of `rungs` rungs.
    pub fn new(rungs: usize) -> Self {
        LadderMetrics {
            served: (0..rungs).map(|_| Counter::new()).collect(),
            cost: (0..rungs).map(|_| LatencyHistogram::new()).collect(),
        }
    }

    /// Number of rungs these metrics cover.
    pub fn rungs(&self) -> usize {
        self.cost.len()
    }

    /// Records one cost observation for rung `index` (no-op for zero
    /// durations and out-of-range indexes).
    pub fn record_cost(&self, index: usize, nanos: u64) {
        if nanos == 0 {
            return;
        }
        if let Some(h) = self.cost.get(index) {
            h.record(nanos);
        }
    }

    /// Conservative per-rung cost estimates for ladder selection: the
    /// p95 upper bound of observed costs (0 for an unobserved rung,
    /// which keeps the selector optimistic until data arrives).
    pub fn cost_estimates(&self) -> Vec<u64> {
        self.cost
            .iter()
            .map(|h| h.quantile_upper_nanos(0.95))
            .collect()
    }

    /// Snapshots per-rung completion counts, in ladder order.
    pub fn served_snapshot(&self) -> Vec<u64> {
        self.served.iter().map(Counter::get).collect()
    }

    /// Snapshots per-rung cost histograms, in ladder order.
    pub fn cost_snapshot(&self) -> Vec<HistogramSnapshot> {
        self.cost.iter().map(LatencyHistogram::snapshot).collect()
    }

    /// Zeroes every rung's counter and histogram.
    pub fn reset(&self) {
        for c in &self.served {
            c.reset();
        }
        for h in &self.cost {
            h.reset();
        }
    }
}

/// The ingestion stages the serving layer times separately.
pub const INGEST_STAGE_NAMES: [&str; 3] = ["add", "seal", "merge"];

/// Per-stage latency histograms for the live-ingestion path.
#[derive(Debug, Default)]
pub struct IngestHistograms {
    /// Buffer insertion (duplicate check + tokenize + postings append).
    pub add: LatencyHistogram,
    /// Buffer freeze into a new segment, including policy-driven merges
    /// and the publish of the refreshed searcher view.
    pub seal: LatencyHistogram,
    /// Explicit full compaction (`force_merge`).
    pub merge: LatencyHistogram,
}

impl IngestHistograms {
    /// Snapshots every stage, ordered as [`INGEST_STAGE_NAMES`].
    pub fn snapshot(&self) -> [HistogramSnapshot; 3] {
        [
            self.add.snapshot(),
            self.seal.snapshot(),
            self.merge.snapshot(),
        ]
    }

    /// Zeroes every ingest histogram.
    pub fn reset(&self) {
        self.add.reset();
        self.seal.reset();
        self.merge.reset();
    }
}

/// Per-stage latency histograms for the serving pipeline.
#[derive(Debug, Default)]
pub struct StageHistograms {
    /// Query-graph construction (including cache lookup).
    pub expand: LatencyHistogram,
    /// Retrieval-model scoring + top-k.
    pub rank: LatencyHistogram,
    /// SQE_C rank-range stitching.
    pub combine: LatencyHistogram,
    /// Whole per-query service time.
    pub total: LatencyHistogram,
}

impl StageHistograms {
    /// Snapshots every stage, ordered as [`STAGE_NAMES`].
    pub fn snapshot(&self) -> [HistogramSnapshot; 4] {
        [
            self.expand.snapshot(),
            self.rank.snapshot(),
            self.combine.snapshot(),
            self.total.snapshot(),
        ]
    }

    /// Zeroes every stage histogram.
    pub fn reset(&self) {
        self.expand.reset();
        self.rank.reset();
        self.combine.reset();
        self.total.reset();
    }
}

/// All counters and histograms of one [`crate::serve::QueryService`].
#[derive(Debug)]
pub struct ServeMetrics {
    /// Queries fully served.
    pub queries: Counter,
    /// Expansion-cache hits.
    pub cache_hits: Counter,
    /// Expansion-cache misses (each implies one motif traversal).
    pub cache_misses: Counter,
    /// Generation bumps (index/graph swaps observed by the cache).
    pub invalidations: Counter,
    /// Documents accepted into the live ingest buffer.
    pub docs_ingested: Counter,
    /// Successful seals (each bumps the segment-set epoch once).
    pub seals: Counter,
    /// Merge operations (policy-driven during seals plus forced).
    pub merges: Counter,
    /// Requests rejected by admission control (queue bound, rate limit,
    /// queue-delay shedding, or budget exhaustion).
    pub sheds: Counter,
    /// Requests whose deadline expired at a stage boundary.
    pub deadline_exceeded: Counter,
    /// Per-stage latency histograms.
    pub stages: StageHistograms,
    /// Ingestion-path latency histograms.
    pub ingest: IngestHistograms,
    /// Degraded-mode ladder counters and cost histograms.
    pub ladder: LadderMetrics,
}

impl ServeMetrics {
    /// Creates zeroed metrics for a service whose degraded-mode ladder
    /// has `ladder_rungs` rungs.
    pub fn new(ladder_rungs: usize) -> Self {
        ServeMetrics {
            queries: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            invalidations: Counter::new(),
            docs_ingested: Counter::new(),
            seals: Counter::new(),
            merges: Counter::new(),
            sheds: Counter::new(),
            deadline_exceeded: Counter::new(),
            stages: StageHistograms::default(),
            ingest: IngestHistograms::default(),
            ladder: LadderMetrics::new(ladder_rungs),
        }
    }

    /// Fraction of cache lookups that hit (0 when no lookups yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.get();
        let total = hits + self.cache_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Zeroes every counter and histogram, starting a fresh measurement
    /// phase (cache contents are untouched — that is the point: the warm
    /// phase of a benchmark keeps the cache and drops the cold numbers).
    pub fn reset(&self) {
        self.queries.reset();
        self.cache_hits.reset();
        self.cache_misses.reset();
        self.invalidations.reset();
        self.docs_ingested.reset();
        self.seals.reset();
        self.merges.reset();
        self.sheds.reset();
        self.deadline_exceeded.reset();
        self.stages.reset();
        self.ingest.reset();
        self.ladder.reset();
    }

    /// Point-in-time copy of every metric (evictions are tracked by the
    /// cache itself, and the epoch by the segment set; both are supplied
    /// by the caller).
    pub fn snapshot(&self, cache_evictions: u64, epoch: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_evictions,
            invalidations: self.invalidations.get(),
            docs_ingested: self.docs_ingested.get(),
            seals: self.seals.get(),
            merges: self.merges.get(),
            sheds: self.sheds.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            epoch,
            cache_hit_rate: self.cache_hit_rate(),
            stages: self.stages.snapshot(),
            ingest: self.ingest.snapshot(),
            ladder_served: self.ladder.served_snapshot(),
            ladder_cost: self.ladder.cost_snapshot(),
        }
    }
}

/// Immutable copy of a service's metrics, safe to move across threads and
/// cheap to diff (all plain values; the per-rung vectors are sized by the
/// service's ladder).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries fully served.
    pub queries: u64,
    /// Expansion-cache hits.
    pub cache_hits: u64,
    /// Expansion-cache misses.
    pub cache_misses: u64,
    /// Entries evicted by the LRU policy.
    pub cache_evictions: u64,
    /// Cache generation bumps.
    pub invalidations: u64,
    /// Documents accepted into the live ingest buffer.
    pub docs_ingested: u64,
    /// Successful seals.
    pub seals: u64,
    /// Merge operations (policy-driven plus forced).
    pub merges: u64,
    /// Requests rejected by admission control.
    pub sheds: u64,
    /// Requests whose deadline expired at a stage boundary.
    pub deadline_exceeded: u64,
    /// Segment-set epoch of the published searcher view.
    pub epoch: u64,
    /// hits / (hits + misses), 0 when no lookups.
    pub cache_hit_rate: f64,
    /// Per-stage histograms, ordered as [`STAGE_NAMES`].
    pub stages: [HistogramSnapshot; 4],
    /// Ingest histograms, ordered as [`INGEST_STAGE_NAMES`].
    pub ingest: [HistogramSnapshot; 3],
    /// Completions per degraded-mode rung, in ladder order.
    pub ladder_served: Vec<u64>,
    /// Cost histograms per degraded-mode rung, in ladder order.
    pub ladder_cost: Vec<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        // 90 fast (≤ 1023ns bucket), 10 slow (~1µs bucket).
        for _ in 0..90 {
            h.record(1000);
        }
        for _ in 0..10 {
            h.record(2000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_upper_nanos(0.50), 1023);
        assert_eq!(h.quantile_upper_nanos(0.90), 1023);
        assert_eq!(h.quantile_upper_nanos(0.95), 2047);
        assert_eq!(h.quantile_upper_nanos(0.99), 2047);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_nanos, 0);
        assert_eq!(s.mean_nanos, 0.0);
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let h = LatencyHistogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.mean_nanos(), 200.0);
        assert_eq!(h.sum_nanos(), 400);
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
        c.set(3);
        assert_eq!(c.now_nanos(), 3);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn hit_rate_and_snapshot() {
        let m = ServeMetrics::new(3);
        m.cache_hits.add(3);
        m.cache_misses.inc();
        m.queries.add(4);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
        let s = m.snapshot(2, 0);
        assert_eq!(s.cache_evictions, 2);
        assert_eq!(s.queries, 4);
        assert_eq!(s.stages[0].count, 0);
    }

    #[test]
    fn reset_zeroes_counters_and_histograms() {
        let m = ServeMetrics::new(3);
        m.queries.add(7);
        m.cache_hits.inc();
        m.stages.rank.record(1000);
        m.reset();
        let s = m.snapshot(0, 0);
        assert_eq!(s.queries, 0);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.stages[1].count, 0);
        assert_eq!(s.stages[1].sum_nanos, 0);
        assert_eq!(s.stages[1].p99_nanos, 0);
    }

    #[test]
    fn single_record_drives_every_quantile() {
        let h = LatencyHistogram::new();
        h.record(500);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_upper_nanos(q), 511);
        }
    }

    #[test]
    fn p999_separates_from_p99_at_the_tail() {
        let h = LatencyHistogram::new();
        // 989 fast, 9 medium, 2 very slow: p99 (rank 990) lands in the
        // medium bucket, p99.9 (rank 999) in the slow one.
        for _ in 0..989 {
            h.record(1_000);
        }
        for _ in 0..9 {
            h.record(4_000);
        }
        h.record(1_000_000);
        h.record(1_000_000);
        assert_eq!(h.count(), 1_000);
        assert_eq!(h.quantile_upper_nanos(0.99), 4_095);
        assert_eq!(h.p999_nanos(), 1_048_575);
        let s = h.snapshot();
        assert_eq!(s.p999_nanos, 1_048_575);
        assert!(s.p999_nanos >= s.p99_nanos);
    }

    #[test]
    fn ladder_metrics_skip_zero_cost_observations() {
        let l = LadderMetrics::new(3);
        l.record_cost(0, 0);
        assert_eq!(l.cost_snapshot()[0].count, 0, "zero-duration costs carry no signal");
        l.record_cost(0, 10_000);
        l.record_cost(1, 4_000);
        l.record_cost(2, 1_000);
        l.record_cost(9, 5_000); // out of range: ignored
        let est = l.cost_estimates();
        assert!(est[0] >= 10_000 && est[1] >= 4_000 && est[2] >= 1_000);
        assert!(est[0] > est[1] && est[1] > est[2]);
        l.served[1].inc();
        assert_eq!(l.served_snapshot(), [0, 1, 0]);
        l.reset();
        assert_eq!(l.served_snapshot(), [0, 0, 0]);
        assert_eq!(l.cost_estimates(), [0, 0, 0]);
    }

    #[test]
    fn snapshot_carries_admission_counters() {
        let m = ServeMetrics::new(3);
        m.sheds.add(3);
        m.deadline_exceeded.inc();
        m.ladder.served[0].add(5);
        m.ladder.record_cost(0, 2_000);
        let s = m.snapshot(0, 0);
        assert_eq!(s.sheds, 3);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.ladder_served, [5, 0, 0]);
        assert_eq!(s.ladder_cost[0].count, 1);
        m.reset();
        let s = m.snapshot(0, 0);
        assert_eq!(s.sheds, 0);
        assert_eq!(s.ladder_served, [0, 0, 0]);
    }
}
