//! On-disk layout of a snapshot file, versions 1 and 2.
//!
//! **Version 1** (header-led; still decoded, no longer written):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  "SQESNAP\0"
//!      8     4  format version (u32 LE) = 1
//!     12     4  section count N (u32 LE)
//!     16  24*N  section table: {id u32, crc32 u32, offset u64, len u64}
//! 16+24N     4  header crc32 over bytes [0, 16+24N)
//!      …     …  zero padding to the next 8-byte boundary
//!      …     …  section payloads, each 8-byte aligned, contiguous
//! ```
//!
//! **Version 2** (footer-led, append-friendly — the section table moves
//! to the *end* of the file so sealing a new segment appends one payload
//! and rewrites only the footer, never the existing payload bytes):
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  "SQESNAP\0"
//!      8     4  format version (u32 LE) = 2
//!     12     4  reserved, must be zero (pads payloads to 8 bytes)
//!     16     …  section payloads, each 8-byte aligned, contiguous
//!      F  24*N  section table: {id u32, crc32 u32, offset u64, len u64}
//!  F+24N     4  section count N (u32 LE)
//!  F+24N+4   4  footer crc32 over bytes [F, F+24N+4)
//!  F+24N+8   8  footer magic "SQEFOOT\0"
//! ```
//!
//! In both versions every byte of the file is covered by a checksum or
//! required to be an exact constant: the header/footer CRC covers the
//! section table; each section CRC covers its payload; padding and the
//! v2 reserved word must be zero; and the sections must tile the file
//! exactly — so any single-bit flip anywhere is detected. Offsets are
//! absolute. All integers are little-endian.

use crate::crc32::crc32;
use crate::error::StoreError;

/// File magic: identifies a snapshot regardless of extension.
pub const MAGIC: [u8; 8] = *b"SQESNAP\0";

/// Magic terminating a v2 footer; locating it from the end of the file
/// is how a reader finds the section table without a front header.
pub const FOOTER_MAGIC: [u8; 8] = *b"SQEFOOT\0";

/// Current format version (footer-led, per-segment index sections).
/// Readers reject newer files with [`StoreError::UnsupportedVersion`];
/// older versions are decoded by dedicated paths kept alive per the
/// compat policy in DESIGN.md §10.
pub const VERSION: u32 = 2;

/// The original header-led format. Still fully decodable; the golden
/// fixture in `tests/golden/` pins this path forever.
pub const VERSION_V1: u32 = 1;

/// Section id of the snapshot metadata (writer string, collection names).
pub const SEC_META: u32 = 0x1;
/// Section id of the knowledge graph (titles + six CSRs).
pub const SEC_GRAPH: u32 = 0x2;
/// Section id of the entity-linker dictionary.
pub const SEC_DICT: u32 = 0x3;
/// Base section id of per-collection inverted indexes. In v1 collection
/// `i` is the single section `BASE + i`; in v2 collection `i` owns the
/// id range `[BASE·(i+1), BASE·(i+2))` with one section per segment
/// (see [`segment_section_id`]).
pub const SEC_INDEX_BASE: u32 = 0x100;

/// Maximum number of segment sections per collection in v2 (the width
/// of each collection's id range).
pub const MAX_SEGMENTS_PER_COLLECTION: u32 = SEC_INDEX_BASE;

/// First payload byte of a v2 file (magic + version + reserved word).
pub const PAYLOAD_START_V2: usize = 16;

/// Fixed tail of a v2 footer: count + footer CRC + footer magic.
pub const FOOTER_SUFFIX_LEN: usize = 16;

/// Section id of segment `j` of collection `i` in a v2 snapshot.
pub fn segment_section_id(collection: usize, segment: usize) -> Result<u32, StoreError> {
    let c = u32::try_from(collection)
        .ok()
        .and_then(|c| c.checked_add(1))
        .and_then(|c| c.checked_mul(SEC_INDEX_BASE));
    let s = u32::try_from(segment).ok().filter(|&s| s < MAX_SEGMENTS_PER_COLLECTION);
    match (c, s) {
        (Some(c), Some(s)) => Ok(c + s),
        _ => Err(StoreError::SectionTable {
            detail: format!(
                "collection {collection} segment {segment} exceeds the v2 id space \
                 ({MAX_SEGMENTS_PER_COLLECTION} segments per collection)"
            ),
        }),
    }
}

/// Fixed header prefix: magic + version + section count.
pub const HEADER_PREFIX_LEN: usize = 16;
/// Serialized size of one section-table entry.
pub const SECTION_ENTRY_LEN: usize = 24;
/// Upper bound on the section count — far above any real snapshot, low
/// enough that a corrupt count cannot drive a huge allocation.
pub const MAX_SECTIONS: u32 = 4096;

/// One row of the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — hand-serialized in the binary header
pub struct SectionEntry {
    /// Section id (`SEC_*`).
    pub id: u32,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
    /// Absolute file offset of the payload (8-byte aligned).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

/// Rounds `n` up to the next multiple of 8.
pub fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Serializes the v1 header (magic, version, table, header CRC, padding
/// to the first payload offset) for the given entries. Kept alive for
/// the golden fixture generator and interop tests.
pub fn encode_header(entries: &[SectionEntry]) -> Result<Vec<u8>, StoreError> {
    let count = section_count_checked(entries.len())?;
    let table_end = HEADER_PREFIX_LEN + entries.len() * SECTION_ENTRY_LEN;
    let mut out = Vec::with_capacity(align8(table_end + 4));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.id.to_le_bytes());
        out.extend_from_slice(&e.crc.to_le_bytes());
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.len.to_le_bytes());
    }
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.resize(align8(out.len()), 0);
    Ok(out)
}

fn section_count_checked(count: usize) -> Result<u32, StoreError> {
    u32::try_from(count)
        .ok()
        .filter(|&c| c <= MAX_SECTIONS)
        .ok_or_else(|| StoreError::SectionTable {
            detail: format!("{count} sections exceed the format maximum {MAX_SECTIONS}"),
        })
}

/// The 16-byte v2 file prefix: magic, version 2, zero reserved word.
pub fn encode_prefix_v2() -> Vec<u8> {
    let mut out = Vec::with_capacity(PAYLOAD_START_V2);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}

/// Serializes the v2 footer (table, count, footer CRC, footer magic)
/// for the given entries.
pub fn encode_footer(entries: &[SectionEntry]) -> Result<Vec<u8>, StoreError> {
    let count = section_count_checked(entries.len())?;
    let mut out = Vec::with_capacity(footer_span(entries.len()));
    for e in entries {
        out.extend_from_slice(&e.id.to_le_bytes());
        out.extend_from_slice(&e.crc.to_le_bytes());
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.len.to_le_bytes());
    }
    out.extend_from_slice(&count.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);
    Ok(out)
}

/// Total size of a v2 footer for `count` sections.
pub fn footer_span(count: usize) -> usize {
    count * SECTION_ENTRY_LEN + FOOTER_SUFFIX_LEN
}

/// Checks the magic and returns the format version, rejecting versions
/// this build cannot decode.
pub fn read_version(bytes: &[u8]) -> Result<u32, StoreError> {
    let magic: &[u8] = bytes.get(0..8).ok_or(StoreError::Truncated {
        needed: HEADER_PREFIX_LEN,
        available: bytes.len(),
    })?;
    if magic != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(StoreError::BadMagic { found });
    }
    let version = read_u32_at(bytes, 8)?;
    if version != VERSION_V1 && version != VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    Ok(version)
}

/// Total file size occupied by the header for `count` sections,
/// including the trailing zero padding to the first payload offset.
pub fn header_span(count: usize) -> usize {
    align8(HEADER_PREFIX_LEN + count * SECTION_ENTRY_LEN + 4)
}

fn read_u32_at(bytes: &[u8], at: usize) -> Result<u32, StoreError> {
    match bytes.get(at..at + 4) {
        Some(b) => {
            let mut le = [0u8; 4];
            le.copy_from_slice(b);
            Ok(u32::from_le_bytes(le))
        }
        None => Err(StoreError::Truncated {
            needed: at + 4,
            available: bytes.len(),
        }),
    }
}

fn read_u64_at(bytes: &[u8], at: usize) -> Result<u64, StoreError> {
    match bytes.get(at..at + 8) {
        Some(b) => {
            let mut le = [0u8; 8];
            le.copy_from_slice(b);
            Ok(u64::from_le_bytes(le))
        }
        None => Err(StoreError::Truncated {
            needed: at + 8,
            available: bytes.len(),
        }),
    }
}

/// Parses and fully validates the header against the file bytes:
/// magic, version, header CRC, then — for every table row — alignment,
/// bounds, contiguity, zero padding and payload CRC. On success every
/// section's payload slice can be taken at face value.
pub fn decode_and_verify_header(bytes: &[u8]) -> Result<Vec<SectionEntry>, StoreError> {
    let entries = decode_header(bytes)?;
    for e in &entries {
        verify_section_crc(bytes, e)?;
    }
    Ok(entries)
}

/// Verifies one section's payload CRC against the table entry. The
/// entry must come from [`decode_header`] (bounds already validated).
/// Split out so loaders can run the per-section scans on parallel
/// decoder threads instead of one serial pass.
pub fn verify_section_crc(bytes: &[u8], e: &SectionEntry) -> Result<(), StoreError> {
    let computed = crc32(section_payload(bytes, e));
    if computed != e.crc {
        return Err(StoreError::SectionChecksum {
            id: e.id,
            stored: e.crc,
            computed,
        });
    }
    Ok(())
}

/// Parses and structurally validates the header: magic, version, header
/// CRC, and — for every table row — alignment, bounds, contiguity, zero
/// padding and the exact-file-end rule. Payload CRCs are NOT checked
/// here; callers must run [`verify_section_crc`] on every section they
/// read (or use [`decode_and_verify_header`], which checks them all).
pub fn decode_header(bytes: &[u8]) -> Result<Vec<SectionEntry>, StoreError> {
    let magic: &[u8] = bytes.get(0..8).ok_or(StoreError::Truncated {
        needed: HEADER_PREFIX_LEN,
        available: bytes.len(),
    })?;
    if magic != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(StoreError::BadMagic { found });
    }
    let version = read_u32_at(bytes, 8)?;
    if version != VERSION_V1 {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let count = read_u32_at(bytes, 12)?;
    if count > MAX_SECTIONS {
        return Err(StoreError::SectionTable {
            detail: format!("section count {count} exceeds the format maximum {MAX_SECTIONS}"),
        });
    }
    let count = count as usize;
    let table_end = HEADER_PREFIX_LEN + count * SECTION_ENTRY_LEN;
    let crc_stored = read_u32_at(bytes, table_end)?;
    let header_bytes = bytes.get(..table_end).ok_or(StoreError::Truncated {
        needed: table_end,
        available: bytes.len(),
    })?;
    let crc_computed = crc32(header_bytes);
    if crc_stored != crc_computed {
        return Err(StoreError::HeaderChecksum {
            stored: crc_stored,
            computed: crc_computed,
        });
    }

    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_PREFIX_LEN + i * SECTION_ENTRY_LEN;
        entries.push(SectionEntry {
            id: read_u32_at(bytes, at)?,
            crc: read_u32_at(bytes, at + 4)?,
            offset: read_u64_at(bytes, at + 8)?,
            len: read_u64_at(bytes, at + 16)?,
        });
    }
    let mut ids: Vec<u32> = entries.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    if ids.windows(2).any(|w| w[0] == w[1]) {
        return Err(StoreError::SectionTable {
            detail: "duplicate section id in table".to_owned(),
        });
    }

    // Sections must tile the file: first at the aligned header end, each
    // next at the aligned end of the previous, padding zero, no trailing
    // bytes. This leaves no byte of the file outside checksum coverage.
    let mut expected_offset = header_span(count);
    for (i, e) in entries.iter().enumerate() {
        let offset = usize::try_from(e.offset).map_err(|_| StoreError::SectionTable {
            detail: format!("section {i} offset {} overflows this platform", e.offset),
        })?;
        let len = usize::try_from(e.len).map_err(|_| StoreError::SectionTable {
            detail: format!("section {i} length {} overflows this platform", e.len),
        })?;
        if offset != expected_offset {
            return Err(StoreError::SectionTable {
                detail: format!(
                    "section {i} (id {:#x}) at offset {offset}, expected {expected_offset}",
                    e.id
                ),
            });
        }
        let end = offset.checked_add(len).ok_or_else(|| StoreError::SectionTable {
            detail: format!("section {i} extent overflows"),
        })?;
        if end > bytes.len() {
            return Err(StoreError::Truncated {
                needed: end,
                available: bytes.len(),
            });
        }
        let padded_end = align8(end);
        let pad = bytes.get(end..padded_end.min(bytes.len())).unwrap_or(&[]);
        if pad.iter().any(|&b| b != 0) {
            return Err(StoreError::SectionTable {
                detail: format!("nonzero padding after section {i} (id {:#x})", e.id),
            });
        }
        expected_offset = padded_end;
    }
    // The padding region between the header CRC and the first section is
    // produced zeroed by encode_header; verify it so no byte escapes.
    let prefix_pad_start = HEADER_PREFIX_LEN + count * SECTION_ENTRY_LEN + 4;
    let prefix_pad_end = header_span(count).min(bytes.len());
    if bytes
        .get(prefix_pad_start..prefix_pad_end)
        .unwrap_or(&[])
        .iter()
        .any(|&b| b != 0)
    {
        return Err(StoreError::SectionTable {
            detail: "nonzero padding after header checksum".to_owned(),
        });
    }
    // The final section's alignment padding may be absent at EOF; accept
    // a file that ends at the unpadded end of the last section too.
    let unpadded_end = entries.last().map_or(header_span(count), |e| {
        (e.offset as usize).saturating_add(e.len as usize)
    });
    if bytes.len() != expected_offset && bytes.len() != unpadded_end {
        return Err(StoreError::SectionTable {
            detail: format!(
                "file length {} disagrees with section table end {unpadded_end}",
                bytes.len()
            ),
        });
    }
    Ok(entries)
}

/// Parses and structurally validates a v2 footer: prefix magic/version,
/// zero reserved word, footer magic, footer CRC, and — for every table
/// row — alignment, bounds, contiguity and zero padding, with the
/// sections required to tile the file exactly from
/// [`PAYLOAD_START_V2`] to the footer. Payload CRCs are NOT checked
/// here; callers must run [`verify_section_crc`] on every section they
/// read (or use [`decode_and_verify_sections`]).
pub fn decode_footer(bytes: &[u8]) -> Result<Vec<SectionEntry>, StoreError> {
    let version = read_version(bytes)?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let reserved = bytes.get(12..16).ok_or(StoreError::Truncated {
        needed: PAYLOAD_START_V2,
        available: bytes.len(),
    })?;
    if reserved.iter().any(|&b| b != 0) {
        return Err(StoreError::SectionTable {
            detail: "nonzero reserved word in the v2 prefix".to_owned(),
        });
    }
    let min = PAYLOAD_START_V2 + FOOTER_SUFFIX_LEN;
    if bytes.len() < min {
        return Err(StoreError::Truncated {
            needed: min,
            available: bytes.len(),
        });
    }
    let end = bytes.len();
    if bytes[end - 8..] != FOOTER_MAGIC {
        return Err(StoreError::SectionTable {
            detail: "footer magic missing at end of file".to_owned(),
        });
    }
    let count = read_u32_at(bytes, end - 16)?;
    if count > MAX_SECTIONS {
        return Err(StoreError::SectionTable {
            detail: format!("section count {count} exceeds the format maximum {MAX_SECTIONS}"),
        });
    }
    let count = count as usize;
    let footer_start = end
        .checked_sub(footer_span(count))
        .filter(|&s| s >= PAYLOAD_START_V2)
        .ok_or_else(|| StoreError::SectionTable {
            detail: format!("footer for {count} sections does not fit in a {end}-byte file"),
        })?;
    let crc_stored = read_u32_at(bytes, end - 12)?;
    let crc_computed = crc32(&bytes[footer_start..end - 12]);
    if crc_stored != crc_computed {
        return Err(StoreError::HeaderChecksum {
            stored: crc_stored,
            computed: crc_computed,
        });
    }

    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = footer_start + i * SECTION_ENTRY_LEN;
        entries.push(SectionEntry {
            id: read_u32_at(bytes, at)?,
            crc: read_u32_at(bytes, at + 4)?,
            offset: read_u64_at(bytes, at + 8)?,
            len: read_u64_at(bytes, at + 16)?,
        });
    }
    let mut ids: Vec<u32> = entries.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    if ids.windows(2).any(|w| w[0] == w[1]) {
        return Err(StoreError::SectionTable {
            detail: "duplicate section id in table".to_owned(),
        });
    }

    // Sections must tile the payload region exactly: first at offset 16,
    // each next at the aligned end of the previous, padding zero, and the
    // last aligned end meeting the footer. No byte escapes coverage.
    let mut expected_offset = PAYLOAD_START_V2;
    for (i, e) in entries.iter().enumerate() {
        let offset = usize::try_from(e.offset).map_err(|_| StoreError::SectionTable {
            detail: format!("section {i} offset {} overflows this platform", e.offset),
        })?;
        let len = usize::try_from(e.len).map_err(|_| StoreError::SectionTable {
            detail: format!("section {i} length {} overflows this platform", e.len),
        })?;
        if offset != expected_offset {
            return Err(StoreError::SectionTable {
                detail: format!(
                    "section {i} (id {:#x}) at offset {offset}, expected {expected_offset}",
                    e.id
                ),
            });
        }
        let payload_end = offset.checked_add(len).ok_or_else(|| StoreError::SectionTable {
            detail: format!("section {i} extent overflows"),
        })?;
        if payload_end > footer_start {
            return Err(StoreError::SectionTable {
                detail: format!(
                    "section {i} (id {:#x}) runs past the footer at {footer_start}",
                    e.id
                ),
            });
        }
        let padded_end = align8(payload_end);
        let pad = bytes.get(payload_end..padded_end.min(footer_start)).unwrap_or(&[]);
        if pad.iter().any(|&b| b != 0) {
            return Err(StoreError::SectionTable {
                detail: format!("nonzero padding after section {i} (id {:#x})", e.id),
            });
        }
        expected_offset = padded_end;
    }
    if expected_offset != footer_start {
        return Err(StoreError::SectionTable {
            detail: format!(
                "sections end at {expected_offset} but the footer starts at {footer_start}"
            ),
        });
    }
    Ok(entries)
}

/// Version-dispatching section-table parse: v1 front header or v2
/// footer, structurally validated either way. Payload CRCs are NOT
/// checked; see [`decode_and_verify_sections`].
pub fn decode_sections(bytes: &[u8]) -> Result<(u32, Vec<SectionEntry>), StoreError> {
    match read_version(bytes)? {
        VERSION_V1 => Ok((VERSION_V1, decode_header(bytes)?)),
        _ => Ok((VERSION, decode_footer(bytes)?)),
    }
}

/// [`decode_sections`] plus a payload-CRC scan over every section.
pub fn decode_and_verify_sections(bytes: &[u8]) -> Result<(u32, Vec<SectionEntry>), StoreError> {
    let (version, entries) = decode_sections(bytes)?;
    for e in &entries {
        verify_section_crc(bytes, e)?;
    }
    Ok((version, entries))
}

/// Finds a section by id.
pub fn find_section(entries: &[SectionEntry], id: u32) -> Result<SectionEntry, StoreError> {
    entries
        .iter()
        .find(|e| e.id == id)
        .copied()
        .ok_or(StoreError::MissingSection { id })
}

/// The payload slice of a validated section entry.
pub fn section_payload<'a>(bytes: &'a [u8], e: &SectionEntry) -> &'a [u8] {
    let offset = e.offset as usize;
    let end = offset.saturating_add(e.len as usize).min(bytes.len());
    bytes.get(offset..end).unwrap_or(&[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let entries = [
            SectionEntry {
                id: SEC_META,
                crc: 0xDEAD_BEEF,
                offset: header_span(2) as u64,
                len: 16,
            },
            SectionEntry {
                id: SEC_GRAPH,
                crc: 0x1234_5678,
                offset: (header_span(2) + 16) as u64,
                len: 3,
            },
        ];
        let header = encode_header(&entries).unwrap();
        assert_eq!(header.len(), header_span(2));
        assert_eq!(&header[0..8], &MAGIC);
    }

    #[test]
    fn footer_roundtrip() {
        let entries = [
            SectionEntry {
                id: SEC_META,
                crc: 0xDEAD_BEEF,
                offset: PAYLOAD_START_V2 as u64,
                len: 16,
            },
            SectionEntry {
                id: SEC_GRAPH,
                crc: 0x1234_5678,
                offset: (PAYLOAD_START_V2 + 16) as u64,
                len: 8,
            },
        ];
        let mut file = encode_prefix_v2();
        file.resize(PAYLOAD_START_V2 + 24, 0);
        file.extend_from_slice(&encode_footer(&entries).unwrap());
        assert_eq!(file.len(), PAYLOAD_START_V2 + 24 + footer_span(2));
        // Structural parse succeeds (payload CRCs are not checked here).
        let parsed = decode_footer(&file).unwrap();
        assert_eq!(parsed.as_slice(), &entries);
        assert_eq!(read_version(&file).unwrap(), VERSION);
    }

    #[test]
    fn footer_rejects_missing_magic_and_bad_reserved() {
        let mut file = encode_prefix_v2();
        file.extend_from_slice(&encode_footer(&[]).unwrap());
        assert!(decode_footer(&file).is_ok());
        let mut bad = file.clone();
        let at = bad.len() - 1;
        bad[at] = b'X';
        assert!(matches!(
            decode_footer(&bad),
            Err(StoreError::SectionTable { .. })
        ));
        let mut bad = file.clone();
        bad[13] = 1;
        assert!(matches!(
            decode_footer(&bad),
            Err(StoreError::SectionTable { .. })
        ));
    }

    #[test]
    fn segment_ids_partition_by_collection() {
        assert_eq!(segment_section_id(0, 0).unwrap(), 0x100);
        assert_eq!(segment_section_id(0, 5).unwrap(), 0x105);
        assert_eq!(segment_section_id(1, 0).unwrap(), 0x200);
        assert_eq!(segment_section_id(2, 0xFF).unwrap(), 0x3FF);
        assert!(segment_section_id(0, 0x100).is_err(), "segment ordinal overflow");
    }

    #[test]
    fn empty_file_is_truncated_not_panic() {
        assert!(matches!(
            decode_and_verify_header(&[]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut header = encode_header(&[]).unwrap();
        header[0] = b'X';
        assert!(matches!(
            decode_and_verify_header(&header),
            Err(StoreError::BadMagic { .. })
        ));
    }
}
