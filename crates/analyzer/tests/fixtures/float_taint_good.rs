// Fixture: exact integer stat merging; floats only appear downstream in
// scoring accessors, which never accumulate back into the stats.

pub fn merge(&mut self, other: &Stats) {
    self.coll_tf += other.coll_tf;
    self.collection_len += other.collection_len;
    self.num_docs += other.num_docs;
}

pub fn collection_prob(&self) -> f64 {
    self.coll_tf as f64 / self.collection_len as f64
}
