//! The determinism wall: the concurrent query service must produce
//! byte-identical trec run files to the sequential, uncached pipeline —
//! for every dataset, every motif configuration, every worker count, and
//! both cold and warm expansion caches.
//!
//! This is the contract that makes the serving layer (work stealing +
//! LRU caching + scratch reuse) adoptable at all: parallelism and caching
//! are pure speed, never a ranking change.

use std::sync::Arc;

use entitylink::NoiseRng;
use ireval::trec;
use ireval::Run;
use kbgraph::ArticleId;
use searchlite::{Analyzer, Index, IndexBuilder, QlParams, SegmentedIndex, ShardRouter};
use sqe::{
    AdmissionConfig, Deadline, ManualClock, MotifSet, QueryService, ServeConfig, ServeRequest,
    ShardedService, SqeConfig, SqePipeline,
};
use synthwiki::{Collection, Dataset, TestBed, TestBedConfig};

const DATASETS: [&str; 3] = ["imageclef", "chic2012", "chic2013"];
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn build_world() -> (TestBed, Vec<Index>) {
    let bed = TestBed::generate(&TestBedConfig::small());
    let indexes = bed
        .collections
        .iter()
        .map(|coll| {
            let mut b = IndexBuilder::new(Analyzer::english());
            for d in &coll.docs {
                b.add_document(&d.id, &d.text).expect("generated ids are unique");
            }
            b.build()
        })
        .collect();
    (bed, indexes)
}

fn config() -> SqeConfig {
    SqeConfig {
        ql: QlParams { mu: 15.0 },
        ..SqeConfig::default()
    }
}

/// The batch input: every query's text plus its manually linked nodes.
fn batch_of(bed: &TestBed, dataset: &Dataset) -> Vec<(String, Vec<ArticleId>)> {
    dataset
        .queries
        .iter()
        .map(|q| {
            let nodes = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
            (q.text.clone(), nodes)
        })
        .collect()
}

/// Packs per-query rankings into a trec run file (the byte-comparison
/// currency of this wall).
fn run_file(name: &str, dataset: &Dataset, rankings: &[Vec<String>]) -> String {
    let mut run = Run::new(name);
    for (q, ids) in dataset.queries.iter().zip(rankings) {
        run.set_ranking(&q.id, ids.clone());
    }
    trec::write_run(&run)
}

#[test]
fn service_run_files_are_byte_identical_for_every_motif_config() {
    let (bed, indexes) = build_world();
    for ds_name in DATASETS {
        let dataset = bed.dataset(ds_name);
        let index = &indexes[dataset.collection];
        let batch = batch_of(&bed, dataset);
        let pipeline = SqePipeline::from_index(&bed.kb.graph, index, config());
        for (cfg_name, motifs) in [
            ("SQE_T", MotifSet::triangular()),
            ("SQE_S", MotifSet::square()),
            ("SQE_TS", MotifSet::t_and_s()),
        ] {
            // Reference: the sequential, uncached pipeline.
            let reference: Vec<Vec<String>> = batch
                .iter()
                .map(|(text, nodes)| {
                    pipeline.external_ids(&pipeline.rank_sqe(text, nodes, &motifs).0)
                })
                .collect();
            let want = run_file(cfg_name, dataset, &reference);
            for workers in WORKER_COUNTS {
                let serve_cfg = ServeConfig {
                    workers,
                    ..ServeConfig::default()
                };
                let service =
                    QueryService::new(&bed.kb.graph, index, config(), serve_cfg);
                for replay in ["cold", "warm"] {
                    let served: Vec<Vec<String>> = service
                        .run_batch(&batch, &motifs)
                        .iter()
                        .map(|hits| service.external_ids(hits))
                        .collect();
                    let got = run_file(cfg_name, dataset, &served);
                    assert_eq!(
                        got, want,
                        "{ds_name}/{cfg_name}: {replay} service run at {workers} workers \
                         must be byte-identical to the sequential pipeline"
                    );
                }
            }
        }
    }
}

#[test]
fn service_sqe_c_run_files_are_byte_identical() {
    let (bed, indexes) = build_world();
    for ds_name in DATASETS {
        let dataset = bed.dataset(ds_name);
        let index = &indexes[dataset.collection];
        let batch = batch_of(&bed, dataset);
        let pipeline = SqePipeline::from_index(&bed.kb.graph, index, config());
        let reference: Vec<Vec<String>> = batch
            .iter()
            .map(|(text, nodes)| pipeline.rank_sqe_c(text, nodes))
            .collect();
        let want = run_file("SQE_C", dataset, &reference);
        for workers in WORKER_COUNTS {
            let serve_cfg = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let service = QueryService::new(&bed.kb.graph, index, config(), serve_cfg);
            for replay in ["cold", "warm"] {
                let served = service.run_batch_sqe_c(&batch);
                let got = run_file("SQE_C", dataset, &served);
                assert_eq!(
                    got, want,
                    "{ds_name}/SQE_C: {replay} service run at {workers} workers \
                     must be byte-identical to the sequential pipeline"
                );
            }
        }
        // The warm replays actually exercised the cache (not a no-op wall).
        let serve_cfg = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let service = QueryService::new(&bed.kb.graph, index, config(), serve_cfg);
        service.run_batch_sqe_c(&batch);
        service.run_batch_sqe_c(&batch);
        let snap = service.metrics_snapshot();
        assert!(
            snap.cache_hits > 0,
            "{ds_name}: the warm replay must hit the expansion cache"
        );
    }
}

/// Ingests a collection through the live path, sealing every
/// `seal_every` documents so the corpus ends up split over several
/// immutable segments (plus possibly a sealed tail).
fn segmented_index_of(coll: &Collection, seal_every: usize) -> SegmentedIndex {
    let mut seg = SegmentedIndex::new(Analyzer::english());
    for (i, d) in coll.docs.iter().enumerate() {
        seg.add_document(&d.id, &d.text).expect("generated ids are unique");
        if (i + 1) % seal_every == 0 {
            seg.seal();
        }
    }
    seg.seal();
    seg
}

#[test]
fn segmented_service_is_byte_identical_pre_and_post_merge() {
    // The tentpole contract: scoring merges corpus-wide statistics
    // exactly, so the number of segments — and a later compaction —
    // never changes a single byte of any run file.
    let (bed, indexes) = build_world();
    for ds_name in DATASETS {
        let dataset = bed.dataset(ds_name);
        let index = &indexes[dataset.collection];
        let coll = bed.collection_of(dataset);
        let batch = batch_of(&bed, dataset);
        let pipeline = SqePipeline::from_index(&bed.kb.graph, index, config());
        let want = run_file(
            "SQE_C",
            dataset,
            &batch
                .iter()
                .map(|(text, nodes)| pipeline.rank_sqe_c(text, nodes))
                .collect::<Vec<_>>(),
        );

        // Three chunks stay under the default merge factor (4), so the
        // pre-merge service really serves from multiple segments.
        let seal_every = coll.docs.len().div_ceil(3).max(1);
        let service = QueryService::from_segmented(
            &bed.kb.graph,
            segmented_index_of(coll, seal_every),
            config(),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        );
        assert!(
            service.num_segments() > 1,
            "{ds_name}: the pre-merge wall needs a genuinely partitioned corpus"
        );
        let pre = run_file("SQE_C", dataset, &service.run_batch_sqe_c(&batch));
        assert_eq!(
            pre, want,
            "{ds_name}: a {}-segment service must be byte-identical to the monolithic pipeline",
            service.num_segments()
        );

        assert!(service.force_merge(), "{ds_name}: compaction must happen");
        assert_eq!(service.num_segments(), 1);
        let post = run_file("SQE_C", dataset, &service.run_batch_sqe_c(&batch));
        assert_eq!(
            post, want,
            "{ds_name}: force_merge changed run-file bytes"
        );
    }
}

#[test]
fn mid_run_seal_invalidates_cache_exactly_once_with_observable_epoch() {
    // A seal between two batches must flush the expansion cache exactly
    // once (auto-merges ride the same epoch bump), advance the epoch
    // visibly in the metrics snapshot, and make the new document
    // retrievable — while the replayed batch stays byte-identical
    // because the graph (and thus every expansion) is unchanged.
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let batch = batch_of(&bed, dataset);
    let service = QueryService::new(
        &bed.kb.graph,
        index,
        config(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let before_docs = service.searcher().num_docs();
    service.run_batch_sqe_c(&batch);
    let snap0 = service.metrics_snapshot();
    assert_eq!(snap0.epoch, 0);
    assert_eq!(snap0.invalidations, 0);

    service
        .add_document("mid-run-doc", "a late-breaking caption about nothing relevant")
        .expect("fresh external id");
    let report = service.seal().expect("non-empty buffer seals");
    assert_eq!(report.epoch, 1);
    // Sealing an empty buffer is a no-op: no second epoch, no second flush.
    assert!(service.seal().is_none());

    let snap1 = service.metrics_snapshot();
    assert_eq!(snap1.epoch, 1, "the seal's epoch must be observable in metrics");
    assert_eq!(
        snap1.invalidations, 1,
        "one seal must invalidate the expansion cache exactly once"
    );
    assert_eq!(snap1.seals, 1);
    assert_eq!(service.searcher().num_docs(), before_docs + 1);

    // Replay: same graph, same expansions, same bytes — via recomputation.
    let replay = service.run_batch_sqe_c(&batch);
    let fresh = QueryService::from_segmented(
        &bed.kb.graph,
        {
            let mut seg = SegmentedIndex::from_index(index.clone());
            seg.add_document("mid-run-doc", "a late-breaking caption about nothing relevant")
                .expect("fresh external id");
            seg.seal();
            seg
        },
        config(),
        ServeConfig::default(),
    );
    let got = run_file("SQE_C", dataset, &replay);
    let want = run_file("SQE_C", dataset, &fresh.run_batch_sqe_c(&batch));
    assert_eq!(got, want, "post-seal replay diverged from a fresh service");
    assert_eq!(
        service.metrics_snapshot().invalidations,
        1,
        "the replay itself must not invalidate again"
    );
}

/// Routes a collection into a fresh sharded service and seals every
/// shard once, so the corpus is live-searchable across all shards.
fn sharded_service_of<'a>(
    bed: &'a TestBed,
    coll: &Collection,
    shards: usize,
    workers: usize,
) -> ShardedService<'a> {
    let service = ShardedService::new(
        &bed.kb.graph,
        Analyzer::english(),
        ShardRouter::new(shards),
        config(),
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    );
    for d in &coll.docs {
        service
            .add_document(&d.id, &d.text)
            .expect("generated ids are unique");
    }
    service.seal_all();
    service
}

#[test]
fn sharded_service_run_files_are_byte_identical_at_every_shard_and_worker_count() {
    // The scatter-gather contract: hash-routing the corpus over any
    // number of shards and replaying on any number of workers, cold or
    // warm, never changes a byte of any run file.
    let (bed, indexes) = build_world();
    for ds_name in DATASETS {
        let dataset = bed.dataset(ds_name);
        let index = &indexes[dataset.collection];
        let coll = bed.collection_of(dataset);
        let batch = batch_of(&bed, dataset);
        let pipeline = SqePipeline::from_index(&bed.kb.graph, index, config());
        let reference: Vec<Vec<String>> = batch
            .iter()
            .map(|(text, nodes)| pipeline.rank_sqe_c(text, nodes))
            .collect();
        let want = run_file("SQE_C", dataset, &reference);
        for shards in [1usize, 2, 4] {
            for workers in WORKER_COUNTS {
                let service = sharded_service_of(&bed, coll, shards, workers);
                for replay in ["cold", "warm"] {
                    let served = service.run_batch_sqe_c(&batch);
                    let got = run_file("SQE_C", dataset, &served);
                    assert_eq!(
                        got, want,
                        "{ds_name}/SQE_C: {replay} run over {shards} shards at \
                         {workers} workers must be byte-identical to the \
                         sequential pipeline"
                    );
                }
                let snap = service.metrics_snapshot();
                assert!(
                    snap.cache_hits > 0,
                    "{ds_name}: the warm sharded replay must hit the expansion cache"
                );
            }
        }
    }
}

#[test]
fn mid_run_shard_seal_bumps_one_epoch_entry_and_invalidates_once() {
    // Sealing one shard between two batches must advance exactly that
    // shard's entry of the epoch vector, flush the shared expansion
    // cache exactly once, and leave the replay byte-identical to a
    // fresh build that includes the late document.
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let coll = bed.collection_of(dataset);
    let batch = batch_of(&bed, dataset);
    let service = sharded_service_of(&bed, coll, 4, 2);
    service.run_batch_sqe_c(&batch);
    let epochs0 = service.epoch_vector();
    let inv0 = service.metrics_snapshot().invalidations;
    let docs0 = service.num_docs();

    let late_id = "mid-run-doc";
    let target = service.router().route(late_id);
    service
        .add_document(late_id, "a late-breaking caption about nothing relevant")
        .expect("fresh external id");
    let report = service.seal_shard(target).expect("non-empty shard buffer seals");
    assert_eq!(report.epoch, epochs0[target] + 1);
    // Sealing the same (now empty) shard again is a no-op.
    assert!(service.seal_shard(target).is_none());

    let epochs1 = service.epoch_vector();
    for (s, (&before, &after)) in epochs0.iter().zip(&epochs1).enumerate() {
        if s == target {
            assert_eq!(after, before + 1, "sealed shard must advance its epoch entry");
        } else {
            assert_eq!(after, before, "shard {s} was not sealed; its epoch must hold");
        }
    }
    let snap = service.metrics_snapshot();
    assert_eq!(
        snap.invalidations,
        inv0 + 1,
        "one shard seal must invalidate the shared cache exactly once"
    );
    assert_eq!(service.num_docs(), docs0 + 1);

    // Replay vs a fresh monolithic service over the same corpus + doc.
    let replay = service.run_batch_sqe_c(&batch);
    let fresh = QueryService::from_segmented(
        &bed.kb.graph,
        {
            let mut seg = SegmentedIndex::from_index(index.clone());
            seg.add_document(late_id, "a late-breaking caption about nothing relevant")
                .expect("fresh external id");
            seg.seal();
            seg
        },
        config(),
        ServeConfig::default(),
    );
    let got = run_file("SQE_C", dataset, &replay);
    let want = run_file("SQE_C", dataset, &fresh.run_batch_sqe_c(&batch));
    assert_eq!(got, want, "post-seal sharded replay diverged from a fresh service");
    assert_eq!(
        service.metrics_snapshot().invalidations,
        inv0 + 1,
        "the replay itself must not invalidate again"
    );
}

/// Admission settings for the deadline/degraded wall: small enough that
/// one 12-request batch overflows the pending queue, a refill slow
/// enough that later batches run out of tokens before slots.
fn wall_admission() -> AdmissionConfig {
    AdmissionConfig {
        queue_capacity: 5,
        rate_per_sec: 60,
        burst: 6,
        codel_target_nanos: 0,
        codel_interval_nanos: 0,
        default_deadline_nanos: 0,
    }
}

/// Primes the degraded-mode ladder with fixed per-rung costs. Under a
/// frozen [`ManualClock`] every real execution records a zero-duration
/// cost, which the histograms skip — so these stay the authoritative
/// estimates for the whole replay.
fn prime_wall_ladder(record: impl Fn(usize, u64)) {
    record(0, 200_000); // full (SQE_T&S)
    record(1, 80_000); // triangular
    record(2, 20_000); // unexpanded
}

/// Per-request deadline budgets spanning the whole ladder. Five residue
/// classes are pinned to one rung each (with the primed costs, the p95
/// estimates are the power-of-two bucket uppers 262143 / 131071 / 32767
/// ns), so every outcome kind is guaranteed to occur among the admitted
/// prefix of each batch; the rest draw from a seeded RNG.
fn wall_budgets(n: usize) -> Vec<u64> {
    let mut rng = NoiseRng::new(0xD15E_A5E0_0B57_AC1E);
    (0..n)
        .map(|i| {
            let draw = (rng.next_f64() * 400_000.0) as u64;
            match i % 7 {
                0 => 300_000, // ≥ 262143 → full (ok)
                1 => 150_000, // → degraded:triangular
                2 => 50_000,  // → degraded:unexpanded
                3 => 0,       // → deadline:queue
                5 => 10_000,  // < 32767 → shed:budget_exhausted
                _ => draw,
            }
        })
        .collect()
}

/// Replays the batch through `serve_batch` under a scripted clock
/// schedule (one 50 ms tick per 12-request batch, driving token-bucket
/// refills) and serializes every outcome — including which requests
/// shed, degraded, or blew their deadline — into one comparable blob.
fn outcome_blob(
    serve: impl Fn(&[ServeRequest]) -> Vec<(String, Vec<String>)>,
    clock: &ManualClock,
    batch: &[(String, Vec<ArticleId>)],
    budgets: &[u64],
) -> String {
    let mut lines = String::new();
    for (k, chunk) in batch.chunks(12).enumerate() {
        let now = (k as u64 + 1) * 50_000_000;
        clock.set(now);
        let requests: Vec<ServeRequest> = chunk
            .iter()
            .enumerate()
            .map(|(j, (text, nodes))| {
                let i = k * 12 + j;
                ServeRequest {
                    text: text.clone(),
                    nodes: nodes.clone(),
                    deadline: Deadline::within(now, budgets.get(i).copied().unwrap_or(0)),
                }
            })
            .collect();
        for (j, (label, ids)) in serve(&requests).into_iter().enumerate() {
            let i = k * 12 + j;
            lines.push_str(&format!("{i}:{label}:{}\n", ids.join(",")));
        }
    }
    lines
}

#[test]
fn deadline_and_degraded_outcomes_are_byte_identical_across_workers_and_shards() {
    // The wall extended to the admission layer: with the same seed and
    // the same ManualClock schedule, the full outcome sequence — which
    // requests shed (and why), which degrade (and to which rung), which
    // blow their deadline, and every surviving ranking — is
    // byte-identical at every worker count and every shard count.
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let coll = bed.collection_of(dataset);
    // Repeat the query set so the replay spans several batches (several
    // clock ticks, several token-bucket refills).
    let mut batch = Vec::new();
    for _ in 0..3 {
        batch.extend(batch_of(&bed, dataset));
    }
    let budgets = wall_budgets(batch.len());

    let mut blobs: Vec<(String, String)> = Vec::new();
    for workers in WORKER_COUNTS {
        let clock = Arc::new(ManualClock::new());
        let service = QueryService::with_clock(
            &bed.kb.graph,
            index,
            config(),
            ServeConfig {
                workers,
                admission: wall_admission(),
                ..ServeConfig::default()
            },
            clock.clone(),
        );
        prime_wall_ladder(|rung, nanos| service.record_ladder_cost(rung, nanos));
        let blob = outcome_blob(
            |reqs| {
                service
                    .serve_batch(reqs)
                    .into_iter()
                    .map(|o| {
                        let label = o.label();
                        let ids = o
                            .into_value()
                            .map(|hits| service.external_ids(&hits))
                            .unwrap_or_default();
                        (label, ids)
                    })
                    .collect()
            },
            &clock,
            &batch,
            &budgets,
        );
        blobs.push((format!("mono/{workers}w"), blob));
    }
    for shards in [1usize, 2, 4] {
        let clock = Arc::new(ManualClock::new());
        let service = ShardedService::with_clock(
            &bed.kb.graph,
            Analyzer::english(),
            ShardRouter::new(shards),
            config(),
            ServeConfig {
                workers: 2,
                admission: wall_admission(),
                ..ServeConfig::default()
            },
            clock.clone(),
        );
        for d in &coll.docs {
            service
                .add_document(&d.id, &d.text)
                .expect("generated ids are unique");
        }
        service.seal_all();
        prime_wall_ladder(|rung, nanos| service.record_ladder_cost(rung, nanos));
        let blob = outcome_blob(
            |reqs| {
                service
                    .serve_batch(reqs)
                    .into_iter()
                    .map(|o| {
                        let label = o.label();
                        let ids = o
                            .into_value()
                            .map(|hits| service.external_ids(&hits))
                            .unwrap_or_default();
                        (label, ids)
                    })
                    .collect()
            },
            &clock,
            &batch,
            &budgets,
        );
        blobs.push((format!("sharded/{shards}s"), blob));
    }

    let (ref_name, reference) = blobs.first().expect("at least one configuration ran");
    // The schedule is not a no-op wall: every outcome kind occurs.
    for kind in [
        ":ok:",
        ":degraded:triangular:",
        ":degraded:unexpanded:",
        ":shed:queue_full:",
        ":shed:rate_limited:",
        ":shed:budget_exhausted:",
        ":deadline:queue:",
    ] {
        assert!(
            reference.contains(kind),
            "the wall schedule must produce a {kind} outcome; blob:\n{reference}"
        );
    }
    for (name, blob) in &blobs {
        assert_eq!(
            blob, reference,
            "{name} outcome sequence diverged from {ref_name}"
        );
    }
}

#[test]
fn duplicate_external_ids_are_rejected_across_shards() {
    // Regression: duplicate detection must span all shards, not just the
    // one the second copy routes to.
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let coll = bed.collection_of(dataset);
    let _ = indexes;
    let service = sharded_service_of(&bed, coll, 4, 1);
    let first = &coll.docs[0];
    let err = service
        .add_document(&first.id, "a second body under an already-ingested id")
        .expect_err("re-adding an ingested id must fail on every shard");
    let msg = format!("{err:?}");
    assert!(msg.contains(&first.id), "error must carry the offending id: {msg}");
}

#[test]
fn invalidated_cache_still_reproduces_the_same_bytes() {
    // Generation bumps force recomputation; on an unchanged graph the
    // recomputed expansions — and therefore the run files — are identical.
    let (bed, indexes) = build_world();
    let dataset = bed.dataset("imageclef");
    let index = &indexes[dataset.collection];
    let batch = batch_of(&bed, dataset);
    let service = QueryService::new(
        &bed.kb.graph,
        index,
        config(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let before = run_file("SQE_C", dataset, &service.run_batch_sqe_c(&batch));
    service.invalidate_cache();
    let after = run_file("SQE_C", dataset, &service.run_batch_sqe_c(&batch));
    assert_eq!(before, after);
    let snap = service.metrics_snapshot();
    assert_eq!(snap.invalidations, 1);
}
