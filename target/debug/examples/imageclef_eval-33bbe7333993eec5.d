/root/repo/target/debug/examples/imageclef_eval-33bbe7333993eec5.d: examples/imageclef_eval.rs

/root/repo/target/debug/examples/imageclef_eval-33bbe7333993eec5: examples/imageclef_eval.rs

examples/imageclef_eval.rs:
