//! Table 4 microbenchmark: query-graph construction time per motif
//! configuration (the paper's SQE_T / SQE_T&S / SQE_S rows), per dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqe_bench::ExperimentContext;

fn bench_motif_configs(c: &mut Criterion) {
    let ctx = ExperimentContext::small();
    let mut group = c.benchmark_group("query_graph_build");
    for dataset in ["imageclef", "chic2012", "chic2013"] {
        let runner = ctx.runner(dataset);
        let pipeline = runner.pipeline();
        let queries: Vec<Vec<kbgraph::ArticleId>> = runner
            .dataset()
            .queries
            .iter()
            .map(|q| runner.manual_nodes(q))
            .collect();
        for (name, motifs) in [
            ("SQE_T", sqe::MotifSet::triangular()),
            ("SQE_T&S", sqe::MotifSet::t_and_s()),
            ("SQE_S", sqe::MotifSet::square()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, dataset),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let mut total = 0usize;
                        for nodes in queries {
                            total += pipeline
                                .build_query_graph(std::hint::black_box(nodes), &motifs)
                                .num_expansions();
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_motif_configs);
criterion_main!(benches);
