//! Ablation benchmarks for the design choices DESIGN.md calls out: the
//! |m_a| weighting, the reciprocal-link requirement, the category
//! conditions, and parallel query-graph construction. These measure
//! *quality* deltas (mean P@10) per iteration so Criterion's timing also
//! doubles as a cost comparison of the variants.

use criterion::{criterion_group, criterion_main, Criterion};
use ireval::precision::mean_precision;
use ireval::{Qrels, Run};
use kbgraph::{ArticleId, KbGraph};
use sqe::{Motif, MotifKind, MotifSet, MotifSpec, QueryGraphBuilder};
use sqe_bench::ExperimentContext;

/// Square motif variant without the reciprocal-link requirement
/// (ablation: is "doubly linked" load-bearing?).
struct OneWaySquare;

impl Motif for OneWaySquare {
    fn kind(&self) -> MotifKind {
        MotifKind::Square
    }

    fn expansions_into(
        &self,
        graph: &KbGraph,
        query_node: ArticleId,
        out: &mut Vec<(ArticleId, u32)>,
    ) {
        let query_cats = graph.categories_of(query_node);
        if query_cats.is_empty() {
            return;
        }
        // One-way out-links instead of mutual links.
        for &cand_raw in graph.out_links(query_node) {
            let cand = ArticleId::new(cand_raw);
            let cand_cats = graph.categories_of(cand);
            let mut squares = 0u32;
            for &cq in query_cats {
                for &cc in cand_cats {
                    if cq != cc
                        && graph.category_adjacent(
                            kbgraph::CategoryId::new(cq),
                            kbgraph::CategoryId::new(cc),
                        )
                    {
                        squares += 1;
                    }
                }
            }
            if squares > 0 {
                out.push((cand, squares));
            }
        }
    }
}

fn eval_p10(ctx: &ExperimentContext, weighted: bool, one_way: bool) -> f64 {
    let runner = ctx.runner("imageclef");
    let pipeline = runner.pipeline();
    let dataset = runner.dataset();
    let mut qrels = Qrels::new();
    for q in &dataset.queries {
        qrels.add_query(&q.id);
        for d in &dataset.relevant[&q.id] {
            qrels.add_judgment(&q.id, d);
        }
    }
    let graph = &ctx.bed.kb.graph;
    let builder = if one_way {
        QueryGraphBuilder::new(
            graph,
            vec![Box::new(MotifSpec::triangular()), Box::new(OneWaySquare)],
        )
    } else {
        QueryGraphBuilder::from_set(graph, &MotifSet::t_and_s())
    };
    let mut run = Run::new("ablation");
    for q in &dataset.queries {
        let nodes = runner.manual_nodes(q);
        let mut qg = builder.build(&nodes);
        if !weighted {
            // Flatten |m_a| to 1: ablate the motif-count weighting.
            for e in &mut qg.expansions {
                e.1 = 1;
            }
        }
        let eq = sqe::expand::build_expanded_query(
            graph,
            &q.text,
            &qg,
            pipeline.searcher().analyzer(),
            &ctx.sqe_config.expand,
        );
        let hits = searchlite::ql::rank(pipeline.searcher(), &eq.query, ctx.sqe_config.ql, 1000);
        run.set_ranking(&q.id, pipeline.external_ids(&hits));
    }
    mean_precision(&run, &qrels, 10)
}

fn bench_ablations(c: &mut Criterion) {
    let ctx = ExperimentContext::small();
    // Print the quality ablation once (the interesting output).
    let full = eval_p10(&ctx, true, false);
    let unweighted = eval_p10(&ctx, false, false);
    let one_way = eval_p10(&ctx, true, true);
    println!("ablation P@10: full={full:.3} unweighted|m_a|={unweighted:.3} one-way-links={one_way:.3}");

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("weighted_mutual", |b| {
        b.iter(|| eval_p10(std::hint::black_box(&ctx), true, false))
    });
    group.bench_function("unweighted", |b| {
        b.iter(|| eval_p10(std::hint::black_box(&ctx), false, false))
    });
    group.bench_function("one_way_links", |b| {
        b.iter(|| eval_p10(std::hint::black_box(&ctx), true, true))
    });
    group.finish();

    // Parallel query-graph construction (the paper's Section 4.4 remark).
    let runner = ctx.runner("imageclef");
    let graph = &ctx.bed.kb.graph;
    let queries: Vec<Vec<ArticleId>> = runner
        .dataset()
        .queries
        .iter()
        .map(|q| runner.manual_nodes(q))
        .collect();
    let builder = QueryGraphBuilder::from_set(graph, &MotifSet::t_and_s());
    let mut pg = c.benchmark_group("parallel_expansion");
    for threads in [1usize, 4] {
        pg.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| builder.build_many(std::hint::black_box(&queries), threads).len())
        });
    }
    pg.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
