//! Structural analysis of ground-truth query graphs (Section 2.1).
//!
//! Given a query's query nodes and its *optimal* expansion nodes (from the
//! ground truth), this module enumerates the short mixed cycles that pass
//! through a query node and contain at least one expansion node, and
//! aggregates per-cycle-length statistics:
//!
//! * how many such cycles exist (are short cycles the carrier of the
//!   optimal expansions at all?),
//! * the ratio of category nodes per cycle (Figure 2b — ≈⅓ in Wikipedia),
//! * the density of extra edges (Figure 2c — denser cycles matter more),
//! * which expansion nodes each cycle length *reaches* (feeding the
//!   contribution experiment of Figure 2a, where retrieval is run with
//!   only the nodes reached by one length).

use kbgraph::{ArticleId, CycleFinder, CycleLimits, KbGraph, Node};
use rustc_hash::{FxHashMap, FxHashSet};

/// Aggregated statistics of one cycle length.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthStats {
    /// The cycle length (3, 4 or 5).
    pub length: usize,
    /// Number of (query-node-anchored) cycles of this length containing
    /// at least one expansion node.
    pub cycles: usize,
    /// Mean fraction of category nodes per cycle.
    pub category_ratio: f64,
    /// Mean density of extra edges per cycle.
    pub extra_edge_density: f64,
}

/// The structural analysis of one query graph.
#[derive(Debug, Clone, Default)]
pub struct CycleAnalysis {
    /// Per-length aggregates (lengths without cycles are omitted).
    pub per_length: Vec<LengthStats>,
    /// Expansion articles reached by cycles of each length.
    pub reached: FxHashMap<usize, Vec<ArticleId>>,
}

impl CycleAnalysis {
    /// The stats of a specific length, if any cycles of it were found.
    pub fn stats(&self, length: usize) -> Option<&LengthStats> {
        self.per_length.iter().find(|s| s.length == length)
    }

    /// Expansion articles on cycles of `length` (empty slice if none).
    pub fn reached_by(&self, length: usize) -> &[ArticleId] {
        self.reached.get(&length).map_or(&[], |v| v.as_slice())
    }
}

/// Analyzes the cycles connecting `query_nodes` to `expansion_nodes`.
pub fn analyze_query_graph(
    graph: &KbGraph,
    query_nodes: &[ArticleId],
    expansion_nodes: &[ArticleId],
    limits: CycleLimits,
) -> CycleAnalysis {
    let expansion_set: FxHashSet<ArticleId> = expansion_nodes.iter().copied().collect();
    let mut agg: FxHashMap<usize, (usize, f64, f64)> = FxHashMap::default();
    let mut reached: FxHashMap<usize, FxHashSet<ArticleId>> = FxHashMap::default();
    let mut finder = CycleFinder::new(graph, limits);
    for &qn in query_nodes {
        finder.visit_cycles(Node::Article(qn), |cycle| {
            // Expansion nodes present in this cycle.
            let hits: Vec<ArticleId> = cycle
                .nodes
                .iter()
                .filter_map(|n| match n {
                    Node::Article(a) if expansion_set.contains(a) => Some(*a),
                    _ => None,
                })
                .collect();
            if hits.is_empty() {
                return;
            }
            let entry = agg.entry(cycle.len()).or_insert((0, 0.0, 0.0));
            entry.0 += 1;
            entry.1 += cycle.category_ratio();
            entry.2 += cycle.extra_edge_density();
            reached.entry(cycle.len()).or_default().extend(hits);
        });
    }
    let mut per_length: Vec<LengthStats> = agg
        .into_iter()
        .map(|(length, (n, cr, ed))| LengthStats {
            length,
            cycles: n,
            category_ratio: cr / n as f64,
            extra_edge_density: ed / n as f64,
        })
        .collect();
    per_length.sort_by_key(|s| s.length);
    let reached = reached
        .into_iter()
        .map(|(l, set)| {
            let mut v: Vec<ArticleId> = set.into_iter().collect();
            v.sort_unstable();
            (l, v)
        })
        .collect();
    CycleAnalysis {
        per_length,
        reached,
    }
}

/// Averages per-length statistics over many queries' analyses (weighting
/// each query equally, as the paper's figures do).
pub fn average_analyses(analyses: &[CycleAnalysis]) -> Vec<LengthStats> {
    let mut acc: FxHashMap<usize, (usize, f64, f64, usize)> = FxHashMap::default();
    for a in analyses {
        for s in &a.per_length {
            let e = acc.entry(s.length).or_insert((0, 0.0, 0.0, 0));
            e.0 += s.cycles;
            e.1 += s.category_ratio;
            e.2 += s.extra_edge_density;
            e.3 += 1;
        }
    }
    let mut out: Vec<LengthStats> = acc
        .into_iter()
        .map(|(length, (cycles, cr, ed, n))| LengthStats {
            length,
            cycles,
            category_ratio: cr / n as f64,
            extra_edge_density: ed / n as f64,
        })
        .collect();
    out.sort_by_key(|s| s.length);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;

    /// q and e doubly linked sharing category c (a 3-cycle), plus e2 on a
    /// 4-cycle via the category hierarchy.
    fn world() -> (KbGraph, ArticleId, ArticleId, ArticleId) {
        let mut b = GraphBuilder::new();
        let q = b.add_article("q");
        let e = b.add_article("e");
        let e2 = b.add_article("e2");
        let c = b.add_category("c");
        let sub = b.add_category("sub");
        b.add_mutual_link(q, e);
        b.add_membership(q, c);
        b.add_membership(e, c);
        b.add_mutual_link(q, e2);
        b.add_membership(e2, sub);
        b.add_subcategory(sub, c);
        (b.build(), q, e, e2)
    }

    fn limits() -> CycleLimits {
        CycleLimits {
            max_len: 5,
            max_expand_degree: 64,
            max_cycles: 10_000,
        }
    }

    #[test]
    fn finds_cycles_of_both_lengths() {
        let (g, q, e, e2) = world();
        let a = analyze_query_graph(&g, &[q], &[e, e2], limits());
        assert!(a.stats(3).is_some(), "triangle present");
        assert!(a.stats(4).is_some(), "square present");
        assert!(a.reached_by(3).contains(&e));
        assert!(a.reached_by(4).contains(&e2));
    }

    #[test]
    fn cycles_without_expansion_nodes_ignored() {
        let (g, q, e, _) = world();
        // Pretend only e2... pass empty expansion set: nothing counted.
        let a = analyze_query_graph(&g, &[q], &[], limits());
        assert!(a.per_length.is_empty());
        let _ = e;
    }

    #[test]
    fn category_ratio_of_triangle_is_one_third() {
        let (g, q, e, _) = world();
        let a = analyze_query_graph(&g, &[q], &[e], limits());
        let s3 = a.stats(3).unwrap();
        assert!((s3.category_ratio - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn averaging_across_queries() {
        let (g, q, e, e2) = world();
        let a1 = analyze_query_graph(&g, &[q], &[e, e2], limits());
        let a2 = a1.clone();
        let avg = average_analyses(&[a1, a2]);
        let s3 = avg.iter().find(|s| s.length == 3).unwrap();
        assert!((s3.category_ratio - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s3.cycles, 2, "cycle counts accumulate");
    }

    #[test]
    fn reached_by_unknown_length_is_empty() {
        let (g, q, e, _) = world();
        let a = analyze_query_graph(
            &g,
            &[q],
            &[e],
            CycleLimits {
                max_len: 3,
                ..limits()
            },
        );
        assert!(a.reached_by(4).is_empty());
        assert!(a.reached_by(5).is_empty());
    }

    #[test]
    fn multiple_query_nodes_accumulate() {
        let (g, q, e, e2) = world();
        // Use e as a second query node: the same triangle is found from
        // both anchors, doubling the 3-cycle count.
        let a1 = analyze_query_graph(&g, &[q], &[e, e2], limits());
        let a2 = analyze_query_graph(&g, &[q, e2], &[e], limits());
        assert!(a2.stats(3).map_or(0, |s| s.cycles) >= a1.stats(3).map_or(0, |s| s.cycles));
    }
}
