//! Concurrent query serving: work-stealing batch execution, expansion
//! caching, and injected-clock latency metrics.
//!
//! The ROADMAP's north star is serving SQE under heavy traffic "as fast
//! as the hardware allows" while staying bit-identical to the paper's
//! sequential pipeline. This module provides:
//!
//! * [`run_indexed`] — a work-stealing executor over `crossbeam`
//!   channels. Each query is one work item pulled by idle workers, so a
//!   pathological query no longer stalls its whole even-sized chunk (the
//!   previous behaviour of `rank_sqe_many` / `build_many`). Results are
//!   written into their input slot, so output order — and therefore every
//!   downstream run file — is independent of scheduling.
//! * [`QueryService`] — the serving facade over [`SqePipeline`]: an LRU
//!   [`ExpansionCache`] keyed by the sorted query-node set + motif config
//!   (motif traversal is the dominant per-query cost and is a pure
//!   function of exactly that key), per-worker reusable scratch buffers,
//!   and [`ServeMetrics`] recording cache traffic plus per-stage latency
//!   through an injected [`Clock`] (no wall-clock reads in library code;
//!   tests drive a `ManualClock`).
//!
//! # Determinism contract
//!
//! For any worker count and any cache state, [`QueryService`] output is
//! byte-identical to the sequential uncached [`SqePipeline`]: cached
//! expansions are exactly the `QueryGraph::expansions` a fresh build
//! returns (the cache key preserves query-node multiplicity), and a
//! racing double-compute of the same key inserts the same value twice.
//! `tests/serve_determinism.rs` enforces this end-to-end on run files.

use std::sync::Arc;

use kbgraph::{ArticleId, KbGraph};
use searchlite::ql::{self, SearchHit};
use searchlite::Index;

use crate::cache::{CacheKey, CachedExpansions, ExpansionCache};
use crate::combine;
use crate::expand;
use crate::metrics::{Clock, MetricsSnapshot, NullClock, ServeMetrics};
use crate::pipeline::{SqeConfig, SqePipeline, SqeScratch};
use crate::query_graph::QueryGraphBuilder;

/// Runs `f` over every item on `workers` threads with work stealing:
/// items are fed through an MPMC channel and idle workers pull the next
/// index, so load imbalance between items never idles a thread while work
/// remains. Each worker owns one scratch value from `make_scratch`.
/// Results keep input order (slot `i` holds `f(&items[i])`).
///
/// With `workers <= 1` or fewer than two items the items are processed
/// inline on the caller's thread (still through one scratch value), which
/// is the sequential reference behaviour.
pub fn run_indexed<T, R, S>(
    items: &[T],
    workers: usize,
    make_scratch: impl Fn() -> S + Sync,
    f: impl Fn(&T, &mut S) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    if workers <= 1 || items.len() <= 1 {
        let mut scratch = make_scratch();
        return items.iter().map(|item| f(item, &mut scratch)).collect();
    }
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    for i in 0..items.len() {
        job_tx
            .send(i)
            .expect("invariant: unbounded channel send cannot fail");
    }
    // Close the job queue: workers drain it and then see disconnection.
    drop(job_tx);
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, R)>();
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers.min(items.len()) {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let make_scratch = &make_scratch;
            let f = &f;
            s.spawn(move |_| {
                let mut scratch = make_scratch();
                while let Ok(i) = job_rx.recv() {
                    if let Some(item) = items.get(i) {
                        let r = f(item, &mut scratch);
                        res_tx
                            .send((i, r))
                            .expect("invariant: unbounded channel send cannot fail");
                    }
                }
            });
        }
        // Only workers hold result senders now: when they all finish (or
        // panic, which drops their sender), `recv` disconnects and this
        // loop ends — no deadlock, and the scope re-raises any panic.
        drop(res_tx);
        while let Ok((i, r)) = res_rx.recv() {
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(r);
            }
        }
    })
    .expect("invariant: child panics re-raise inside the scope itself");
    out.into_iter()
        .map(|r| r.expect("invariant: every job index sent exactly one result"))
        .collect()
}

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads for batch entry points (1 = in-caller sequential).
    pub workers: usize,
    /// Seeded capacity of the expansion cache (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            cache_capacity: 4096,
        }
    }
}

/// The concurrent SQE query service: [`SqePipeline`] semantics behind an
/// expansion cache, a work-stealing batch executor, and latency metrics.
pub struct QueryService<'a> {
    pipeline: SqePipeline<'a>,
    serve_cfg: ServeConfig,
    cache: ExpansionCache,
    metrics: ServeMetrics,
    clock: Arc<dyn Clock>,
}

impl<'a> QueryService<'a> {
    /// Creates a service with the no-op [`NullClock`] (counters work,
    /// latency histograms record zeros).
    pub fn new(graph: &'a KbGraph, index: &'a Index, cfg: SqeConfig, serve_cfg: ServeConfig) -> Self {
        QueryService::with_clock(graph, index, cfg, serve_cfg, Arc::new(NullClock))
    }

    /// Creates a service over a loaded binary snapshot — the cold-start
    /// path a restarting deployment takes. See
    /// [`SqePipeline::from_snapshot`]; the snapshot was fully verified
    /// and audited at decode time.
    pub fn from_snapshot(
        snapshot: &'a sqe_store::Snapshot,
        collection: &str,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
    ) -> Result<Self, sqe_store::StoreError> {
        let index = snapshot.index(collection)?;
        Ok(QueryService::new(snapshot.graph(), index, cfg, serve_cfg))
    }

    /// Creates a service with an injected clock — a `MonotonicClock` in
    /// the bench harness, a `ManualClock` in tests.
    pub fn with_clock(
        graph: &'a KbGraph,
        index: &'a Index,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        QueryService {
            pipeline: SqePipeline::new(graph, index, cfg),
            serve_cfg,
            cache: ExpansionCache::new(serve_cfg.cache_capacity),
            metrics: ServeMetrics::new(),
            clock,
        }
    }

    /// The wrapped sequential pipeline.
    pub fn pipeline(&self) -> &SqePipeline<'a> {
        &self.pipeline
    }

    /// The serving configuration.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve_cfg
    }

    /// Converts hits to external document ids.
    pub fn external_ids(&self, hits: &[SearchHit]) -> Vec<String> {
        self.pipeline.external_ids(hits)
    }

    /// Bumps the cache generation: every cached expansion becomes stale.
    /// Call when the graph or index content behind the service changes.
    pub fn invalidate_cache(&self) {
        self.cache.invalidate();
        self.metrics.invalidations.inc();
    }

    /// Occupied cache entries (live and stale-but-unreclaimed).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Point-in-time copy of every metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.evictions())
    }

    /// Zeroes counters and histograms without touching the cache: the
    /// bench harness resets between its cold and warm phases so the warm
    /// numbers are not polluted by cold-phase latencies.
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// The expansion features for one query under one motif config:
    /// cache hit, or a fresh motif traversal that seeds the cache. Two
    /// workers racing on the same cold key both compute the same value,
    /// so the outcome is order-independent.
    fn expansions_for(
        &self,
        nodes: &[ArticleId],
        triangular: bool,
        square: bool,
        scratch: &mut SqeScratch,
    ) -> CachedExpansions {
        let key = CacheKey::new(nodes, triangular, square);
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.cache_hits.inc();
            return hit;
        }
        self.metrics.cache_misses.inc();
        let builder = QueryGraphBuilder::with_config(self.pipeline.graph(), triangular, square);
        let qg = builder.build_with_scratch(nodes, &mut scratch.qg);
        let expansions: CachedExpansions = Arc::new(qg.expansions);
        self.cache.insert(key, Arc::clone(&expansions));
        expansions
    }

    /// Expand + rank for one motif config, recording the two stage
    /// histograms but not the per-query totals (SQE_C runs this three
    /// times per query).
    fn stage_run(
        &self,
        text: &str,
        nodes: &[ArticleId],
        triangular: bool,
        square: bool,
        scratch: &mut SqeScratch,
    ) -> Vec<SearchHit> {
        let cfg = self.pipeline.config();
        let t0 = self.clock.now_nanos();
        let expansions = self.expansions_for(nodes, triangular, square, scratch);
        let t1 = self.clock.now_nanos();
        let query = expand::build_query(
            self.pipeline.graph(),
            text,
            nodes,
            &expansions,
            self.pipeline.index().analyzer(),
            &cfg.expand,
        );
        let hits =
            ql::rank_with_scratch(self.pipeline.index(), &query, cfg.ql, cfg.depth, &mut scratch.ql);
        let t2 = self.clock.now_nanos();
        self.metrics.stages.expand.record(t1.saturating_sub(t0));
        self.metrics.stages.rank.record(t2.saturating_sub(t1));
        hits
    }

    /// `SQE_T` / `SQE_S` / `SQE_T&S` retrieval through the cache;
    /// identical output to [`SqePipeline::rank_sqe`].
    pub fn rank_sqe(
        &self,
        text: &str,
        nodes: &[ArticleId],
        triangular: bool,
        square: bool,
    ) -> Vec<SearchHit> {
        self.rank_sqe_with_scratch(text, nodes, triangular, square, &mut SqeScratch::new())
    }

    fn rank_sqe_with_scratch(
        &self,
        text: &str,
        nodes: &[ArticleId],
        triangular: bool,
        square: bool,
        scratch: &mut SqeScratch,
    ) -> Vec<SearchHit> {
        let t0 = self.clock.now_nanos();
        let hits = self.stage_run(text, nodes, triangular, square, scratch);
        let t1 = self.clock.now_nanos();
        self.metrics.stages.total.record(t1.saturating_sub(t0));
        self.metrics.queries.inc();
        hits
    }

    /// `SQE_C` rank-range combination through the cache; identical output
    /// to [`SqePipeline::rank_sqe_c`].
    pub fn rank_sqe_c(&self, text: &str, nodes: &[ArticleId]) -> Vec<String> {
        self.rank_sqe_c_with_scratch(text, nodes, &mut SqeScratch::new())
    }

    fn rank_sqe_c_with_scratch(
        &self,
        text: &str,
        nodes: &[ArticleId],
        scratch: &mut SqeScratch,
    ) -> Vec<String> {
        let t0 = self.clock.now_nanos();
        let t = self.stage_run(text, nodes, true, false, scratch);
        let ts = self.stage_run(text, nodes, true, true, scratch);
        let s = self.stage_run(text, nodes, false, true, scratch);
        let c0 = self.clock.now_nanos();
        let ids = combine::sqe_c(
            &self.external_ids(&t),
            &self.external_ids(&ts),
            &self.external_ids(&s),
            self.pipeline.config().depth,
        );
        let c1 = self.clock.now_nanos();
        self.metrics.stages.combine.record(c1.saturating_sub(c0));
        self.metrics.stages.total.record(c1.saturating_sub(t0));
        self.metrics.queries.inc();
        ids
    }

    /// Batch `SQE` retrieval over the configured worker pool; results
    /// keep input order and match [`SqePipeline::rank_sqe_many`].
    pub fn run_batch(
        &self,
        queries: &[(String, Vec<ArticleId>)],
        triangular: bool,
        square: bool,
    ) -> Vec<Vec<SearchHit>> {
        run_indexed(
            queries,
            self.serve_cfg.workers,
            SqeScratch::new,
            |(text, nodes), scratch| {
                self.rank_sqe_with_scratch(text, nodes, triangular, square, scratch)
            },
        )
    }

    /// Batch `SQE_C` retrieval over the configured worker pool; results
    /// keep input order.
    pub fn run_batch_sqe_c(&self, queries: &[(String, Vec<ArticleId>)]) -> Vec<Vec<String>> {
        run_indexed(
            queries,
            self.serve_cfg.workers,
            SqeScratch::new,
            |(text, nodes), scratch| self.rank_sqe_c_with_scratch(text, nodes, scratch),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ManualClock;
    use kbgraph::GraphBuilder;
    use searchlite::{Analyzer, IndexBuilder};

    fn world() -> (KbGraph, Index, ArticleId) {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let cat = b.add_category("mountain railways");
        b.add_mutual_link(cable, funi);
        b.add_membership(cable, cat);
        b.add_membership(funi, cat);
        let graph = b.build();

        let mut ib = IndexBuilder::new(Analyzer::plain());
        ib.add_document("d-cable-0", "cable car climbing the peak");
        ib.add_document("d-funi-0", "old funicular near the village");
        ib.add_document("d-funi-1", "the funicular station entrance");
        ib.add_document("d-noise-0", "a market square with fruit");
        let index = ib.build();
        (graph, index, cable)
    }

    fn queries(cable: ArticleId) -> Vec<(String, Vec<ArticleId>)> {
        vec![
            ("cable car".into(), vec![cable]),
            ("funicular station".into(), vec![cable]),
            ("market fruit".into(), vec![]),
            ("cable car".into(), vec![cable]), // repeat: cache hit
        ]
    }

    #[test]
    fn run_indexed_keeps_input_order_at_any_worker_count() {
        let items: Vec<u32> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for workers in [0, 1, 2, 8, 64] {
            let got = run_indexed(&items, workers, || (), |&x, ()| u64::from(x) * 3);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn run_indexed_empty_and_singleton() {
        let none: Vec<u8> = Vec::new();
        assert!(run_indexed(&none, 4, || (), |&x, ()| x).is_empty());
        assert_eq!(run_indexed(&[9u8], 4, || (), |&x, ()| x), vec![9]);
    }

    #[test]
    fn run_indexed_scratch_is_per_worker_state() {
        // Scratch values accumulate across items without cross-talk: the
        // per-item result only depends on the item, never on scheduling.
        let items: Vec<u32> = (0..16).collect();
        let got = run_indexed(
            &items,
            4,
            Vec::<u32>::new,
            |&x, scratch: &mut Vec<u32>| {
                scratch.push(x);
                x + 1
            },
        );
        assert_eq!(got, (1..=16).collect::<Vec<u32>>());
    }

    #[test]
    fn service_matches_pipeline_for_each_motif_config() {
        let (graph, index, cable) = world();
        let pipeline = SqePipeline::new(&graph, &index, SqeConfig::default());
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        for (tri, sq) in [(true, false), (false, true), (true, true)] {
            for (text, nodes) in queries(cable) {
                let want = pipeline.rank_sqe(&text, &nodes, tri, sq).0;
                // Twice: cold then warm cache.
                assert_eq!(service.rank_sqe(&text, &nodes, tri, sq), want);
                assert_eq!(service.rank_sqe(&text, &nodes, tri, sq), want);
            }
        }
    }

    #[test]
    fn service_sqe_c_matches_pipeline() {
        let (graph, index, cable) = world();
        let pipeline = SqePipeline::new(&graph, &index, SqeConfig::default());
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        for (text, nodes) in queries(cable) {
            let want = pipeline.rank_sqe_c(&text, &nodes);
            assert_eq!(service.rank_sqe_c(&text, &nodes), want);
            assert_eq!(service.rank_sqe_c(&text, &nodes), want, "warm");
        }
    }

    #[test]
    fn batch_matches_sequential_at_every_worker_count() {
        let (graph, index, cable) = world();
        let pipeline = SqePipeline::new(&graph, &index, SqeConfig::default());
        let qs = queries(cable);
        let want: Vec<Vec<SearchHit>> = qs
            .iter()
            .map(|(text, nodes)| pipeline.rank_sqe(text, nodes, true, true).0)
            .collect();
        for workers in [1, 2, 8] {
            let serve_cfg = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let service = QueryService::new(&graph, &index, SqeConfig::default(), serve_cfg);
            assert_eq!(service.run_batch(&qs, true, true), want, "cold workers={workers}");
            assert_eq!(service.run_batch(&qs, true, true), want, "warm workers={workers}");
        }
    }

    #[test]
    fn cache_counters_track_hits_and_misses() {
        let (graph, index, cable) = world();
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        let qs = queries(cable);
        service.run_batch(&qs, true, false);
        let snap = service.metrics_snapshot();
        // 4 queries but only 2 distinct keys: the key is the node set +
        // motif config, so the three `[cable]` queries share one entry
        // regardless of their text.
        assert_eq!(snap.queries, 4);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.cache_hits, 2);
        service.run_batch(&qs, true, false);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.cache_misses, 2, "second pass is fully warm");
        assert_eq!(snap.cache_hits, 6);
        assert!(snap.cache_hit_rate > 0.7);
    }

    #[test]
    fn invalidation_forces_recompute() {
        let (graph, index, cable) = world();
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        let hits = service.rank_sqe("cable car", &[cable], true, false);
        service.invalidate_cache();
        assert_eq!(service.rank_sqe("cable car", &[cable], true, false), hits);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.cache_misses, 2, "post-invalidation lookup misses");
        assert_eq!(snap.invalidations, 1);
    }

    #[test]
    fn zero_capacity_cache_still_serves_correctly() {
        let (graph, index, cable) = world();
        let pipeline = SqePipeline::new(&graph, &index, SqeConfig::default());
        let serve_cfg = ServeConfig {
            workers: 1,
            cache_capacity: 0,
        };
        let service = QueryService::new(&graph, &index, SqeConfig::default(), serve_cfg);
        for _ in 0..2 {
            assert_eq!(
                service.rank_sqe("cable car", &[cable], true, true),
                pipeline.rank_sqe("cable car", &[cable], true, true).0
            );
        }
        let snap = service.metrics_snapshot();
        assert_eq!(snap.cache_hits, 0, "capacity 0 never hits");
        assert_eq!(snap.cache_misses, 2);
    }

    #[test]
    fn manual_clock_drives_stage_histograms() {
        let (graph, index, cable) = world();
        let clock = Arc::new(ManualClock::new());
        // Tick 100ns at every read. One rank_sqe reads five times (outer
        // t0, stage t0/t1/t2, outer t1): expand = 100, rank = 100,
        // total = 400 (spans the four inner ticks).
        struct Ticking(Arc<ManualClock>);
        impl Clock for Ticking {
            fn now_nanos(&self) -> u64 {
                self.0.advance(100);
                self.0.now_nanos()
            }
        }
        let service = QueryService::with_clock(
            &graph,
            &index,
            SqeConfig::default(),
            ServeConfig::default(),
            Arc::new(Ticking(Arc::clone(&clock))),
        );
        service.rank_sqe("cable car", &[cable], true, false);
        let snap = service.metrics_snapshot();
        let stage = |i: usize| snap.stages.get(i).copied().expect("four stages");
        assert_eq!(stage(0).count, 1); // expand
        assert_eq!(stage(0).sum_nanos, 100);
        assert_eq!(stage(1).sum_nanos, 100); // rank
        assert_eq!(stage(3).sum_nanos, 400); // total spans 4 ticks
        assert_eq!(stage(2).count, 0, "no combine stage for plain SQE");
    }
}
