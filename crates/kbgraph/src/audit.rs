//! Structural invariant auditor for [`KbGraph`] (feature `validate`).
//!
//! Every adjacency in the graph is a CSR whose correctness the query layer
//! assumes rather than checks: binary-search membership needs sorted rows,
//! slicing needs monotonic offsets, motif traversal needs the forward and
//! reverse CSRs to describe the same edge set, and cycle enumeration over
//! the category hierarchy assumes child→parent edges form a DAG. A graph
//! deserialized from JSON (or assembled through [`Csr::from_raw_parts`])
//! can silently violate any of these. [`GraphAudit`] re-derives each
//! invariant from the raw arrays and reports every violation as a typed
//! [`GraphViolation`], so corruption is caught at load time instead of as
//! a panic or — worse — a wrong ranking deep inside retrieval.
//!
//! The audit is read-only and runs in `O(V + E)` except the reciprocity
//! check, which is `O(E log d)` for the binary searches.

use std::fmt;

use crate::csr::Csr;
use crate::graph::KbGraph;

/// Names one of the six adjacency structures of a [`KbGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrKind {
    /// article → article hyperlinks.
    ArticleLinks,
    /// Reverse hyperlinks (who links to me).
    ArticleLinksRev,
    /// article → category membership.
    Memberships,
    /// category → article membership (reverse).
    Members,
    /// child category → parent category.
    Subcats,
    /// parent category → child category.
    SubcatsRev,
}

impl CsrKind {
    /// Stable snake_case name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            CsrKind::ArticleLinks => "article_links",
            CsrKind::ArticleLinksRev => "article_links_rev",
            CsrKind::Memberships => "memberships",
            CsrKind::Members => "members",
            CsrKind::Subcats => "subcats",
            CsrKind::SubcatsRev => "subcats_rev",
        }
    }
}

impl fmt::Display for CsrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violated structural invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphViolation {
    /// `offsets` does not have `rows + 1` entries starting at 0.
    OffsetsShape {
        /// Which adjacency.
        csr: CsrKind,
        /// Expected number of rows.
        rows: usize,
        /// Actual `offsets.len()`.
        offsets_len: usize,
    },
    /// `offsets[row + 1] < offsets[row]`.
    OffsetsNotMonotonic {
        /// Which adjacency.
        csr: CsrKind,
        /// Row whose end precedes its start.
        row: usize,
    },
    /// `offsets.last() != targets.len()`: the offsets describe a different
    /// edge count than the target array holds.
    OffsetsEndMismatch {
        /// Which adjacency.
        csr: CsrKind,
        /// Final offset value.
        last: u32,
        /// Actual `targets.len()`.
        targets_len: usize,
    },
    /// An edge points outside the target id space.
    TargetOutOfBounds {
        /// Which adjacency.
        csr: CsrKind,
        /// Source row of the bad edge.
        src: u32,
        /// The out-of-range target.
        dst: u32,
        /// Exclusive bound of the target id space.
        bound: usize,
    },
    /// A neighbour row is not strictly ascending (unsorted or duplicated),
    /// which breaks binary-search membership.
    RowNotStrictlySorted {
        /// Which adjacency.
        csr: CsrKind,
        /// The offending row.
        src: u32,
    },
    /// Edge present in the forward CSR but missing from its reverse twin
    /// (or vice versa — `forward` names the CSR that has the edge).
    MissingReciprocal {
        /// The CSR containing the unmatched edge.
        forward: CsrKind,
        /// The CSR the mirror edge is missing from.
        reverse: CsrKind,
        /// Source of the unmatched edge.
        src: u32,
        /// Target of the unmatched edge.
        dst: u32,
    },
    /// The child→parent category hierarchy contains a cycle through this
    /// category.
    CategoryCycle {
        /// A category on the cycle.
        category: u32,
    },
    /// Two articles share a title, breaking the title↔id bijection.
    DuplicateArticleTitle {
        /// The ambiguous title.
        title: String,
    },
    /// Two categories share a title, breaking the title↔id bijection.
    DuplicateCategoryTitle {
        /// The ambiguous title.
        title: String,
    },
}

impl fmt::Display for GraphViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphViolation::OffsetsShape {
                csr,
                rows,
                offsets_len,
            } => write!(
                f,
                "{csr}: offsets has {offsets_len} entries, want {} for {rows} rows",
                rows + 1
            ),
            GraphViolation::OffsetsNotMonotonic { csr, row } => {
                write!(f, "{csr}: offsets decrease at row {row}")
            }
            GraphViolation::OffsetsEndMismatch {
                csr,
                last,
                targets_len,
            } => write!(
                f,
                "{csr}: final offset {last} != target array length {targets_len}"
            ),
            GraphViolation::TargetOutOfBounds {
                csr,
                src,
                dst,
                bound,
            } => write!(f, "{csr}: edge {src} -> {dst} exceeds id space {bound}"),
            GraphViolation::RowNotStrictlySorted { csr, src } => {
                write!(f, "{csr}: row {src} is not sorted+deduplicated")
            }
            GraphViolation::MissingReciprocal {
                forward,
                reverse,
                src,
                dst,
            } => write!(
                f,
                "{forward}: edge {src} -> {dst} has no mirror in {reverse}"
            ),
            GraphViolation::CategoryCycle { category } => {
                write!(f, "subcats: category hierarchy cycles through {category}")
            }
            GraphViolation::DuplicateArticleTitle { title } => {
                write!(f, "article title {title:?} maps to multiple ids")
            }
            GraphViolation::DuplicateCategoryTitle { title } => {
                write!(f, "category title {title:?} maps to multiple ids")
            }
        }
    }
}

/// Per-CSR soundness summary used to decide which cross-structure checks
/// are safe to run on corrupted input.
#[derive(Clone, Copy)]
struct CsrHealth {
    /// Offsets are well-shaped and monotonic and match `targets.len()`:
    /// row slicing cannot panic.
    sliceable: bool,
    /// Additionally every target is in bounds: row lookups on the other
    /// side of an edge cannot go out of range.
    bounded: bool,
}

/// The result of auditing one [`KbGraph`].
#[derive(Debug, Clone)]
pub struct GraphAudit {
    violations: Vec<GraphViolation>,
}

impl GraphAudit {
    /// Audits every structural invariant of `graph`.
    pub fn run(graph: &KbGraph) -> Self {
        let mut v = Vec::new();
        let arts = graph.num_articles();
        let cats = graph.num_categories();
        let specs: [(CsrKind, &Csr, usize, usize); 6] = [
            (CsrKind::ArticleLinks, graph.article_links(), arts, arts),
            (
                CsrKind::ArticleLinksRev,
                graph.article_links_rev(),
                arts,
                arts,
            ),
            (CsrKind::Memberships, graph.memberships(), arts, cats),
            (CsrKind::Members, graph.members(), cats, arts),
            (CsrKind::Subcats, graph.subcategories(), cats, cats),
            (CsrKind::SubcatsRev, graph.subcats_rev(), cats, cats),
        ];
        let health: Vec<CsrHealth> = specs
            .iter()
            .map(|&(kind, csr, rows, bound)| audit_csr(kind, csr, rows, bound, &mut v))
            .collect();

        // Reciprocity: forward/reverse pairs must describe identical edge
        // sets. Only safe when both sides are sliceable; per-edge lookups
        // are skipped for targets that are out of range.
        for &(fi, ri) in &[(0usize, 1usize), (2, 3), (4, 5)] {
            if health[fi].sliceable && health[ri].sliceable {
                check_reciprocal(specs[fi].0, specs[fi].1, specs[ri].0, specs[ri].1, &mut v);
                check_reciprocal(specs[ri].0, specs[ri].1, specs[fi].0, specs[fi].1, &mut v);
            }
        }

        // Category DAG: the child→parent hierarchy must be acyclic or the
        // paper's motif traversals (and cycle statistics) diverge.
        if health[4].sliceable && health[4].bounded {
            if let Some(category) = find_cycle(specs[4].1) {
                v.push(GraphViolation::CategoryCycle { category });
            }
        }

        // Title↔id bijection: ids are dense by construction, so the only
        // way to break the bijection is two ids sharing a title.
        check_unique_titles(
            (0..arts as u32).map(|a| graph.article_title(crate::ids::ArticleId::new(a))),
            &mut v,
            true,
        );
        check_unique_titles(
            (0..cats as u32).map(|c| graph.category_title(crate::ids::CategoryId::new(c))),
            &mut v,
            false,
        );

        GraphAudit { violations: v }
    }

    /// All violations found (empty means the graph is sound).
    pub fn violations(&self) -> &[GraphViolation] {
        &self.violations
    }

    /// True when no invariant is violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a full report if any invariant is violated. `context`
    /// names the call site (e.g. the pipeline stage that loaded the graph).
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "graph audit failed at {context}:\n{}",
            self.report()
        );
    }

    /// Human-readable multi-line report, one violation per line.
    pub fn report(&self) -> String {
        self.violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn audit_csr(
    kind: CsrKind,
    csr: &Csr,
    rows: usize,
    bound: usize,
    out: &mut Vec<GraphViolation>,
) -> CsrHealth {
    let offsets = csr.offsets();
    let targets = csr.targets();
    if offsets.len() != rows + 1 || offsets.first() != Some(&0) {
        out.push(GraphViolation::OffsetsShape {
            csr: kind,
            rows,
            offsets_len: offsets.len(),
        });
        return CsrHealth {
            sliceable: false,
            bounded: false,
        };
    }
    let mut monotonic = true;
    for (row, w) in offsets.windows(2).enumerate() {
        if w[1] < w[0] {
            out.push(GraphViolation::OffsetsNotMonotonic { csr: kind, row });
            monotonic = false;
        }
    }
    let last = *offsets.last().unwrap_or(&0);
    if last as usize != targets.len() {
        out.push(GraphViolation::OffsetsEndMismatch {
            csr: kind,
            last,
            targets_len: targets.len(),
        });
        monotonic = false;
    }
    if !monotonic {
        return CsrHealth {
            sliceable: false,
            bounded: false,
        };
    }
    let mut bounded = true;
    for src in 0..rows as u32 {
        let row = csr.neighbors(src);
        if !row.windows(2).all(|w| w[0] < w[1]) {
            out.push(GraphViolation::RowNotStrictlySorted { csr: kind, src });
        }
        for &dst in row {
            if dst as usize >= bound {
                out.push(GraphViolation::TargetOutOfBounds {
                    csr: kind,
                    src,
                    dst,
                    bound,
                });
                bounded = false;
            }
        }
    }
    CsrHealth {
        sliceable: true,
        bounded,
    }
}

fn check_reciprocal(
    fwd_kind: CsrKind,
    fwd: &Csr,
    rev_kind: CsrKind,
    rev: &Csr,
    out: &mut Vec<GraphViolation>,
) {
    for (src, dst) in fwd.iter_edges() {
        if (dst as usize) < rev.num_rows() {
            // Linear scan, not binary search: the row may itself be
            // unsorted (already reported) and must not hide the edge.
            if !rev.neighbors(dst).contains(&src) {
                out.push(GraphViolation::MissingReciprocal {
                    forward: fwd_kind,
                    reverse: rev_kind,
                    src,
                    dst,
                });
            }
        }
    }
}

/// Iterative 3-colour DFS; returns a node on the first cycle found.
fn find_cycle(csr: &Csr) -> Option<u32> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = csr.num_rows();
    let mut color = vec![WHITE; n];
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if color[start as usize] != WHITE {
            continue;
        }
        color[start as usize] = GRAY;
        stack.push((start, 0));
        while let Some(&(node, edge)) = stack.last() {
            let row = csr.neighbors(node);
            if edge == row.len() {
                color[node as usize] = BLACK;
                stack.pop();
                continue;
            }
            stack
                .last_mut()
                .expect("invariant: the just-peeked DFS stack top still exists")
                .1 += 1;
            let next = row[edge];
            match color[next as usize] {
                WHITE => {
                    color[next as usize] = GRAY;
                    stack.push((next, 0));
                }
                GRAY => {
                    stack.clear();
                    return Some(next);
                }
                _ => {}
            }
        }
    }
    None
}

fn check_unique_titles<'a>(
    titles: impl Iterator<Item = &'a str>,
    out: &mut Vec<GraphViolation>,
    articles: bool,
) {
    let mut seen = rustc_hash::FxHashSet::default();
    for t in titles {
        if !seen.insert(t) {
            out.push(if articles {
                GraphViolation::DuplicateArticleTitle {
                    title: t.to_owned(),
                }
            } else {
                GraphViolation::DuplicateCategoryTitle {
                    title: t.to_owned(),
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> KbGraph {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let tram = b.add_article("tram");
        let rail = b.add_category("rail transport");
        let mountain = b.add_category("mountain transport");
        b.add_mutual_link(cable, funi);
        b.add_article_link(tram, cable);
        b.add_membership(cable, rail);
        b.add_membership(funi, mountain);
        b.add_subcategory(mountain, rail);
        b.build()
    }

    /// Rebuilds the toy graph with one part substituted.
    fn rebuild(g: &KbGraph, patch: impl FnOnce(&mut [Csr; 6]), titles: Option<Vec<String>>) -> KbGraph {
        let mut parts = [
            g.article_links().clone(),
            g.article_links_rev().clone(),
            g.memberships().clone(),
            g.members().clone(),
            g.subcategories().clone(),
            g.subcats_rev().clone(),
        ];
        patch(&mut parts);
        let [al, alr, mem, mbr, sc, scr] = parts;
        let article_titles = titles.unwrap_or_else(|| {
            (0..g.num_articles() as u32)
                .map(|a| g.article_title(crate::ids::ArticleId::new(a)).to_owned())
                .collect()
        });
        let category_titles = (0..g.num_categories() as u32)
            .map(|c| g.category_title(crate::ids::CategoryId::new(c)).to_owned())
            .collect();
        KbGraph::from_parts(article_titles, category_titles, al, alr, mem, mbr, sc, scr)
    }

    #[test]
    fn clean_graph_passes() {
        let audit = GraphAudit::run(&toy());
        assert!(audit.is_clean(), "{}", audit.report());
        audit.assert_clean("test");
    }

    #[test]
    fn swapped_offsets_detected() {
        let g = toy();
        let bad = rebuild(
            &g,
            |p| {
                let mut offsets = p[0].offsets().to_vec();
                offsets.swap(1, 2);
                p[0] = Csr::from_raw_parts(offsets, p[0].targets().to_vec());
            },
            None,
        );
        let audit = GraphAudit::run(&bad);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::OffsetsNotMonotonic { csr: CsrKind::ArticleLinks, .. })));
    }

    #[test]
    fn truncated_targets_detected() {
        let g = toy();
        let bad = rebuild(
            &g,
            |p| {
                let mut targets = p[0].targets().to_vec();
                targets.pop();
                p[0] = Csr::from_raw_parts(p[0].offsets().to_vec(), targets);
            },
            None,
        );
        let audit = GraphAudit::run(&bad);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::OffsetsEndMismatch { .. })));
    }

    #[test]
    fn out_of_bounds_target_detected() {
        let g = toy();
        let bad = rebuild(
            &g,
            |p| {
                let mut targets = p[2].targets().to_vec();
                targets[0] = 999;
                p[2] = Csr::from_raw_parts(p[2].offsets().to_vec(), targets);
            },
            None,
        );
        let audit = GraphAudit::run(&bad);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::TargetOutOfBounds { csr: CsrKind::Memberships, .. })));
    }

    #[test]
    fn dropped_reciprocal_edge_detected() {
        let g = toy();
        // Remove every reverse link: forward edges lose their mirrors.
        let bad = rebuild(
            &g,
            |p| p[1] = Csr::from_edges(3, &[]),
            None,
        );
        let audit = GraphAudit::run(&bad);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(
                v,
                GraphViolation::MissingReciprocal { forward: CsrKind::ArticleLinks, .. }
            )));
    }

    #[test]
    fn category_cycle_detected() {
        let g = toy();
        // mountain → rail already exists; add rail → mountain.
        let bad = rebuild(
            &g,
            |p| {
                p[4] = Csr::from_edges(2, &[(1, 0), (0, 1)]);
                p[5] = p[4].reversed(2);
            },
            None,
        );
        let audit = GraphAudit::run(&bad);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::CategoryCycle { .. })));
    }

    #[test]
    fn unsorted_row_detected() {
        let g = toy();
        let bad = rebuild(
            &g,
            |p| {
                // cable's out-links row is [funicular]; tram's is [cable].
                // Build a two-target row manually in descending order.
                p[0] = Csr::from_raw_parts(vec![0, 2, 2, 2], vec![1, 0]);
            },
            None,
        );
        let audit = GraphAudit::run(&bad);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::RowNotStrictlySorted { csr: CsrKind::ArticleLinks, src: 0 })));
    }

    #[test]
    fn duplicate_title_detected() {
        let g = toy();
        let bad = rebuild(
            &g,
            |_| {},
            Some(vec!["same".into(), "same".into(), "tram".into()]),
        );
        let audit = GraphAudit::run(&bad);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, GraphViolation::DuplicateArticleTitle { .. })));
    }

    #[test]
    fn report_lists_every_violation() {
        let g = toy();
        let bad = rebuild(&g, |p| p[1] = Csr::from_edges(3, &[]), None);
        let audit = GraphAudit::run(&bad);
        assert!(!audit.is_clean());
        assert_eq!(audit.report().lines().count(), audit.violations().len());
        assert!(audit.report().contains("no mirror"));
    }
}
