/root/repo/target/debug/deps/proptests-7d6c131c4140474f.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7d6c131c4140474f: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
