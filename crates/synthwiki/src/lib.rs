//! Deterministic synthetic Wikipedia-like knowledge base and IR datasets.
//!
//! The paper evaluates SQE on the English Wikipedia dump of 2012-07-02 and
//! three document collections (Image CLEF, CHiC 2012, CHiC 2013) that are
//! not redistributable. This crate substitutes them with a *calibrated
//! synthetic world* that preserves every structural property the paper's
//! mechanisms depend on:
//!
//! * a concept hierarchy (domains → topics → subtopics → entities) with
//!   per-level vocabularies and deliberate vocabulary overlap — the source
//!   of the *vocabulary mismatch* and *topic inexperience* problems the
//!   paper's introduction motivates;
//! * a KB graph in which semantically close entities are reciprocally
//!   hyperlinked and share (or have hierarchy-adjacent) categories — the
//!   exact local structures the triangular and square motifs detect;
//! * caption-like short documents "about" entities (the Image CLEF image
//!   metadata / CHiC cultural-heritage records), hard negatives from the
//!   same topics, domain boilerplate records (which is what defeats pure
//!   pseudo-relevance feedback), and background noise;
//! * query sets with ground-truth target entities, relevance neighbourhoods,
//!   aliased/ambiguous surface forms (for the manual-vs-automatic entity
//!   linking gap), and per-dataset statistics matched to the paper
//!   (mean relevant documents per query 68.8 / 31.32 / 50.6; 14
//!   zero-relevant queries in CHiC 2012, 1 in CHiC 2013; the CHiC
//!   collection shared between its two query sets).
//!
//! Everything is generated deterministically from a seed.

pub mod concepts;
pub mod config;
pub mod dataset;
pub mod docs;
pub mod groundtruth;
pub mod kb;
pub mod persist;
pub mod queries;
pub mod words;

pub use concepts::{ConceptSpace, Entity, RelKind, Relation};
pub use config::{CollectionConfig, KbConfig, QuerySetConfig, TestBedConfig};
pub use dataset::{Collection, Dataset, StreamedTestBed, TestBed, TestBedPlan};
pub use docs::Document;
pub use groundtruth::GroundTruth;
pub use queries::QuerySpec;
