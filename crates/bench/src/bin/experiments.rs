//! Regenerates every table and figure of the paper, and load-tests the
//! concurrent query service.
//!
//! ```text
//! experiments [--small] [fig2|table1|fig5|table2|fig6|table3|table4|ablation|sensitivity|stats|export|query <text>|all]
//! experiments serve-bench [--smoke] [--threads=1,2,8] [--shards=N] [--out=BENCH_serve.json]
//! experiments load-bench [--smoke] [--rate=R1,R2] [--threads=N] [--shards=N] [--out=BENCH_load.json]
//! experiments motif-search [--smoke] [--out=BENCH_motif.json]
//! experiments ingest-bench [--smoke] [--out=BENCH_ingest.json]
//! experiments ingest-bench --articles=N [--shards=M] [--smoke] [--out=BENCH_ingest.json]
//! experiments snapshot write|verify|info [--small] [--file=world.snap]
//! experiments store-bench [--smoke] [--out=BENCH_store.json]
//! ```

use sqe::MotifSet;
use sqe_bench::{
    figures, ingest_bench, load_bench, motif_search, serve_bench, store_bench, tables, timing,
    ExperimentContext,
};

fn print_stats(ctx: &ExperimentContext) {
    let stats = ctx.bed.kb.graph.stats();
    println!("=== Test-bed statistics ===");
    println!(
        "KB: {} articles, {} categories, {} article links, {} memberships, {} category links, {} reciprocal pairs",
        stats.num_articles,
        stats.num_categories,
        stats.num_article_links,
        stats.num_membership_links,
        stats.num_category_links,
        stats.num_reciprocal_pairs
    );
    for d in ["imageclef", "chic2012", "chic2013"] {
        let ds = ctx.bed.dataset(d);
        let coll = ctx.bed.collection_of(ds);
        println!(
            "{d}: {} docs, {} queries, avg relevant/query {:.2}, zero-relevant queries {}",
            coll.docs.len(),
            ds.queries.len(),
            ds.avg_relevant_per_query(),
            ds.num_zero_relevant()
        );
        println!(
            "  linker precision (≥1 true target linked): {:.1}%",
            ctx.linker_precision(d) * 100.0
        );
    }
}

fn debug_top(ctx: &ExperimentContext, dataset: &str, nqueries: usize) {
    let r = ctx.runner(dataset);
    let ds = r.dataset();
    let p = r.pipeline();
    for q in ds.queries.iter().take(nqueries) {
        let nodes = r.manual_nodes(q);
        println!("--- {}: '{}' targets={:?}", q.id, q.text, nodes);
        let (hits, qg) = p.rank_sqe(&q.text, &nodes, &MotifSet::t_and_s());
        println!("    expansions: {}", qg.num_expansions());
        let rel = &ds.relevant[&q.id];
        for h in hits.iter().take(10) {
            let id = p.searcher().external_id(h.doc);
            let coll = ctx.bed.collection_of(ds);
            let doc = coll.docs.iter().find(|d| d.id == id).unwrap();
            println!(
                "    {:.3} {} rel={} about={:?} | {}",
                h.score,
                id,
                rel.contains(id),
                doc.about,
                doc.text
            );
        }
    }
}

/// Runs an ad-hoc query through the whole pipeline: entity linking,
/// expansion with both motifs, retrieval — the interactive demo path.
fn adhoc_query(ctx: &ExperimentContext, text: &str) {
    let r = ctx.runner("imageclef");
    let p = r.pipeline();
    let links = ctx.linker.link(text);
    println!("query: \"{text}\"");
    if links.is_empty() {
        println!("no entities linked; retrieval falls back to the raw keywords");
    }
    let nodes: Vec<kbgraph::ArticleId> = links.iter().take(3).map(|l| l.article).collect();
    for l in &links {
        println!(
            "  linked '{}' → \"{}\" (commonness {:.2}{})",
            l.surface,
            ctx.bed.kb.graph.article_title(l.article),
            l.commonness,
            if l.from_fallback { ", fallback" } else { "" }
        );
    }
    let expanded = p.expand(text, &nodes, &MotifSet::t_and_s());
    println!("expansion features ({}):", expanded.query_graph.num_expansions());
    for &(a, m) in expanded.query_graph.expansions.iter().take(10) {
        println!("  {} (|m_a| = {m})", ctx.bed.kb.graph.article_title(a));
    }
    let (hits, _) = p.rank_sqe(text, &nodes, &MotifSet::t_and_s());
    println!("top documents:");
    for h in hits.iter().take(10) {
        println!("  {:>9.3}  {}", h.score, p.searcher().external_id(h.doc));
    }
}

/// Runs the serve-bench load generator and writes `BENCH_serve.json`.
fn run_serve_bench_cli(ctx: &ExperimentContext, context_name: &str, args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut opts = if smoke {
        serve_bench::ServeBenchOptions::smoke()
    } else {
        serve_bench::ServeBenchOptions::default()
    };
    if let Some(list) = args.iter().find_map(|a| a.strip_prefix("--threads=")) {
        let counts: Vec<usize> = list.split(',').filter_map(|t| t.trim().parse().ok()).collect();
        if counts.is_empty() {
            eprintln!("--threads: expected a comma-separated list of worker counts, got '{list}'");
            std::process::exit(2);
        }
        opts.thread_counts = counts;
    }
    if let Some(n) = args.iter().find_map(|a| a.strip_prefix("--shards=")) {
        match n.trim().parse::<usize>() {
            Ok(shards) if shards >= 1 => opts.shards = shards,
            _ => {
                eprintln!("--shards: expected a positive integer, got '{n}'");
                std::process::exit(2);
            }
        }
    }
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_serve.json");
    let report = serve_bench::run_serve_bench(ctx, context_name, &opts);
    print!("{}", serve_bench::format_report(&report));
    match serve_bench::write_report(&report, std::path::Path::new(out)) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("writing {out} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Enumerates the generalized motif space against the planted optimal
/// query graphs and writes `BENCH_motif.json`.
fn run_motif_search_cli(ctx: &ExperimentContext, context_name: &str, args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let opts = if smoke {
        motif_search::MotifSearchOptions::smoke()
    } else {
        motif_search::MotifSearchOptions::default()
    };
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_motif.json");
    let report = motif_search::run_motif_search(ctx, context_name, &opts);
    print!("{}", motif_search::format_report(&report));
    match motif_search::write_report(&report, std::path::Path::new(out)) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("writing {out} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs the open-loop admission/deadline load generator and writes
/// `BENCH_load.json`.
fn run_load_bench_cli(ctx: &ExperimentContext, context_name: &str, args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut opts = if smoke {
        load_bench::LoadBenchOptions::smoke()
    } else {
        load_bench::LoadBenchOptions::default()
    };
    if let Some(list) = args.iter().find_map(|a| a.strip_prefix("--rate=")) {
        let rates: Vec<f64> = list
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&r: &f64| r > 0.0)
            .collect();
        if rates.is_empty() {
            eprintln!("--rate: expected a comma-separated list of positive qps values, got '{list}'");
            std::process::exit(2);
        }
        opts.explicit_rates = rates;
    }
    if let Some(n) = args.iter().find_map(|a| a.strip_prefix("--threads=")) {
        match n.trim().parse::<usize>() {
            Ok(workers) if workers >= 1 => opts.workers = workers,
            _ => {
                eprintln!("--threads: expected a positive integer, got '{n}'");
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = args.iter().find_map(|a| a.strip_prefix("--shards=")) {
        match n.trim().parse::<usize>() {
            Ok(shards) if shards >= 1 => opts.shards = shards,
            _ => {
                eprintln!("--shards: expected a positive integer, got '{n}'");
                std::process::exit(2);
            }
        }
    }
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_load.json");
    let report = load_bench::run_load_bench(ctx, context_name, &opts);
    print!("{}", load_bench::format_report(&report));
    match load_bench::write_report(&report, std::path::Path::new(out)) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("writing {out} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs the live-ingestion benchmark and writes `BENCH_ingest.json`.
fn run_ingest_bench_cli(ctx: &ExperimentContext, context_name: &str, args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let opts = if smoke {
        ingest_bench::IngestBenchOptions::smoke()
    } else {
        ingest_bench::IngestBenchOptions::default()
    };
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_ingest.json");
    let report = ingest_bench::run_ingest_bench(ctx, context_name, &opts);
    print!("{}", ingest_bench::format_report(&report));
    match ingest_bench::write_report(&report, std::path::Path::new(out)) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("writing {out} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `experiments ingest-bench --articles=N [--shards=M]`: streams an
/// N-article bed straight into sharded services with bounded memory
/// (no in-memory corpus) and reports build time + post-build QPS.
fn run_streaming_ingest_cli(args: &[String]) {
    let articles = args
        .iter()
        .find_map(|a| a.strip_prefix("--articles="))
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 10)
        .unwrap_or_else(|| {
            eprintln!("--articles: expected an integer >= 10");
            std::process::exit(2);
        });
    let shards = args
        .iter()
        .find_map(|a| a.strip_prefix("--shards="))
        .map(|v| match v.trim().parse::<usize>() {
            Ok(s) if s >= 1 => s,
            _ => {
                eprintln!("--shards: expected a positive integer, got '{v}'");
                std::process::exit(2);
            }
        })
        .unwrap_or(4);
    let smoke = args.iter().any(|a| a == "--smoke");
    let opts = if smoke {
        ingest_bench::StreamingIngestOptions::smoke(articles, shards)
    } else {
        ingest_bench::StreamingIngestOptions::new(articles, shards)
    };
    let cfg = synthwiki::TestBedConfig::streaming(articles);
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_ingest.json");
    eprintln!("streaming {articles} articles into {shards} shard(s) per collection...");
    let report = ingest_bench::run_streaming_ingest_bench(&cfg, &opts);
    print!("{}", ingest_bench::format_streaming_report(&report));
    match ingest_bench::write_streaming_report(&report, std::path::Path::new(out)) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("writing {out} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn print_snapshot_info(info: &sqe_store::SnapshotInfo) {
    println!(
        "snapshot v{}: {} bytes, written by {}",
        info.version, info.file_len, info.writer
    );
    println!("collections: {}", info.collections.join(", "));
    for (id, len, crc) in &info.sections {
        println!("  section {id:#06x}: {len:>12} bytes  crc32 {crc:#010x}");
    }
}

/// `experiments snapshot write|verify|info [--file=world.snap]`.
/// `verify` and `info` read the file without building any test bed.
fn run_snapshot_cli(args: &[String], small: bool, verb: Option<&str>) {
    let file = args
        .iter()
        .find_map(|a| a.strip_prefix("--file="))
        .unwrap_or("world.snap");
    let path = std::path::Path::new(file);
    match verb {
        Some("write") => {
            eprintln!(
                "building {} test bed (generation + indexing)...",
                if small { "small" } else { "full" }
            );
            let ctx = if small {
                ExperimentContext::small()
            } else {
                ExperimentContext::full()
            };
            let names: Vec<&str> = ctx.bed.collections.iter().map(|c| c.name.as_str()).collect();
            let segment_slices: Vec<Vec<&searchlite::Index>> =
                ctx.indexes.iter().map(|i| vec![i]).collect();
            let named: Vec<(&str, &[&searchlite::Index])> = names
                .into_iter()
                .zip(segment_slices.iter().map(Vec::as_slice))
                .collect();
            let contents = sqe_store::SnapshotContents {
                graph: &ctx.bed.kb.graph,
                collections: &named,
                dict: ctx.linker.dictionary(),
            };
            match sqe_store::write_snapshot(path, &contents) {
                Ok(bytes) => eprintln!("wrote {file} ({bytes} bytes)"),
                Err(e) => {
                    eprintln!("snapshot write failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(v @ ("verify" | "info")) => {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("reading {file} failed: {e}");
                    std::process::exit(1);
                }
            };
            let result = if v == "verify" {
                sqe_store::Snapshot::verify(&bytes)
            } else {
                sqe_store::Snapshot::info(&bytes)
            };
            match result {
                Ok(info) => {
                    print_snapshot_info(&info);
                    if v == "verify" {
                        eprintln!("{file}: OK (checksums, shapes and audits all pass)");
                    }
                }
                Err(e) => {
                    eprintln!("{file}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            eprintln!("usage: experiments snapshot write|verify|info [--small] [--file=world.snap]");
            std::process::exit(2);
        }
    }
}

/// `experiments store-bench [--smoke] [--out=BENCH_store.json]`: measures
/// the cold-start paths (regenerating internally — no shared context).
fn run_store_bench_cli(args: &[String], small: bool) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let opts = if smoke {
        store_bench::StoreBenchOptions::smoke()
    } else {
        store_bench::StoreBenchOptions::default()
    };
    let cfg = if small {
        synthwiki::TestBedConfig::small()
    } else {
        synthwiki::TestBedConfig::full()
    };
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_store.json");
    let report = store_bench::run_store_bench(&cfg, if small { "small" } else { "full" }, &opts);
    print!("{}", store_bench::format_report(&report));
    match store_bench::write_report(&report, std::path::Path::new(out)) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("writing {out} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // serve-bench --smoke implies the small test bed.
    let small = args.iter().any(|a| a == "--small" || a == "--smoke");
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    // `query <text...>`: everything after the keyword is the query.
    if what.first() == Some(&"query") {
        let text = what[1..].join(" ");
        let ctx = if small {
            ExperimentContext::small()
        } else {
            ExperimentContext::full()
        };
        adhoc_query(&ctx, &text);
        return;
    }
    // `snapshot` and `store-bench` manage their own contexts: verify/info
    // must not pay for a test-bed build, and store-bench times the build.
    if what.first() == Some(&"snapshot") {
        run_snapshot_cli(&args, small, what.get(1).copied());
        return;
    }
    if what.first() == Some(&"store-bench") {
        run_store_bench_cli(&args, small);
        return;
    }
    // `ingest-bench --articles=N` is the streaming sharded build: the
    // corpus never exists in memory, so it must not build a context.
    if what.first() == Some(&"ingest-bench") && args.iter().any(|a| a.starts_with("--articles=")) {
        run_streaming_ingest_cli(&args);
        return;
    }
    let what = if what.is_empty() { vec!["all"] } else { what };

    eprintln!(
        "building {} test bed (generation + indexing)...",
        if small { "small" } else { "full" }
    );
    let start = std::time::Instant::now();
    let ctx = if small {
        ExperimentContext::small()
    } else {
        ExperimentContext::full()
    };
    eprintln!("ready in {:.1}s", start.elapsed().as_secs_f64());

    for w in what {
        match w {
            "stats" => print_stats(&ctx),
            "debug" => debug_top(&ctx, "imageclef", 4),
            "export" => {
                for d in ["imageclef", "chic2012", "chic2013"] {
                    let dir = std::path::PathBuf::from("export").join(d);
                    match sqe_bench::export::export_dataset(&ctx, d, &dir) {
                        Ok(files) => eprintln!("wrote {} files to {}", files.len(), dir.display()),
                        Err(e) => eprintln!("export {d} failed: {e}"),
                    }
                }
            }
            "fig2" => print!("{}", figures::figure2(&ctx)),
            "table1" => print!("{}", tables::table1(&ctx)),
            "fig5" => print!("{}", figures::figure5(&ctx)),
            "table2" => print!("{}", tables::table2_all(&ctx)),
            "fig6" => print!("{}", figures::figure6_all(&ctx)),
            "table3" => print!("{}", tables::table3_all(&ctx)),
            "table4" => print!("{}", timing::table4(&ctx)),
            "serve-bench" => {
                run_serve_bench_cli(&ctx, if small { "small" } else { "full" }, &args)
            }
            "load-bench" => {
                run_load_bench_cli(&ctx, if small { "small" } else { "full" }, &args)
            }
            "motif-search" => {
                run_motif_search_cli(&ctx, if small { "small" } else { "full" }, &args)
            }
            "ingest-bench" => {
                run_ingest_bench_cli(&ctx, if small { "small" } else { "full" }, &args)
            }
            "ablation" => print!("{}", tables::ablation(&ctx)),
            "sensitivity" => {
                print!("{}", tables::sensitivity(&ctx));
                print!("{}", tables::mu_sweep(&ctx));
            }
            "all" => {
                print_stats(&ctx);
                println!();
                print!("{}", figures::figure2(&ctx));
                println!();
                print!("{}", tables::table1(&ctx));
                println!();
                print!("{}", figures::figure5(&ctx));
                println!();
                print!("{}", tables::table2_all(&ctx));
                print!("{}", figures::figure6_all(&ctx));
                print!("{}", tables::table3_all(&ctx));
                print!("{}", timing::table4(&ctx));
                println!();
                print!("{}", tables::ablation(&ctx));
                println!();
                print!("{}", tables::sensitivity(&ctx));
                print!("{}", tables::mu_sweep(&ctx));
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!("usage: experiments [--small] [fig2|table1|fig5|table2|fig6|table3|table4|ablation|sensitivity|stats|export|query <text>|all]");
                eprintln!("       experiments serve-bench [--smoke] [--threads=1,2,8] [--shards=N] [--out=BENCH_serve.json]");
                eprintln!("       experiments load-bench [--smoke] [--rate=R1,R2] [--threads=N] [--shards=N] [--out=BENCH_load.json]");
                eprintln!("       experiments motif-search [--smoke] [--out=BENCH_motif.json]");
                eprintln!("       experiments ingest-bench [--smoke] [--out=BENCH_ingest.json]");
                eprintln!("       experiments ingest-bench --articles=N [--shards=M] [--smoke] [--out=BENCH_ingest.json]");
                eprintln!("       experiments snapshot write|verify|info [--small] [--file=world.snap]");
                eprintln!("       experiments store-bench [--smoke] [--out=BENCH_store.json]");
                std::process::exit(2);
            }
        }
    }
}
