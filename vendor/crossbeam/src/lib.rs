//! Vendored stand-in for the `crossbeam` crate (offline build).
//!
//! Only the `crossbeam::thread::scope` API the workspace uses is provided,
//! implemented on top of `std::thread::scope` (stable since 1.63). The
//! `Result` wrapper mirrors crossbeam's signature: `std::thread::scope`
//! already propagates child panics into the parent, so the `Ok` arm is the
//! only one ever constructed — caller `.expect(..)` calls stay source- and
//! behaviour-compatible.

pub mod thread {
    //! Scoped threads (subset of `crossbeam::thread`).

    /// A scope handle; closures spawned on it may borrow from the caller's
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope (crossbeam
        /// signature) so nested spawns keep working.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned.
    ///
    /// All spawned threads are joined before `scope` returns. A child panic
    /// is re-raised by `std::thread::scope` itself, so unlike crossbeam the
    /// `Err` variant is never observed; it exists for signature parity.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_fill_borrowed_slots() {
            let mut out = vec![0u32; 4];
            super::scope(|s| {
                for (i, slot) in out.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u32 + 1);
                }
            })
            .expect("no panics");
            assert_eq!(out, vec![1, 2, 3, 4]);
        }
    }
}
