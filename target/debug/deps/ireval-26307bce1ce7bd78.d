/root/repo/target/debug/deps/ireval-26307bce1ce7bd78.d: crates/ireval/src/lib.rs crates/ireval/src/precision.rs crates/ireval/src/qrels.rs crates/ireval/src/run.rs crates/ireval/src/stats.rs crates/ireval/src/trec.rs

/root/repo/target/debug/deps/libireval-26307bce1ce7bd78.rlib: crates/ireval/src/lib.rs crates/ireval/src/precision.rs crates/ireval/src/qrels.rs crates/ireval/src/run.rs crates/ireval/src/stats.rs crates/ireval/src/trec.rs

/root/repo/target/debug/deps/libireval-26307bce1ce7bd78.rmeta: crates/ireval/src/lib.rs crates/ireval/src/precision.rs crates/ireval/src/qrels.rs crates/ireval/src/run.rs crates/ireval/src/stats.rs crates/ireval/src/trec.rs

crates/ireval/src/lib.rs:
crates/ireval/src/precision.rs:
crates/ireval/src/qrels.rs:
crates/ireval/src/run.rs:
crates/ireval/src/stats.rs:
crates/ireval/src/trec.rs:
