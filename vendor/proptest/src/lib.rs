//! Vendored stand-in for `proptest` (offline build).
//!
//! Keeps the `proptest!` / `prop_assert*` / `Strategy` surface the
//! workspace's property tests are written against, with deterministic
//! seeded case generation. Unlike real proptest there is **no shrinking**:
//! a failing case reports its generated inputs verbatim. Case count
//! defaults to 64 and honours the `PROPTEST_CASES` environment variable.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The per-test random source handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Uniform integer draw in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound.max(1))
    }

    /// Access to the underlying rand generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

/// A failed property (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Pattern-string strategies: `&str` is a regex-subset generator, like
/// real proptest's `impl Strategy for &str`.
///
/// Supported syntax: literal characters, `.` (printable char), character
/// classes `[a-z0-9_]` (ranges and singles, no negation), and quantifiers
/// `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded forms cap at 8). This
/// covers the patterns used across the workspace's tests; anything else
/// panics loudly rather than generating surprising strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        #[derive(Clone)]
        enum Atom {
            Literal(char),
            Any,
            Class(Vec<(char, char)>),
        }

        fn parse_atoms(pattern: &str) -> Vec<(Atom, usize, usize)> {
            let chars: Vec<char> = pattern.chars().collect();
            let mut atoms = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                let atom = match chars[i] {
                    '.' => {
                        i += 1;
                        Atom::Any
                    }
                    '[' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == ']')
                            .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                            + i;
                        let mut ranges = Vec::new();
                        let mut j = i + 1;
                        while j < close {
                            if j + 2 < close && chars[j + 1] == '-' {
                                ranges.push((chars[j], chars[j + 2]));
                                j += 3;
                            } else {
                                ranges.push((chars[j], chars[j]));
                                j += 1;
                            }
                        }
                        i = close + 1;
                        Atom::Class(ranges)
                    }
                    '\\' => {
                        i += 2;
                        Atom::Literal(chars[i - 1])
                    }
                    c => {
                        i += 1;
                        Atom::Literal(c)
                    }
                };
                // Quantifier, if any.
                let (lo, hi) = match chars.get(i) {
                    Some('?') => {
                        i += 1;
                        (0, 1)
                    }
                    Some('*') => {
                        i += 1;
                        (0, 8)
                    }
                    Some('+') => {
                        i += 1;
                        (1, 8)
                    }
                    Some('{') => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("quantifier lower bound"),
                                hi.trim().parse().expect("quantifier upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("quantifier count");
                                (n, n)
                            }
                        }
                    }
                    _ => (1, 1),
                };
                atoms.push((atom, lo, hi));
            }
            atoms
        }

        const PRINTABLE: &str =
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \t_-.,:;!?'\"()éü√";
        let mut out = String::new();
        for (atom, lo, hi) in parse_atoms(self) {
            let n = if lo == hi {
                lo
            } else {
                rng.rng().gen_range(lo..=hi)
            };
            for _ in 0..n {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Any => {
                        let opts: Vec<char> = PRINTABLE.chars().collect();
                        out.push(opts[rng.below(opts.len())]);
                    }
                    Atom::Class(ranges) => {
                        let (a, b) = ranges[rng.below(ranges.len())];
                        let span = (b as u32) - (a as u32) + 1;
                        let c = char::from_u32(a as u32 + rng.below(span as usize) as u32)
                            .expect("class range stays in valid chars");
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

/// Collection sizes accepted by [`collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng
                .inner
                .gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates shrink the set below
    /// the drawn size, like real proptest permits.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng
                .inner
                .gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly selects one of the given options.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// Output of [`select`].
    #[derive(Clone)]
    pub struct Select<T: Clone + std::fmt::Debug> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestCaseError};

    /// The `prop` namespace alias real proptest's prelude exposes.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Number of cases per property (default 64, `PROPTEST_CASES` overrides).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drives one property: deterministic seeds, no shrinking. `f` returns the
/// debug rendering of the generated inputs plus the property result.
pub fn run_cases<F>(name: &str, f: F)
where
    F: Fn(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    // Stable per-test seed: FNV-1a over the fully qualified test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..cases() {
        let mut rng = TestRng {
            inner: SmallRng::seed_from_u64(seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        match outcome {
            Ok((_, Ok(()))) => {}
            Ok((inputs, Err(e))) => {
                panic!("property `{name}` failed at case {case}: {e}\n  inputs: {inputs}")
            }
            Err(panic) => {
                eprintln!("property `{name}` panicked at case {case} (seed {seed:#x})");
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Declares property tests (vendored subset of proptest's macro).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($pname:ident in $pstrat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        $(let $pname = $crate::Strategy::generate(&$pstrat, rng);)+
                        let inputs = {
                            let mut s = ::std::string::String::new();
                            $(
                                s.push_str(concat!(stringify!($pname), " = "));
                                s.push_str(&format!("{:?}; ", &$pname));
                            )+
                            s
                        };
                        let result: ::std::result::Result<(), $crate::TestCaseError> =
                            (move || {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        (inputs, result)
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Skips the case when its precondition fails. Real proptest re-draws a
/// fresh input; the vendored harness simply passes the case vacuously.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{} (`{:?}` != `{:?}`)",
                        format!($($fmt)*),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                if l == r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 0usize..10, v in prop::collection::vec(0u32..5, 0..20)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn mapping_works(pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (a as u16) + (b as u16)) ) {
            prop_assert!(pair <= 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        for round in 0..2 {
            let out = std::cell::RefCell::new(Vec::new());
            super::run_cases("det", |rng| {
                out.borrow_mut().push(rng.below(1000));
                (String::new(), Ok(()))
            });
            let out = out.into_inner();
            if round == 0 {
                first = out;
            } else {
                assert_eq!(first, out);
            }
        }
    }
}
