//! Structural Query Expansion (SQE) — the paper's core contribution.
//!
//! SQE (Guisado-Gámez, Prat-Pérez, Larriba-Pey, ExploreDB'17) expands a
//! keyword query using only the *structure* of a knowledge-base graph:
//!
//! 1. an offline **structural analysis** of the KB relates ground-truth
//!    optimal query graphs to short mixed cycles (length 3–5) with ≈⅓
//!    category nodes and high extra-edge density ([`analysis`]);
//! 2. those characteristics are materialized as **motifs** — points of
//!    the generalized [`spec::MotifSpec`] space (the paper's triangular
//!    and square are [`spec::MotifSpec::triangular`] and
//!    [`spec::MotifSpec::square`]) — that, anchored at a query node,
//!    enumerate expansion articles ([`motif`], [`spec`]);
//! 3. the **query graph builder** unions motif hits over all query nodes,
//!    counting for every article `a` the number of motifs `|m_a|` it
//!    appears in ([`query_graph`]);
//! 4. the **query builder** emits a weighted three-part structured query:
//!    the user's text, the query-node titles (phrases), and the
//!    expansion-node titles weighted ∝ `|m_a|` ([`expand`]);
//! 5. **SQE_C** stitches the ranked lists of several motif configurations
//!    by rank range (1–5 from T, 6–200 from T&S, 201+ from S)
//!    ([`combine`]);
//! 6. [`pipeline`] wires everything against a concrete index and entity
//!    linker.
//!
//! Beyond the paper's published system, [`pattern`] factors the motif
//! family into a declarative, enumerable space and [`learn`] implements
//! the conclusion's future work: identifying the right motifs
//! automatically from ground-truth query graphs. The [`serve`] module
//! (with [`cache`] and [`metrics`]) wraps the pipeline in a concurrent
//! query service — work-stealing batch execution, LRU expansion caching,
//! live ingestion over a segmented index (documents buffer, seal into
//! immutable segments, and publish atomically), and injected-clock
//! latency metrics — that stays byte-identical to the sequential
//! pipeline regardless of how the corpus is partitioned into segments.

pub mod analysis;
pub mod cache;
pub mod combine;
pub mod expand;
pub mod learn;
pub mod metrics;
pub mod motif;
pub mod pattern;
pub mod pipeline;
pub mod query_graph;
pub mod serve;
pub mod sharded;
pub mod spec;

pub use cache::{CacheKey, ExpansionCache, LruCache};
pub use combine::{combine_rankings, RankSegment};
pub use expand::{ExpandConfig, ExpandedQuery};
pub use learn::{learn_motifs, Example, LearnedMotif, Objective};
pub use metrics::{
    Clock, HistogramSnapshot, IngestHistograms, LadderMetrics, LatencyHistogram, ManualClock,
    MetricsSnapshot, MonotonicClock, NullClock, ServeMetrics, INGEST_STAGE_NAMES, STAGE_NAMES,
};
pub use motif::{Motif, MotifKind};
pub use pattern::{CategoryCondition, LinkCondition, PatternMotif};
pub use pipeline::{SqeConfig, SqePipeline, SqeScratch};
pub use query_graph::{QueryGraph, QueryGraphBuilder, QueryGraphScratch};
pub use serve::{run_indexed, QueryService, ServeConfig, ServeRequest};
pub use sharded::ShardedService;
pub use spec::{
    CategoryScope, MotifFingerprint, MotifLadder, MotifRung, MotifSet, MotifSpec, WeightRule,
};
// The admission subsystem's vocabulary types, re-exported so serving
// callers need only the `sqe` crate.
pub use sqe_admission::{
    select_rung, AdmissionConfig, AdmissionController, Deadline, RungId, ServeOutcome, ShedReason,
    Stage, Ticket,
};
