// Fixture: a persisted-state file (linted as crates/kbgraph/src/graph.rs)
// whose types are missing serde derives.

#[derive(Debug, Clone)]
pub struct SnapshotHeader {
    pub version: u32,
    pub num_articles: u32,
}

#[derive(Debug)]
pub enum SnapshotSection {
    Links,
    Memberships,
}
