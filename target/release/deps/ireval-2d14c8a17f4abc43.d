/root/repo/target/release/deps/ireval-2d14c8a17f4abc43.d: crates/ireval/src/lib.rs crates/ireval/src/precision.rs crates/ireval/src/qrels.rs crates/ireval/src/run.rs crates/ireval/src/stats.rs crates/ireval/src/trec.rs

/root/repo/target/release/deps/libireval-2d14c8a17f4abc43.rlib: crates/ireval/src/lib.rs crates/ireval/src/precision.rs crates/ireval/src/qrels.rs crates/ireval/src/run.rs crates/ireval/src/stats.rs crates/ireval/src/trec.rs

/root/repo/target/release/deps/libireval-2d14c8a17f4abc43.rmeta: crates/ireval/src/lib.rs crates/ireval/src/precision.rs crates/ireval/src/qrels.rs crates/ireval/src/run.rs crates/ireval/src/stats.rs crates/ireval/src/trec.rs

crates/ireval/src/lib.rs:
crates/ireval/src/precision.rs:
crates/ireval/src/qrels.rs:
crates/ireval/src/run.rs:
crates/ireval/src/stats.rs:
crates/ireval/src/trec.rs:
