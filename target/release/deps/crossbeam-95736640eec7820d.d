/root/repo/target/release/deps/crossbeam-95736640eec7820d.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-95736640eec7820d.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-95736640eec7820d.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
