/root/repo/target/debug/deps/kbgraph-9186c607b11ccaa2.d: crates/kbgraph/src/lib.rs crates/kbgraph/src/builder.rs crates/kbgraph/src/csr.rs crates/kbgraph/src/cycles.rs crates/kbgraph/src/dot.rs crates/kbgraph/src/graph.rs crates/kbgraph/src/ids.rs crates/kbgraph/src/paths.rs crates/kbgraph/src/stats.rs

/root/repo/target/debug/deps/kbgraph-9186c607b11ccaa2: crates/kbgraph/src/lib.rs crates/kbgraph/src/builder.rs crates/kbgraph/src/csr.rs crates/kbgraph/src/cycles.rs crates/kbgraph/src/dot.rs crates/kbgraph/src/graph.rs crates/kbgraph/src/ids.rs crates/kbgraph/src/paths.rs crates/kbgraph/src/stats.rs

crates/kbgraph/src/lib.rs:
crates/kbgraph/src/builder.rs:
crates/kbgraph/src/csr.rs:
crates/kbgraph/src/cycles.rs:
crates/kbgraph/src/dot.rs:
crates/kbgraph/src/graph.rs:
crates/kbgraph/src/ids.rs:
crates/kbgraph/src/paths.rs:
crates/kbgraph/src/stats.rs:
