//! Structural invariant auditor for [`Index`] (feature `validate`).
//!
//! Retrieval assumes far more about the index than the type system can
//! express: binary-search `tf`/`positions` lookups need sorted postings,
//! Dirichlet smoothing needs `collection_len`, `coll_tf` and `doc_lens` to
//! agree with the postings they summarize, and relevance-model feedback
//! needs the forward index to mirror the inverted one exactly. An index
//! deserialized from JSON can violate any of these silently — scores come
//! out plausible but wrong. [`IndexAudit`] re-derives every derived
//! statistic from the postings and cross-checks all parallel structures,
//! reporting each mismatch as a typed [`IndexViolation`].

use std::fmt;

use crate::index::Index;

/// One violated index invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexViolation {
    /// A term's posting list is not strictly ascending by document id
    /// (unsorted or duplicated), which breaks binary-search lookups.
    PostingsNotSorted {
        /// The offending term.
        term: u32,
    },
    /// A posting names a document outside the collection.
    DocOutOfBounds {
        /// The term whose postings contain the bad entry.
        term: u32,
        /// The out-of-range document id.
        doc: u32,
        /// Number of documents in the collection.
        num_docs: usize,
    },
    /// `docs`, `tfs` and `pos_offsets` disagree about how many postings
    /// the term has.
    PostingArraysMismatch {
        /// The offending term.
        term: u32,
        /// `docs.len()`.
        docs: usize,
        /// `tfs.len()`.
        tfs: usize,
        /// `pos_offsets.len()` (must be `docs + 1`).
        pos_offsets: usize,
    },
    /// A posting records a zero term frequency (a term cannot occur zero
    /// times in a document it has a posting for).
    ZeroTf {
        /// The offending term.
        term: u32,
        /// The document with the zero count.
        doc: u32,
    },
    /// `pos_offsets` is not monotonic or does not end at `positions.len()`.
    PosOffsetsMalformed {
        /// The offending term.
        term: u32,
    },
    /// The position slice of one posting is unsorted, or its length
    /// disagrees with the recorded term frequency.
    PositionsTfMismatch {
        /// The offending term.
        term: u32,
        /// The offending document.
        doc: u32,
        /// Recorded term frequency.
        tf: u32,
        /// Actual number of recorded positions.
        positions: usize,
    },
    /// A recorded position is at or past the document's length.
    PositionOutOfDoc {
        /// The offending term.
        term: u32,
        /// The offending document.
        doc: u32,
        /// The out-of-range position.
        pos: u32,
        /// The document's stored length.
        doc_len: u32,
    },
    /// The postings table has a different length than the term table
    /// (some terms would have no posting list, or lists no term).
    PostingsLenMismatch {
        /// Number of terms.
        terms: usize,
        /// `postings.len()`.
        postings: usize,
    },
    /// `coll_tf` has a different length than the term table.
    CollTfLenMismatch {
        /// Number of terms.
        terms: usize,
        /// `coll_tf.len()`.
        coll_tf: usize,
    },
    /// A term's stored collection frequency disagrees with the sum of its
    /// posting frequencies.
    CollTfMismatch {
        /// The offending term.
        term: u32,
        /// Stored collection frequency.
        stored: u64,
        /// Frequency derived from the postings.
        derived: u64,
    },
    /// `collection_len` disagrees with the sum of document lengths.
    CollectionLenMismatch {
        /// Stored collection length.
        stored: u64,
        /// Length derived from `doc_lens`.
        derived: u64,
    },
    /// `doc_lens` has a different length than the document table.
    DocLensLenMismatch {
        /// Number of documents.
        docs: usize,
        /// `doc_lens.len()`.
        doc_lens: usize,
    },
    /// A document's stored length disagrees with the sum of its term
    /// frequencies across all postings.
    DocLenMismatch {
        /// The offending document.
        doc: u32,
        /// Stored length.
        stored: u32,
        /// Length derived from the postings.
        derived: u64,
    },
    /// The term dictionary is not a bijection onto the term table
    /// (wrong size, unknown string, or id mismatch).
    DictNotBijective {
        /// Dictionary size.
        dict: usize,
        /// Term table size.
        terms: usize,
    },
    /// Two documents share an external id, breaking the external↔dense
    /// id bijection.
    DuplicateExternalId {
        /// The ambiguous external id.
        external_id: String,
    },
    /// The forward index offsets are malformed (wrong length, not
    /// monotonic, or not ending at the forward array length).
    FwdOffsetsMalformed {
        /// Number of documents.
        docs: usize,
        /// `fwd_offsets.len()`.
        offsets_len: usize,
    },
    /// `fwd_terms` and `fwd_tfs` have different lengths.
    FwdArraysMismatch {
        /// `fwd_terms.len()`.
        fwd_terms: usize,
        /// `fwd_tfs.len()`.
        fwd_tfs: usize,
    },
    /// A forward-index entry names a term outside the term table.
    FwdTermOutOfBounds {
        /// The document whose forward list is bad.
        doc: u32,
        /// The out-of-range term id.
        term: u32,
        /// Number of terms.
        num_terms: usize,
    },
    /// A forward-index frequency disagrees with the inverted index.
    FwdTfMismatch {
        /// The offending document.
        doc: u32,
        /// The offending term.
        term: u32,
        /// Frequency recorded in the forward index.
        forward: u32,
        /// Frequency recorded in the inverted postings.
        inverted: u32,
    },
}

impl fmt::Display for IndexViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexViolation::PostingsNotSorted { term } => {
                write!(f, "term {term}: postings not sorted+deduplicated")
            }
            IndexViolation::DocOutOfBounds {
                term,
                doc,
                num_docs,
            } => write!(
                f,
                "term {term}: posting names doc {doc} outside collection of {num_docs}"
            ),
            IndexViolation::PostingArraysMismatch {
                term,
                docs,
                tfs,
                pos_offsets,
            } => write!(
                f,
                "term {term}: parallel postings arrays disagree \
                 (docs={docs}, tfs={tfs}, pos_offsets={pos_offsets})"
            ),
            IndexViolation::ZeroTf { term, doc } => write!(f, "term {term}: zero tf recorded for doc {doc}"),
            IndexViolation::PosOffsetsMalformed { term } => {
                write!(f, "term {term}: pos_offsets not monotonic over positions")
            }
            IndexViolation::PositionsTfMismatch {
                term,
                doc,
                tf,
                positions,
            } => write!(
                f,
                "term {term} doc {doc}: tf {tf} but {positions} positions recorded"
            ),
            IndexViolation::PositionOutOfDoc {
                term,
                doc,
                pos,
                doc_len,
            } => write!(
                f,
                "term {term} doc {doc}: position {pos} >= doc length {doc_len}"
            ),
            IndexViolation::PostingsLenMismatch { terms, postings } => {
                write!(f, "postings table has {postings} entries for {terms} terms")
            }
            IndexViolation::CollTfLenMismatch { terms, coll_tf } => {
                write!(f, "coll_tf has {coll_tf} entries for {terms} terms")
            }
            IndexViolation::CollTfMismatch {
                term,
                stored,
                derived,
            } => write!(
                f,
                "term {term}: stored collection tf {stored} != derived {derived}"
            ),
            IndexViolation::CollectionLenMismatch { stored, derived } => write!(
                f,
                "collection_len {stored} != sum of doc lengths {derived}"
            ),
            IndexViolation::DocLensLenMismatch { docs, doc_lens } => {
                write!(f, "doc_lens has {doc_lens} entries for {docs} docs")
            }
            IndexViolation::DocLenMismatch {
                doc,
                stored,
                derived,
            } => write!(f, "doc {doc}: stored length {stored} != derived {derived}"),
            IndexViolation::DictNotBijective { dict, terms } => write!(
                f,
                "term dictionary ({dict} entries) is not a bijection onto {terms} terms"
            ),
            IndexViolation::DuplicateExternalId { external_id } => {
                write!(f, "external id {external_id:?} maps to multiple documents")
            }
            IndexViolation::FwdOffsetsMalformed { docs, offsets_len } => write!(
                f,
                "fwd_offsets malformed: {offsets_len} entries for {docs} docs"
            ),
            IndexViolation::FwdArraysMismatch { fwd_terms, fwd_tfs } => write!(
                f,
                "forward index arrays disagree (terms={fwd_terms}, tfs={fwd_tfs})"
            ),
            IndexViolation::FwdTermOutOfBounds {
                doc,
                term,
                num_terms,
            } => write!(
                f,
                "doc {doc}: forward entry names term {term} outside table of {num_terms}"
            ),
            IndexViolation::FwdTfMismatch {
                doc,
                term,
                forward,
                inverted,
            } => write!(
                f,
                "doc {doc} term {term}: forward tf {forward} != inverted tf {inverted}"
            ),
        }
    }
}

/// The result of auditing one [`Index`].
#[derive(Debug, Clone)]
pub struct IndexAudit {
    violations: Vec<IndexViolation>,
}

impl IndexAudit {
    /// Audits every structural invariant of `index`.
    pub fn run(index: &Index) -> Self {
        IndexAudit {
            violations: index.audit_violations(),
        }
    }

    /// All violations found (empty means the index is sound).
    pub fn violations(&self) -> &[IndexViolation] {
        &self.violations
    }

    /// True when no invariant is violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a full report if any invariant is violated. `context`
    /// names the call site.
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "index audit failed at {context}:\n{}",
            self.report()
        );
    }

    /// Human-readable multi-line report, one violation per line.
    pub fn report(&self) -> String {
        self.violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}
