//! Entity-linking integration: the Dexter/Alchemy-style linker over the
//! synthetic KB's titles and aliases.

use entitylink::{Dictionary, EntityLinker, LinkerConfig, NoiseModel};
use synthwiki::{TestBed, TestBedConfig};

fn build() -> (TestBed, EntityLinker) {
    let bed = TestBed::generate(&TestBedConfig::small());
    let mut dict = Dictionary::new();
    dict.extend(bed.kb.linker_entries(&bed.space));
    let linker = EntityLinker::new(dict, LinkerConfig::default());
    (bed, linker)
}

#[test]
fn linker_reaches_paper_grade_precision() {
    let (bed, linker) = build();
    let mut hits = 0usize;
    let mut total = 0usize;
    for ds in &bed.datasets {
        for q in &ds.queries {
            total += 1;
            let links = linker.link(&q.text);
            let targets: Vec<_> = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
            if links.iter().any(|l| targets.contains(&l.article)) {
                hits += 1;
            }
        }
    }
    let precision = hits as f64 / total as f64;
    // The paper reports >80% for Dexter+Alchemy; the synthetic aliases are
    // calibrated to the same band (allowing slack on the small preset).
    assert!(
        precision > 0.65,
        "linking precision {precision:.2} below calibration band"
    );
}

#[test]
fn linking_failures_come_from_alias_ambiguity() {
    let (bed, linker) = build();
    for ds in &bed.datasets {
        for q in &ds.queries {
            let links = linker.link(&q.text);
            let targets: Vec<_> = q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
            if links.is_empty() {
                continue;
            }
            if !links.iter().any(|l| targets.contains(&l.article)) {
                // A mislink must be explainable: the linked article shares
                // a surface form (alias or title word) with some target.
                let target_surfaces: Vec<String> = q
                    .targets
                    .iter()
                    .flat_map(|&e| {
                        let ent = &bed.space.entities[e];
                        let mut s = ent.title_words.clone();
                        if let Some(a) = &ent.alias {
                            s.push(a.clone());
                        }
                        s
                    })
                    .collect();
                let explained = links.iter().any(|l| {
                    target_surfaces.iter().any(|w| l.surface.contains(w.as_str()))
                        || q.text.contains(&l.surface)
                });
                assert!(explained, "unexplainable mislink for {}", q.id);
            }
        }
    }
}

#[test]
fn dictionary_covers_every_entity_title() {
    let (bed, linker) = build();
    for e in bed.space.entities.iter().step_by(37) {
        let key = linker.dictionary().normalize(&e.title());
        let senses = linker.dictionary().lookup(&key);
        assert!(senses.is_some(), "title '{}' missing", e.title());
        let article = bed.kb.article_of[e.id];
        assert!(
            senses.unwrap().iter().any(|s| s.article == article),
            "title '{}' does not resolve to its own article",
            e.title()
        );
    }
}

#[test]
fn noise_channel_monotonically_degrades_precision() {
    let bed = TestBed::generate(&TestBedConfig::small());
    let measure = |noise: NoiseModel| -> f64 {
        let mut dict = Dictionary::new();
        dict.extend(bed.kb.linker_entries(&bed.space));
        let linker = EntityLinker::new(
            dict,
            LinkerConfig {
                noise,
                ..LinkerConfig::default()
            },
        );
        let ds = bed.dataset("imageclef");
        let hits = ds
            .queries
            .iter()
            .filter(|q| {
                let links = linker.link(&q.text);
                let targets: Vec<_> =
                    q.targets.iter().map(|&e| bed.kb.article_of[e]).collect();
                links.iter().any(|l| targets.contains(&l.article))
            })
            .count();
        hits as f64 / ds.queries.len() as f64
    };
    let clean = measure(NoiseModel::none());
    let noisy = measure(NoiseModel {
        p_miss: 0.5,
        p_mislink: 0.5,
    });
    let broken = measure(NoiseModel {
        p_miss: 1.0,
        p_mislink: 0.0,
    });
    assert!(clean >= noisy, "noise must not improve precision");
    assert_eq!(broken, 0.0, "full miss rate links nothing");
}
