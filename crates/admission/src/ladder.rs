//! The degraded-mode ladder selection rule.

/// Pick the highest-quality ladder rung whose estimated cost fits the
/// remaining deadline budget.
///
/// * `remaining` — nanoseconds of budget left (`None` = unbounded, which
///   always selects rung 0, the full-quality rung).
/// * `costs` — per-rung cost estimates in nanoseconds, ordered from most
///   to least expensive, one entry per rung of the service's motif
///   ladder (the service maintains these from its latency histograms; an
///   unobserved rung estimates 0, which makes the selector optimistic
///   until real costs arrive — the deadline checks at stage boundaries
///   backstop that optimism).
///
/// Returns the selected rung index, or `None` when even the cheapest
/// rung does not fit — the caller sheds with `BudgetExhausted` rather
/// than starting doomed work.
pub fn select_rung(remaining: Option<u64>, costs: &[u64]) -> Option<usize> {
    let Some(budget) = remaining else {
        return Some(0);
    };
    costs.iter().position(|&cost| cost <= budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COSTS: [u64; 3] = [10_000, 4_000, 1_000];

    #[test]
    fn unbounded_budget_selects_full() {
        assert_eq!(select_rung(None, &COSTS), Some(0));
    }

    #[test]
    fn budget_walks_the_ladder_downward() {
        assert_eq!(select_rung(Some(20_000), &COSTS), Some(0));
        assert_eq!(select_rung(Some(10_000), &COSTS), Some(0));
        assert_eq!(select_rung(Some(9_999), &COSTS), Some(1));
        assert_eq!(select_rung(Some(4_000), &COSTS), Some(1));
        assert_eq!(select_rung(Some(3_999), &COSTS), Some(2));
        assert_eq!(select_rung(Some(1_000), &COSTS), Some(2));
        assert_eq!(select_rung(Some(999), &COSTS), None);
        assert_eq!(select_rung(Some(0), &COSTS), None);
    }

    #[test]
    fn unobserved_costs_are_optimistic() {
        // No observations yet: every rung estimates 0, so even a tiny
        // budget tries rung 0. Stage-boundary deadline checks backstop it.
        assert_eq!(select_rung(Some(1), &[0, 0, 0]), Some(0));
    }

    #[test]
    fn ladders_of_any_length_work() {
        assert_eq!(select_rung(Some(50), &[100, 80, 60, 40, 20]), Some(3));
        assert_eq!(select_rung(Some(5), &[10]), None);
        assert_eq!(select_rung(Some(5), &[]), None, "no rungs, nothing fits");
    }
}
