//! Property-based corruption tests for the structural auditor: every
//! mutation class applied to a valid graph must be flagged by
//! `GraphAudit`, and untouched graphs must audit clean.

#![cfg(feature = "validate")]

use kbgraph::audit::{CsrKind, GraphAudit, GraphViolation};
use kbgraph::{ArticleId, CategoryId, Csr, GraphBuilder, KbGraph};
use proptest::prelude::*;

fn arb_graph(
    arts: u32,
    cats: u32,
) -> impl Strategy<Value = (Vec<(u32, u32)>, Vec<(u32, u32)>, Vec<(u32, u32)>)> {
    (
        prop::collection::vec((0..arts, 0..arts), 0..60),
        prop::collection::vec((0..arts, 0..cats), 0..30),
        prop::collection::vec((0..cats, 0..cats), 0..20),
    )
}

/// Builds a consistent graph; category edges only go child → parent with
/// `child < parent` so the hierarchy is a DAG by construction.
fn build(
    arts: u32,
    cats: u32,
    links: &[(u32, u32)],
    memberships: &[(u32, u32)],
    subcats: &[(u32, u32)],
) -> KbGraph {
    let mut b = GraphBuilder::new();
    let a: Vec<ArticleId> = (0..arts).map(|i| b.add_article(&format!("a{i}"))).collect();
    let c: Vec<CategoryId> = (0..cats).map(|i| b.add_category(&format!("c{i}"))).collect();
    for &(s, d) in links {
        if s != d {
            b.add_article_link(a[s as usize], a[d as usize]);
        }
    }
    for &(art, cat) in memberships {
        b.add_membership(a[art as usize], c[cat as usize]);
    }
    for &(x, y) in subcats {
        if x < y {
            b.add_subcategory(c[x as usize], c[y as usize]);
        }
    }
    b.build()
}

/// Reassembles a graph with one adjacency substituted (index into the
/// order used by `KbGraph::from_parts`).
fn with_part(g: &KbGraph, slot: usize, part: Csr) -> KbGraph {
    let mut parts = [
        g.article_links().clone(),
        g.article_links_rev().clone(),
        g.memberships().clone(),
        g.members().clone(),
        g.subcategories().clone(),
        g.subcats_rev().clone(),
    ];
    parts[slot] = part;
    let [al, alr, mem, mbr, sc, scr] = parts;
    let article_titles = (0..g.num_articles() as u32)
        .map(|i| g.article_title(ArticleId::new(i)).to_owned())
        .collect();
    let category_titles = (0..g.num_categories() as u32)
        .map(|i| g.category_title(CategoryId::new(i)).to_owned())
        .collect();
    KbGraph::from_parts(article_titles, category_titles, al, alr, mem, mbr, sc, scr)
}

const ARTS: u32 = 12;
const CATS: u32 = 6;

proptest! {
    /// Anything the builder produces must audit clean.
    #[test]
    fn built_graphs_audit_clean(parts in arb_graph(ARTS, CATS)) {
        let (links, memberships, subcats) = parts;
        let g = build(ARTS, CATS, &links, &memberships, &subcats);
        let audit = GraphAudit::run(&g);
        prop_assert!(audit.is_clean(), "{}", audit.report());
    }

    /// Swapping two distinct offsets breaks monotonicity and is flagged.
    #[test]
    fn swapped_offsets_flagged(parts in arb_graph(ARTS, CATS)) {
        let (links, memberships, subcats) = parts;
        let g = build(ARTS, CATS, &links, &memberships, &subcats);
        let al = g.article_links();
        let mut offsets = al.offsets().to_vec();
        // Find adjacent unequal offsets (a non-empty row) to swap.
        let Some(row) = (0..offsets.len() - 1).find(|&i| offsets[i] != offsets[i + 1]) else {
            return Ok(()); // no edges at all: mutation not applicable
        };
        offsets.swap(row, row + 1);
        let bad = with_part(&g, 0, Csr::from_raw_parts(offsets, al.targets().to_vec()));
        let audit = GraphAudit::run(&bad);
        // Swapping at index 0 dethrones the leading 0 and reports as a
        // shape violation instead of lost monotonicity.
        prop_assert!(audit.violations().iter().any(|v| matches!(
            v,
            GraphViolation::OffsetsNotMonotonic { csr: CsrKind::ArticleLinks, .. }
                | GraphViolation::OffsetsShape { csr: CsrKind::ArticleLinks, .. }
        )), "{}", audit.report());
    }

    /// Rewriting a target out of the id space is flagged.
    #[test]
    fn out_of_bounds_target_flagged(parts in arb_graph(ARTS, CATS), which in 0..2usize) {
        let (links, memberships, subcats) = parts;
        let g = build(ARTS, CATS, &links, &memberships, &subcats);
        let (slot, kind, csr) = if which == 0 {
            (0, CsrKind::ArticleLinks, g.article_links())
        } else {
            (2, CsrKind::Memberships, g.memberships())
        };
        if csr.num_edges() == 0 {
            return Ok(());
        }
        let mut targets = csr.targets().to_vec();
        targets[0] = u32::MAX;
        let bad = with_part(&g, slot, Csr::from_raw_parts(csr.offsets().to_vec(), targets));
        let audit = GraphAudit::run(&bad);
        prop_assert!(audit.violations().iter().any(
            |v| matches!(v, GraphViolation::TargetOutOfBounds { csr: k, .. } if *k == kind)
        ), "{}", audit.report());
    }

    /// Dropping one edge from a reverse adjacency breaks reciprocity.
    #[test]
    fn dropped_reciprocal_edge_flagged(parts in arb_graph(ARTS, CATS), pick in 0..1000usize) {
        let (links, memberships, subcats) = parts;
        let g = build(ARTS, CATS, &links, &memberships, &subcats);
        let rev = g.article_links_rev();
        if rev.num_edges() == 0 {
            return Ok(());
        }
        let mut edges: Vec<(u32, u32)> = rev.iter_edges().collect();
        edges.remove(pick % edges.len());
        let bad = with_part(&g, 1, Csr::from_edges(g.num_articles(), &edges));
        let audit = GraphAudit::run(&bad);
        prop_assert!(audit.violations().iter().any(|v| matches!(
            v,
            GraphViolation::MissingReciprocal { forward: CsrKind::ArticleLinks, .. }
        )), "{}", audit.report());
    }

    /// Closing a loop in the child→parent hierarchy is flagged as a cycle.
    #[test]
    fn category_cycle_flagged(parts in arb_graph(ARTS, CATS), a in 0..CATS, b in 0..CATS) {
        let (links, memberships, subcats) = parts;
        prop_assume!(a != b);
        let g = build(ARTS, CATS, &links, &memberships, &subcats);
        let mut edges: Vec<(u32, u32)> = g.subcategories().iter_edges().collect();
        edges.push((a, b));
        edges.push((b, a));
        let sc = Csr::from_edges(CATS as usize, &edges);
        let scr = sc.reversed(CATS as usize);
        let bad = with_part(&with_part(&g, 4, sc), 5, scr);
        let audit = GraphAudit::run(&bad);
        prop_assert!(audit.violations().iter().any(
            |v| matches!(v, GraphViolation::CategoryCycle { .. })
        ), "{}", audit.report());
    }

    /// De-sorting a row breaks the binary-search invariant and is flagged.
    #[test]
    fn unsorted_row_flagged(parts in arb_graph(ARTS, CATS)) {
        let (links, memberships, subcats) = parts;
        let g = build(ARTS, CATS, &links, &memberships, &subcats);
        let al = g.article_links();
        let Some(row) = (0..al.num_rows() as u32).find(|&r| al.degree(r) >= 2) else {
            return Ok(()); // needs a row with two targets to swap
        };
        let mut targets = al.targets().to_vec();
        let lo = al.offsets()[row as usize] as usize;
        targets.swap(lo, lo + 1);
        let bad = with_part(&g, 0, Csr::from_raw_parts(al.offsets().to_vec(), targets));
        let audit = GraphAudit::run(&bad);
        prop_assert!(audit.violations().iter().any(|v| matches!(
            v,
            GraphViolation::RowNotStrictlySorted { csr: CsrKind::ArticleLinks, src } if *src == row
        )), "{}", audit.report());
    }

    /// Truncating the target array desynchronizes it from the offsets.
    #[test]
    fn truncated_targets_flagged(parts in arb_graph(ARTS, CATS)) {
        let (links, memberships, subcats) = parts;
        let g = build(ARTS, CATS, &links, &memberships, &subcats);
        let mem = g.memberships();
        if mem.num_edges() == 0 {
            return Ok(());
        }
        let mut targets = mem.targets().to_vec();
        targets.pop();
        let bad = with_part(&g, 2, Csr::from_raw_parts(mem.offsets().to_vec(), targets));
        let audit = GraphAudit::run(&bad);
        prop_assert!(audit.violations().iter().any(|v| matches!(
            v,
            GraphViolation::OffsetsEndMismatch { csr: CsrKind::Memberships, .. }
        )), "{}", audit.report());
    }
}
