// Fixture: lock guards escaping their acquiring function — returned
// under a type name that hides the guard, and stashed into a field.
// Either way the critical section outlives the function and nothing in
// the signature says so.

pub fn leak(&self) -> StateHold {
    let g = self.state.lock();
    g
}

pub fn stash(&mut self) {
    let g = self.state.lock();
    self.held = g;
}
