//! Entity-linker substrate (Dexter/Alchemy-like).
//!
//! Section 3 of the paper links query text to Wikipedia articles with
//! Dexter (dictionary-based entity linking) and falls back to
//! Alchemy-style entity *recognition* when Dexter finds nothing, reaching
//! "more than 80% precision in identifying and linking the entities".
//!
//! This crate reproduces that architecture:
//!
//! * [`Dictionary`] — surface form → candidate senses with commonness
//!   priors (the article most often meant by that surface form wins);
//! * [`spotter`] — greedy longest-match n-gram mention
//!   detection over analyzed query tokens (the Dexter stage);
//! * a *fallback* containment index — when no dictionary surface matches,
//!   single tokens are matched against article titles containing them
//!   (the Alchemy stage);
//! * [`noise`] — an optional error channel (miss / mislink probabilities)
//!   for studying linking-quality sensitivity, on top of the *intrinsic*
//!   ambiguity already created by colliding aliases;
//! * [`corpus`] — corpus annotation and anchor-statistics commonness
//!   re-estimation (how Dexter actually obtains its prior).
//!
//! # Example
//!
//! ```
//! use entitylink::{Dictionary, EntityLinker, LinkerConfig};
//! use kbgraph::ArticleId;
//!
//! let mut dict = Dictionary::new();
//! dict.add("cable car", ArticleId::new(0), 1.0);
//! dict.add("tram", ArticleId::new(1), 0.9);
//! let linker = EntityLinker::new(dict, LinkerConfig::default());
//! let links = linker.link("historic cable car photos");
//! assert_eq!(links[0].article, ArticleId::new(0));
//! ```

pub mod corpus;
pub mod dictionary;
pub mod linker;
pub mod noise;
pub mod spotter;

pub use corpus::{annotate_corpus, AnchorStats};
pub use dictionary::{Dictionary, Sense};
pub use linker::{EntityLinker, LinkedEntity, LinkerConfig};
pub use noise::{perturb_query, NoiseModel, NoiseRng, PerturbationModel};
