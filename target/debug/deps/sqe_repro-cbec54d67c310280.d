/root/repo/target/debug/deps/sqe_repro-cbec54d67c310280.d: src/lib.rs

/root/repo/target/debug/deps/libsqe_repro-cbec54d67c310280.rlib: src/lib.rs

/root/repo/target/debug/deps/libsqe_repro-cbec54d67c310280.rmeta: src/lib.rs

src/lib.rs:
