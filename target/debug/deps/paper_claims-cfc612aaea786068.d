/root/repo/target/debug/deps/paper_claims-cfc612aaea786068.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-cfc612aaea786068: tests/paper_claims.rs

tests/paper_claims.rs:
