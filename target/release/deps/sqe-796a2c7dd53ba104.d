/root/repo/target/release/deps/sqe-796a2c7dd53ba104.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/combine.rs crates/core/src/expand.rs crates/core/src/learn.rs crates/core/src/motif.rs crates/core/src/pattern.rs crates/core/src/pipeline.rs crates/core/src/query_graph.rs

/root/repo/target/release/deps/libsqe-796a2c7dd53ba104.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/combine.rs crates/core/src/expand.rs crates/core/src/learn.rs crates/core/src/motif.rs crates/core/src/pattern.rs crates/core/src/pipeline.rs crates/core/src/query_graph.rs

/root/repo/target/release/deps/libsqe-796a2c7dd53ba104.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/combine.rs crates/core/src/expand.rs crates/core/src/learn.rs crates/core/src/motif.rs crates/core/src/pattern.rs crates/core/src/pipeline.rs crates/core/src/query_graph.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/combine.rs:
crates/core/src/expand.rs:
crates/core/src/learn.rs:
crates/core/src/motif.rs:
crates/core/src/pattern.rs:
crates/core/src/pipeline.rs:
crates/core/src/query_graph.rs:
