//! Deterministic pseudo-word generation.
//!
//! The synthetic corpus needs a large vocabulary of distinct, pronounceable
//! word-like tokens whose surface forms never collide accidentally. Words
//! are built from consonant/vowel syllables indexed by a counter, so word
//! `i` is always the same string regardless of platform or rand version.

/// Consonant onsets used for syllable construction.
const ONSETS: [&str; 16] = [
    "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "st",
];
/// Vowel nuclei.
const NUCLEI: [&str; 8] = ["a", "e", "i", "o", "u", "ai", "ou", "ea"];
/// Optional codas appended to the final syllable.
const CODAS: [&str; 8] = ["", "n", "r", "s", "l", "x", "k", "m"];

/// Returns pseudo-word number `i`. Distinct `i` always yield distinct
/// words: the syllable digits encode `i` in mixed radix.
pub fn word(i: u64) -> String {
    let mut n = i;
    let mut w = String::with_capacity(12);
    // Two or three syllables depending on magnitude, plus a coda; the
    // mixed-radix digits of `i` pick each piece, so the mapping is a
    // bijection onto strings of this shape.
    let onset1 = ONSETS[(n % 16) as usize];
    n /= 16;
    let nuc1 = NUCLEI[(n % 8) as usize];
    n /= 8;
    let onset2 = ONSETS[(n % 16) as usize];
    n /= 16;
    let nuc2 = NUCLEI[(n % 8) as usize];
    n /= 8;
    let coda = CODAS[(n % 8) as usize];
    n /= 8;
    w.push_str(onset1);
    w.push_str(nuc1);
    w.push_str(onset2);
    w.push_str(nuc2);
    while n > 0 {
        // Extra syllables for very large indices.
        w.push_str(ONSETS[(n % 16) as usize]);
        n /= 16;
        w.push_str(NUCLEI[(n % 8) as usize]);
        n /= 8;
    }
    w.push_str(coda);
    w
}

/// A named, non-overlapping region of the global word space. Each pool
/// hands out words from its own offset so that vocabularies of different
/// levels (domain words, topic words, titles, noise) never collide unless
/// the generator *wants* them to.
#[derive(Debug, Clone, Copy)]
pub struct WordPool {
    offset: u64,
    len: u64,
}

impl WordPool {
    /// Creates a pool of `len` words starting at global index `offset`.
    pub fn new(offset: u64, len: u64) -> Self {
        assert!(len > 0, "empty word pool");
        WordPool { offset, len }
    }

    /// The `i`-th word of the pool (wraps modulo the pool size).
    pub fn get(&self, i: u64) -> String {
        word(self.offset + (i % self.len))
    }

    /// Number of distinct words in the pool.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Pools are never empty (asserted at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exclusive end offset, for carving consecutive pools.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_deterministic() {
        assert_eq!(word(42), word(42));
        assert_eq!(word(0), word(0));
    }

    #[test]
    fn words_are_distinct_over_wide_range() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(word(i)), "collision at {i}: {}", word(i));
        }
    }

    #[test]
    fn words_are_lowercase_alpha() {
        for i in (0..50_000u64).step_by(997) {
            let w = word(i);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 4, "{w}");
        }
    }

    #[test]
    fn pool_indexing_wraps() {
        let p = WordPool::new(100, 10);
        assert_eq!(p.get(3), p.get(13));
        assert_eq!(p.len(), 10);
        assert_eq!(p.end(), 110);
    }

    #[test]
    fn disjoint_pools_do_not_share_words() {
        let a = WordPool::new(0, 50);
        let b = WordPool::new(a.end(), 50);
        let wa: HashSet<String> = (0..50).map(|i| a.get(i)).collect();
        let wb: HashSet<String> = (0..50).map(|i| b.get(i)).collect();
        assert!(wa.is_disjoint(&wb));
    }

    #[test]
    #[should_panic(expected = "empty word pool")]
    fn empty_pool_rejected() {
        let _ = WordPool::new(0, 0);
    }
}
