//! The learning extension must recover the paper's hand-crafted motifs
//! from the planted ground truth.

use sqe::{learn_motifs, CategoryCondition, Example, LinkCondition, Objective};
use synthwiki::{GroundTruth, TestBed, TestBedConfig};

fn examples() -> (TestBed, Vec<Example>) {
    let bed = TestBed::generate(&TestBedConfig::small());
    let dataset = bed.dataset("imageclef");
    let gt = GroundTruth::derive(&bed.kb, &bed.space, &dataset.queries);
    let examples = dataset
        .queries
        .iter()
        .map(|q| {
            let g = gt.graph(&q.id).expect("covered");
            Example {
                query_nodes: g.query_nodes.clone(),
                optimal: g.expansion_nodes.clone(),
            }
        })
        .collect();
    (bed, examples)
}

#[test]
fn precision_objective_recovers_triangular_condition() {
    let (bed, examples) = examples();
    let ranked = learn_motifs(&bed.kb.graph, &examples, Objective::Precision);
    let best = &ranked[0];
    assert_eq!(
        best.pattern.category,
        CategoryCondition::Superset,
        "the triangular category condition must top the precision ranking: got {}",
        best.pattern.name()
    );
    assert!(best.precision > 0.9, "precision {}", best.precision);
    assert!(
        best.avg_expansions < 5.0,
        "triangular-like patterns are feature-scarce: {}",
        best.avg_expansions
    );
}

#[test]
fn balanced_objective_recovers_square_like_condition() {
    let (bed, examples) = examples();
    let ranked = learn_motifs(&bed.kb.graph, &examples, Objective::F1);
    let best = &ranked[0];
    assert!(
        matches!(
            best.pattern.category,
            CategoryCondition::Adjacent | CategoryCondition::SharedAny
        ),
        "a square-like category condition must top F1: got {}",
        best.pattern.name()
    );
    assert!(best.recall > ranked.iter()
        .find(|m| m.pattern.category == CategoryCondition::Superset)
        .unwrap()
        .recall, "square-like patterns out-recall triangular ones");
}

#[test]
fn category_free_patterns_never_win_on_precision() {
    let (bed, examples) = examples();
    let ranked = learn_motifs(&bed.kb.graph, &examples, Objective::Precision);
    let best_free = ranked
        .iter()
        .position(|m| m.pattern.category == CategoryCondition::Unconstrained)
        .unwrap();
    assert!(
        best_free >= 6,
        "link-only motifs must rank in the bottom half: position {best_free}"
    );
}

#[test]
fn mutual_links_beat_one_way_links_on_precision() {
    let (bed, examples) = examples();
    let ranked = learn_motifs(&bed.kb.graph, &examples, Objective::F1);
    let prec = |link: LinkCondition, cat: CategoryCondition| -> f64 {
        ranked
            .iter()
            .find(|m| m.pattern.link == link && m.pattern.category == cat)
            .unwrap()
            .precision
    };
    // With the category condition fixed to unconstrained, requiring
    // reciprocity filters noise links: the paper's "doubly linked".
    assert!(
        prec(LinkCondition::Mutual, CategoryCondition::Unconstrained)
            >= prec(LinkCondition::OutLink, CategoryCondition::Unconstrained),
        "reciprocity must not hurt precision"
    );
}
