//! Materializes the concept space as a knowledge-base graph.
//!
//! * every entity becomes an article titled with its title words;
//! * every subtopic, topic and domain becomes a category; subtopic
//!   categories are sub-categories of their topic, topics of their domain;
//! * mutual relations become reciprocal hyperlink pairs, the backbone the
//!   triangular and square motifs traverse;
//! * noise articles and one-directional noise links blur the structure the
//!   way real Wikipedia does (list pages, navigational links, hubs).

use kbgraph::{ArticleId, CategoryId, GraphBuilder, KbGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::concepts::ConceptSpace;
use crate::config::KbConfig;

/// The generated KB: the graph plus the entity ↔ article correspondence.
#[derive(Debug)]
pub struct SynthKb {
    /// The knowledge-base graph.
    pub graph: KbGraph,
    /// `article_of[entity] = ArticleId` for every concept-space entity.
    pub article_of: Vec<ArticleId>,
    /// Reverse map: article index → entity index (None for noise
    /// articles).
    pub entity_of: Vec<Option<usize>>,
    /// Subtopic categories, indexed by global subtopic id.
    pub subtopic_cat: Vec<CategoryId>,
    /// Topic categories, indexed by global topic id.
    pub topic_cat: Vec<CategoryId>,
    /// Domain categories.
    pub domain_cat: Vec<CategoryId>,
}

impl SynthKb {
    /// Builds the graph from a concept space.
    pub fn build(space: &ConceptSpace, cfg: &KbConfig) -> SynthKb {
        let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut b = GraphBuilder::with_capacity(
            space.entities.len() + cfg.noise_articles,
            space.subtopics.len() + space.topics.len() + space.domains.len(),
            space.entities.len() * 16,
        );

        // Articles for entities.
        let article_of: Vec<ArticleId> = space
            .entities
            .iter()
            .map(|e| b.add_article(&e.title()))
            .collect();

        // Category hierarchy.
        let domain_cat: Vec<CategoryId> = space
            .domains
            .iter()
            .map(|d| b.add_category(&format!("domain {}", d.name)))
            .collect();
        let topic_cat: Vec<CategoryId> = space
            .topics
            .iter()
            .map(|t| b.add_category(&format!("topic {}", t.name)))
            .collect();
        let subtopic_cat: Vec<CategoryId> = space
            .subtopics
            .iter()
            .map(|s| b.add_category(&format!("subtopic {}", s.name)))
            .collect();
        for (t, topic) in space.topics.iter().enumerate() {
            b.add_subcategory(topic_cat[t], domain_cat[topic.domain]);
            for s in topic.subtopic_range.clone() {
                b.add_subcategory(subtopic_cat[s], topic_cat[t]);
            }
        }

        // Memberships.
        for e in &space.entities {
            let a = article_of[e.id];
            b.add_membership(a, subtopic_cat[e.subtopic]);
            if e.in_topic_cat {
                b.add_membership(a, topic_cat[e.topic]);
            }
            if e.in_domain_cat {
                b.add_membership(a, domain_cat[e.domain]);
            }
        }

        // Semantic links.
        for e in &space.entities {
            let a = article_of[e.id];
            for r in &e.relations {
                let o = article_of[r.other];
                if r.mutual {
                    b.add_mutual_link(a, o);
                } else {
                    b.add_article_link(a, o);
                }
            }
            // One-directional noise links to arbitrary entities.
            for _ in 0..cfg.noise_links_per_entity {
                let target = rng.gen_range(0..space.entities.len());
                if target != e.id {
                    b.add_article_link(a, article_of[target]);
                    if rng.gen_bool(cfg.p_noise_reciprocal) {
                        b.add_article_link(article_of[target], a);
                    }
                }
            }
        }

        // Noise articles: list pages, hubs — random titles, random cats,
        // mostly one-way links.
        let mut entity_of: Vec<Option<usize>> = (0..space.entities.len()).map(Some).collect();
        for n in 0..cfg.noise_articles {
            let w1 = space.global_pool.get(rng.gen_range(0..space.global_pool.len()));
            let a = b.add_article(&format!("{w1} list {n}"));
            // Re-adding an article dedups by title; the counter in the
            // title makes noise articles unique, so `a` is always fresh.
            if a.index() >= entity_of.len() {
                entity_of.push(None);
            }
            if rng.gen_bool(0.5) {
                let t = rng.gen_range(0..topic_cat.len());
                b.add_membership(a, topic_cat[t]);
            }
            for _ in 0..cfg.noise_article_links {
                let target = rng.gen_range(0..space.entities.len());
                b.add_article_link(a, article_of[target]);
                if rng.gen_bool(cfg.p_noise_reciprocal) {
                    b.add_article_link(article_of[target], a);
                }
            }
        }

        let graph = b.build();
        SynthKb {
            graph,
            article_of,
            entity_of,
            subtopic_cat,
            topic_cat,
            domain_cat,
        }
    }

    /// Entity index of an article, if it corresponds to one.
    pub fn entity_of_article(&self, a: ArticleId) -> Option<usize> {
        self.entity_of.get(a.index()).copied().flatten()
    }

    /// Surface-form entries for an entity-linker dictionary:
    /// `(surface form, article, commonness)`. Every entity contributes its
    /// full title (commonness 1.0 — titles are unique) and, if present,
    /// its alias with a deterministic commonness in `(0, 1]`. Entities
    /// sharing an alias compete on commonness, which is exactly the
    /// ambiguity a Dexter-style linker has to resolve.
    pub fn linker_entries(&self, space: &ConceptSpace) -> Vec<(String, ArticleId, f64)> {
        let mut out = Vec::with_capacity(space.entities.len() * 2);
        for e in &space.entities {
            let a = self.article_of[e.id];
            out.push((e.title(), a, 1.0));
            if let Some(alias) = &e.alias {
                // splitmix-style hash of the entity id → stable commonness.
                let mut h = (e.id as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
                h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                h ^= h >> 31;
                let commonness = 0.05 + 0.95 * (h % 10_000) as f64 / 10_000.0;
                out.push((alias.clone(), a, commonness));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestBedConfig;
    use kbgraph::Node;

    fn build_small() -> (ConceptSpace, SynthKb) {
        let cfg = TestBedConfig::small().kb;
        let space = ConceptSpace::generate(&cfg);
        let kb = SynthKb::build(&space, &cfg);
        (space, kb)
    }

    #[test]
    fn every_entity_has_an_article() {
        let (space, kb) = build_small();
        assert_eq!(kb.article_of.len(), space.entities.len());
        for (i, e) in space.entities.iter().enumerate() {
            assert_eq!(kb.graph.article_title(kb.article_of[i]), e.title());
            assert_eq!(kb.entity_of_article(kb.article_of[i]), Some(i));
        }
    }

    #[test]
    fn noise_articles_present() {
        let (space, kb) = build_small();
        assert!(kb.graph.num_articles() > space.entities.len());
    }

    #[test]
    fn category_hierarchy_wired() {
        let (space, kb) = build_small();
        // Subtopic cat → topic cat → domain cat.
        let st = 0usize;
        let topic = space.subtopics[st].topic;
        let domain = space.topics[topic].domain;
        assert!(kb
            .graph
            .parents_of(kb.subtopic_cat[st])
            .contains(&kb.topic_cat[topic].raw()));
        assert!(kb
            .graph
            .parents_of(kb.topic_cat[topic])
            .contains(&kb.domain_cat[domain].raw()));
    }

    #[test]
    fn mutual_relations_become_reciprocal_links() {
        let (space, kb) = build_small();
        let mut checked = 0;
        for e in &space.entities {
            for r in &e.relations {
                if r.mutual {
                    assert!(kb
                        .graph
                        .doubly_linked(kb.article_of[e.id], kb.article_of[r.other]));
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "should have many mutual pairs: {checked}");
    }

    #[test]
    fn entities_belong_to_their_subtopic_category() {
        let (space, kb) = build_small();
        for e in &space.entities {
            assert!(kb
                .graph
                .belongs_to(kb.article_of[e.id], kb.subtopic_cat[e.subtopic]));
        }
    }

    #[test]
    fn graph_has_short_cycles_through_entities() {
        let (space, kb) = build_small();
        let mut finder = kbgraph::CycleFinder::new(
            &kb.graph,
            kbgraph::CycleLimits {
                max_len: 4,
                max_expand_degree: 64,
                max_cycles: 1000,
            },
        );
        let anchor = Node::Article(kb.article_of[space.subtopics[0].entities[0]]);
        let cycles = finder.cycles_through(anchor);
        assert!(
            !cycles.is_empty(),
            "entities must sit on length-3/4 cycles for motifs to fire"
        );
    }

    #[test]
    fn stats_reflect_reciprocity() {
        let (_, kb) = build_small();
        let stats = kb.graph.stats();
        assert!(stats.num_reciprocal_pairs > 0);
        assert!(stats.num_category_links > 0);
        assert!(stats.num_membership_links >= stats.num_articles / 2);
    }
}
