//! Breadth-first distances in the mixed graph.
//!
//! Used to characterize query graphs: the paper's optimal expansion nodes
//! sit within 1–2 undirected hops of the query nodes (they share cycles
//! of length 3–5), and downstream users of the library frequently need
//! "how far is article X from article Y through the KB".

use std::collections::VecDeque;

use rustc_hash::FxHashMap;

use crate::graph::KbGraph;
use crate::ids::Node;

/// Undirected BFS from `source`, up to `max_depth` hops. Returns the
/// distance of every reached node (including the source at distance 0).
pub fn bfs_distances(graph: &KbGraph, source: Node, max_depth: u32) -> FxHashMap<Node, u32> {
    let mut dist: FxHashMap<Node, u32> = FxHashMap::default();
    dist.insert(source, 0);
    let mut queue: VecDeque<Node> = VecDeque::new();
    queue.push_back(source);
    let mut neighbors = Vec::new();
    while let Some(node) = queue.pop_front() {
        let d = dist[&node];
        if d == max_depth {
            continue;
        }
        graph.undirected_neighbors(node, &mut neighbors);
        for &next in &neighbors {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(next) {
                e.insert(d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// Shortest undirected distance between two nodes, if within `max_depth`.
pub fn distance(graph: &KbGraph, from: Node, to: Node, max_depth: u32) -> Option<u32> {
    if from == to {
        return Some(0);
    }
    // Early-exit BFS.
    let mut dist: FxHashMap<Node, u32> = FxHashMap::default();
    dist.insert(from, 0);
    let mut queue: VecDeque<Node> = VecDeque::new();
    queue.push_back(from);
    let mut neighbors = Vec::new();
    while let Some(node) = queue.pop_front() {
        let d = dist[&node];
        if d == max_depth {
            continue;
        }
        graph.undirected_neighbors(node, &mut neighbors);
        for &next in &neighbors {
            if next == to {
                return Some(d + 1);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(next) {
                e.insert(d + 1);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Histogram of the distances from any of `sources` to each of `targets`
/// (minimum over sources): `hist[d]` counts targets at distance `d`;
/// unreachable targets (within `max_depth`) are counted in the returned
/// `unreachable`.
pub fn distance_histogram(
    graph: &KbGraph,
    sources: &[Node],
    targets: &[Node],
    max_depth: u32,
) -> (Vec<usize>, usize) {
    let mut best: FxHashMap<Node, u32> = FxHashMap::default();
    for &s in sources {
        for (node, d) in bfs_distances(graph, s, max_depth) {
            best.entry(node)
                .and_modify(|cur| *cur = (*cur).min(d))
                .or_insert(d);
        }
    }
    let mut hist = vec![0usize; max_depth as usize + 1];
    let mut unreachable = 0usize;
    for t in targets {
        match best.get(t) {
            Some(&d) => hist[d as usize] += 1,
            None => unreachable += 1,
        }
    }
    (hist, unreachable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::ArticleId;

    /// Chain: a — b (mutual), b ∈ c, x ∈ c  ⇒  a→b 1 hop, a→c 2, a→x 3.
    fn chain() -> (KbGraph, Node, Node, Node, Node) {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let m = b.add_article("m");
        let x = b.add_article("x");
        let c = b.add_category("c");
        b.add_mutual_link(a, m);
        b.add_membership(m, c);
        b.add_membership(x, c);
        let g = b.build();
        (
            g,
            Node::Article(a),
            Node::Article(m),
            Node::Category(c),
            Node::Article(x),
        )
    }

    #[test]
    fn bfs_distances_by_hop() {
        let (g, a, m, c, x) = chain();
        let d = bfs_distances(&g, a, 5);
        assert_eq!(d[&a], 0);
        assert_eq!(d[&m], 1);
        assert_eq!(d[&c], 2);
        assert_eq!(d[&x], 3);
    }

    #[test]
    fn max_depth_cuts_search() {
        let (g, a, _, _, x) = chain();
        let d = bfs_distances(&g, a, 2);
        assert!(!d.contains_key(&x));
        assert_eq!(distance(&g, a, x, 2), None);
        assert_eq!(distance(&g, a, x, 3), Some(3));
    }

    #[test]
    fn distance_is_symmetric() {
        let (g, a, _, _, x) = chain();
        assert_eq!(distance(&g, a, x, 5), distance(&g, x, a, 5));
        assert_eq!(distance(&g, a, a, 5), Some(0));
    }

    #[test]
    fn isolated_nodes_unreachable() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let lone = b.add_article("lone");
        let g = b.build();
        assert_eq!(
            distance(&g, Node::Article(a), Node::Article(lone), 4),
            None
        );
        let _ = ArticleId::new(0);
    }

    #[test]
    fn histogram_counts_min_over_sources() {
        let (g, a, m, c, x) = chain();
        let (hist, unreachable) = distance_histogram(&g, &[a, x], &[m, c], 5);
        // m: min(1 from a, 2 from x) = 1; c: min(2 from a, 1 from x) = 1.
        assert_eq!(hist[1], 2);
        assert_eq!(unreachable, 0);
        let (_, unreachable) = distance_histogram(&g, &[a], &[x], 1);
        assert_eq!(unreachable, 1);
    }
}
