/root/repo/target/release/deps/serde_derive-bab623a366ff3919.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-bab623a366ff3919.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
