//! The synthetic concept space: domains → topics → subtopics → entities.
//!
//! Entities stand for Wikipedia articles; subtopics, topics and domains
//! become the category hierarchy. Semantic closeness is explicit here
//! (relations with kinds and relevance flags) and is *materialized twice*:
//! once as graph structure in [`crate::kb`] (reciprocal links, shared
//! categories — what the motifs detect) and once as text in
//! [`crate::docs`] (which documents are about which entities — what
//! relevance judgments reward). That co-design is exactly the paper's
//! premise: KB structure encodes semantics.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::KbConfig;
use crate::words::WordPool;

/// How a related entity is connected to the source entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelKind {
    /// Same leaf category: the tightest association.
    SameSubtopic,
    /// Same topic, different subtopic.
    SameTopic,
    /// Same domain, different topic.
    SameDomain,
}

/// A directed semantic relation from one entity to another.
#[derive(Debug, Clone, Copy)]
pub struct Relation {
    /// Target entity index.
    pub other: usize,
    /// Closeness class.
    pub kind: RelKind,
    /// Whether the KB graph gets a reciprocal link pair for it.
    pub mutual: bool,
    /// Whether documents about `other` are relevant to queries targeting
    /// the source entity (same-subtopic relations always are; same-topic
    /// ones with probability `p_related_relevant`; same-domain never).
    pub relevant: bool,
}

/// A synthetic entity (future KB article).
#[derive(Debug, Clone)]
pub struct Entity {
    /// Dense entity index.
    pub id: usize,
    /// Owning domain index.
    pub domain: usize,
    /// Owning (global) topic index.
    pub topic: usize,
    /// Owning (global) subtopic index.
    pub subtopic: usize,
    /// Unique title words (1–3), used as the article title and planted
    /// contiguously in documents about the entity.
    pub title_words: Vec<String>,
    /// Optional ambiguous alias (shared pool ⇒ collisions across
    /// entities), the surface form queries use.
    pub alias: Option<String>,
    /// Outgoing semantic relations.
    pub relations: Vec<Relation>,
    /// Member of the topic category (in addition to the subtopic one).
    pub in_topic_cat: bool,
    /// Member of the domain category (hub article).
    pub in_domain_cat: bool,
}

impl Entity {
    /// The article title: title words joined by spaces.
    pub fn title(&self) -> String {
        self.title_words.join(" ")
    }
}

/// A domain: broad field with a general vocabulary and a shared word pool
/// that its topics sample from (creating cross-topic word collisions).
#[derive(Debug, Clone)]
pub struct Domain {
    /// Display name.
    pub name: String,
    /// General words used across the whole domain.
    pub words: Vec<String>,
    /// The pool topic vocabularies are sampled from.
    pub pool: Vec<String>,
    /// Global indices of the domain's topics.
    pub topic_range: Range<usize>,
}

/// A topic: the query-level subject unit. Each benchmark query targets
/// entities of exactly one topic.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Owning domain.
    pub domain: usize,
    /// Display name.
    pub name: String,
    /// Specific vocabulary (sampled from the domain pool).
    pub words: Vec<String>,
    /// Global indices of the topic's subtopics.
    pub subtopic_range: Range<usize>,
    /// Global indices of the topic's entities.
    pub entity_range: Range<usize>,
}

/// A subtopic: the leaf category.
#[derive(Debug, Clone)]
pub struct Subtopic {
    /// Owning (global) topic.
    pub topic: usize,
    /// Display name.
    pub name: String,
    /// Entities assigned to this leaf.
    pub entities: Vec<usize>,
}

/// The full generated concept space.
#[derive(Debug, Clone)]
pub struct ConceptSpace {
    /// All domains.
    pub domains: Vec<Domain>,
    /// All topics (global indexing).
    pub topics: Vec<Topic>,
    /// All subtopics (global indexing).
    pub subtopics: Vec<Subtopic>,
    /// All entities.
    pub entities: Vec<Entity>,
    /// Global noise vocabulary.
    pub global_pool: WordPool,
    /// Alias vocabulary (deliberately small ⇒ ambiguous).
    pub alias_pool: WordPool,
    /// Caption "function words" ("view", "photo", "detail"): a tiny pool
    /// present in most documents. Too common to help retrieval — but
    /// exactly what an unfiltered relevance model drifts onto (the PRF
    /// collapse of Section 4.3).
    pub caption_pool: WordPool,
}

impl ConceptSpace {
    /// Generates the concept space deterministically from the config.
    pub fn generate(cfg: &KbConfig) -> ConceptSpace {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let num_topics = cfg.domains * cfg.topics_per_domain;
        let num_entities = num_topics * cfg.entities_per_topic;

        // Carve non-overlapping word-space regions. Title words come from
        // a pool of roughly one word per entity, so words collide across
        // entities (real names do: "Mercury", "cable") while full
        // multi-word titles stay unique; a reserve region disambiguates
        // the rare full-title collision ("Mercury (planet)" style).
        let title_pool = WordPool::new(0, (num_entities as u64 * 2).max(8));
        let title_reserve = WordPool::new(title_pool.end(), (num_entities as u64).max(8));
        let mut cursor = title_reserve.end();
        let per_domain = (cfg.domain_vocab + cfg.domain_pool) as u64;
        let domain_words_base = cursor;
        cursor += cfg.domains as u64 * per_domain;
        let name_pool = WordPool::new(cursor, (cfg.domains + num_topics * 4) as u64 + 16);
        cursor = name_pool.end();
        let alias_pool = WordPool::new(cursor, cfg.alias_pool as u64);
        cursor = alias_pool.end();
        let caption_pool = WordPool::new(cursor, 24);
        cursor = caption_pool.end();
        let global_pool = WordPool::new(cursor, cfg.global_vocab as u64);

        let mut domains = Vec::with_capacity(cfg.domains);
        let mut topics = Vec::with_capacity(num_topics);
        let mut subtopics = Vec::new();
        let mut entities: Vec<Entity> = Vec::with_capacity(num_entities);
        let mut used_titles: std::collections::HashSet<String> =
            std::collections::HashSet::with_capacity(num_entities);
        let mut name_idx = 0u64;
        let next_name = |n: &mut u64| {
            let w = name_pool.get(*n);
            *n += 1;
            w
        };

        for d in 0..cfg.domains {
            let base = domain_words_base + d as u64 * per_domain;
            let words: Vec<String> = (0..cfg.domain_vocab as u64)
                .map(|i| crate::words::word(base + i))
                .collect();
            let pool: Vec<String> = (0..cfg.domain_pool as u64)
                .map(|i| crate::words::word(base + cfg.domain_vocab as u64 + i))
                .collect();
            let topic_lo = topics.len();
            for _t in 0..cfg.topics_per_domain {
                let topic_gid = topics.len();
                // Sample the topic vocabulary from the domain pool without
                // replacement *within* the topic; across topics the pool is
                // shared, so words collide between sibling topics.
                let mut indices: Vec<usize> = (0..cfg.domain_pool).collect();
                for i in 0..cfg.topic_vocab.min(indices.len()) {
                    let j = rng.gen_range(i..indices.len());
                    indices.swap(i, j);
                }
                let topic_words: Vec<String> = indices
                    .iter()
                    .take(cfg.topic_vocab)
                    .map(|&i| pool[i].clone())
                    .collect();
                let sub_lo = subtopics.len();
                let ent_lo = entities.len();
                for s in 0..cfg.subtopics_per_topic {
                    subtopics.push(Subtopic {
                        topic: topic_gid,
                        name: format!("{}_{}", next_name(&mut name_idx), s),
                        entities: Vec::new(),
                    });
                }
                for e in 0..cfg.entities_per_topic {
                    let sub_gid = sub_lo + e % cfg.subtopics_per_topic;
                    let id = entities.len();
                    let n_title = match rng.gen_range(0..100) {
                        0..=9 => 1,
                        10..=69 => 2,
                        _ => 3,
                    };
                    let mut title_words: Vec<String> = (0..n_title)
                        .map(|_| title_pool.get(rng.gen_range(0..title_pool.len())))
                        .collect();
                    title_words.dedup();
                    let mut title = title_words.join(" ");
                    if used_titles.contains(&title) {
                        // Disambiguate with a reserved unique word.
                        title_words.push(title_reserve.get(id as u64));
                        title = title_words.join(" ");
                    }
                    used_titles.insert(title);
                    let alias = if rng.gen_bool(cfg.p_alias) {
                        Some(alias_pool.get(rng.gen_range(0..cfg.alias_pool) as u64))
                    } else {
                        None
                    };
                    subtopics[sub_gid].entities.push(id);
                    entities.push(Entity {
                        id,
                        domain: d,
                        topic: topic_gid,
                        subtopic: sub_gid,
                        title_words,
                        alias,
                        relations: Vec::new(),
                        in_topic_cat: rng.gen_bool(cfg.p_topic_membership),
                        in_domain_cat: rng.gen_bool(cfg.p_domain_membership),
                    });
                }
                topics.push(Topic {
                    domain: d,
                    name: next_name(&mut name_idx),
                    words: topic_words,
                    subtopic_range: sub_lo..subtopics.len(),
                    entity_range: ent_lo..entities.len(),
                });
            }
            domains.push(Domain {
                name: next_name(&mut name_idx),
                words,
                pool,
                topic_range: topic_lo..topics.len(),
            });
        }

        let mut space = ConceptSpace {
            domains,
            topics,
            subtopics,
            entities,
            global_pool,
            alias_pool,
            caption_pool,
        };
        space.wire_relations(cfg, &mut rng);
        space
    }

    /// Samples the semantic relations of every entity.
    ///
    /// Intra-topic mutual links follow an **odd-offset ring**: entity `i`
    /// links entities `i ± o (mod topic size)` for odd offsets `o`. Two
    /// link partners of the same entity then differ by an even offset, so
    /// they are never linked to each other — article-only triangles do
    /// not occur inside a topic. Every length-3 cycle through an entity
    /// therefore passes through a category, and no article-only
    /// length-5 cycle exists in a topic either (five odd offsets cannot
    /// sum to zero). This reproduces the paper's Figure 2 observation
    /// that short cycles mix articles *and* categories (≈⅓ categories).
    fn wire_relations(&mut self, cfg: &KbConfig, rng: &mut SmallRng) {
        let num_entities = self.entities.len();
        let subs = cfg.subtopics_per_topic.max(1);
        for id in 0..num_entities {
            let (topic, domain) = {
                let e = &self.entities[id];
                (e.topic, e.domain)
            };
            let topic_range = self.topics[topic].entity_range.clone();
            let size = topic_range.len();
            let base = topic_range.start;
            let pos = id - base;
            let mut relations = Vec::new();
            let partner = |off: i64| -> usize {
                let p = (pos as i64 + off).rem_euclid(size as i64) as usize;
                base + p
            };
            // Same subtopic: odd multiples of the subtopic count keep the
            // residue class (subtopics are assigned round-robin). Tight,
            // always relevant, always mutual.
            let mut sub_offsets: Vec<i64> = Vec::new();
            let mut k = 1i64;
            while sub_offsets.len() < cfg.mutual_same_subtopic * 2 && (k * subs as i64) < size as i64
            {
                if (k * subs as i64) % 2 == 1 {
                    sub_offsets.push(k * subs as i64);
                    sub_offsets.push(-(k * subs as i64));
                }
                k += 2;
            }
            for &off in sub_offsets.iter().take(cfg.mutual_same_subtopic) {
                let other = partner(off);
                if other != id && self.entities[other].subtopic == self.entities[id].subtopic {
                    relations.push(Relation {
                        other,
                        kind: RelKind::SameSubtopic,
                        mutual: true,
                        relevant: true,
                    });
                }
            }
            // Same topic, other subtopics: odd offsets that are not
            // multiples of the subtopic count. Mutual, relevant with prob.
            let mut cross_offsets: Vec<i64> = Vec::new();
            let mut o = 1i64;
            while cross_offsets.len() < cfg.mutual_same_topic * 2 && o < size as i64 {
                if o % 2 == 1 && o % subs as i64 != 0 {
                    cross_offsets.push(o);
                    cross_offsets.push(-o);
                }
                o += 2;
            }
            // Deterministic per-entity subset keeps the ring irregular.
            let mut local = SmallRng::seed_from_u64(cfg.seed ^ ((id as u64) << 20));
            for i in (1..cross_offsets.len()).rev() {
                let j = local.gen_range(0..=i);
                cross_offsets.swap(i, j);
            }
            let p_rel = cfg.p_related_relevant;
            for &off in cross_offsets.iter().take(cfg.mutual_same_topic) {
                let other = partner(off);
                if other != id
                    && self.entities[other].topic == topic
                    && self.entities[other].subtopic != self.entities[id].subtopic
                    && !relations.iter().any(|r| r.other == other)
                {
                    relations.push(Relation {
                        other,
                        kind: RelKind::SameTopic,
                        mutual: true,
                        relevant: local.gen_bool(p_rel),
                    });
                }
            }
            // Same domain, other topics: mutual but never relevant.
            let dom_topics = self.domains[domain].topic_range.clone();
            let ent_lo = self.topics[dom_topics.start].entity_range.start;
            let ent_hi = self.topics[dom_topics.end - 1].entity_range.end;
            let cross: Vec<usize> = (ent_lo..ent_hi)
                .filter(|&o| o != id && self.entities[o].topic != topic)
                .collect();
            sample_into(
                rng,
                &cross,
                cfg.mutual_same_domain,
                &mut relations,
                |other| Relation {
                    other,
                    kind: RelKind::SameDomain,
                    mutual: true,
                    relevant: false,
                },
            );
            self.entities[id].relations = relations;
        }
    }

    /// Total number of topics.
    pub fn num_topics(&self) -> usize {
        self.topics.len()
    }

    /// Entities of a (global) topic index.
    pub fn topic_entities(&self, topic: usize) -> Range<usize> {
        self.topics[topic].entity_range.clone()
    }

    /// The relevance neighbourhood of a set of target entities: the
    /// targets, all their same-subtopic peers, and every related entity
    /// whose relation is flagged relevant. This is the generator's ground
    /// truth — both qrels and the paper's "optimal query graphs" \[10\]
    /// derive from it.
    pub fn relevance_neighborhood(&self, targets: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for &t in targets {
            out.push(t);
            let e = &self.entities[t];
            out.extend(
                self.subtopics[e.subtopic]
                    .entities
                    .iter()
                    .copied()
                    .filter(|&o| o != t),
            );
            out.extend(e.relations.iter().filter(|r| r.relevant).map(|r| r.other));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Reservoir-free sampling of `k` distinct items from `pool` (partial
/// Fisher–Yates over a scratch copy).
fn sample_into<F: FnMut(usize) -> Relation>(
    rng: &mut SmallRng,
    pool: &[usize],
    k: usize,
    out: &mut Vec<Relation>,
    mut make: F,
) {
    if pool.is_empty() || k == 0 {
        return;
    }
    let k = k.min(pool.len());
    let mut scratch: Vec<usize> = pool.to_vec();
    for i in 0..k {
        let j = rng.gen_range(i..scratch.len());
        scratch.swap(i, j);
        out.push(make(scratch[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestBedConfig;

    fn small_space() -> ConceptSpace {
        ConceptSpace::generate(&TestBedConfig::small().kb)
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TestBedConfig::small().kb;
        let a = ConceptSpace::generate(&cfg);
        let b = ConceptSpace::generate(&cfg);
        assert_eq!(a.entities.len(), b.entities.len());
        for (x, y) in a.entities.iter().zip(b.entities.iter()) {
            assert_eq!(x.title_words, y.title_words);
            assert_eq!(x.alias, y.alias);
            assert_eq!(x.relations.len(), y.relations.len());
        }
    }

    #[test]
    fn counts_match_config() {
        let cfg = TestBedConfig::small().kb;
        let s = ConceptSpace::generate(&cfg);
        assert_eq!(s.domains.len(), cfg.domains);
        assert_eq!(s.topics.len(), cfg.domains * cfg.topics_per_domain);
        assert_eq!(
            s.entities.len(),
            s.topics.len() * cfg.entities_per_topic
        );
        assert_eq!(
            s.subtopics.len(),
            s.topics.len() * cfg.subtopics_per_topic
        );
    }

    #[test]
    fn titles_are_globally_unique() {
        let s = small_space();
        let mut titles: Vec<String> = s.entities.iter().map(|e| e.title()).collect();
        titles.sort_unstable();
        let before = titles.len();
        titles.dedup();
        assert_eq!(titles.len(), before);
    }

    #[test]
    fn aliases_collide_across_entities() {
        let s = small_space();
        let aliases: Vec<&String> = s.entities.iter().filter_map(|e| e.alias.as_ref()).collect();
        let distinct: std::collections::HashSet<&&String> = aliases.iter().collect();
        assert!(
            distinct.len() < aliases.len(),
            "alias pool must be ambiguous: {} aliases, {} distinct",
            aliases.len(),
            distinct.len()
        );
    }

    #[test]
    fn topic_vocabularies_overlap_within_domain() {
        let s = small_space();
        let d = &s.domains[0];
        let mut any_overlap = false;
        for t1 in d.topic_range.clone() {
            for t2 in d.topic_range.clone() {
                if t1 < t2 {
                    let w1: std::collections::HashSet<&String> =
                        s.topics[t1].words.iter().collect();
                    if s.topics[t2].words.iter().any(|w| w1.contains(w)) {
                        any_overlap = true;
                    }
                }
            }
        }
        assert!(any_overlap, "sibling topics must share general words");
    }

    #[test]
    fn relations_respect_kinds() {
        let s = small_space();
        for e in &s.entities {
            for r in &e.relations {
                let o = &s.entities[r.other];
                match r.kind {
                    RelKind::SameSubtopic => assert_eq!(o.subtopic, e.subtopic),
                    RelKind::SameTopic => {
                        assert_eq!(o.topic, e.topic);
                        assert_ne!(o.subtopic, e.subtopic);
                    }
                    RelKind::SameDomain => {
                        assert_eq!(o.domain, e.domain);
                        assert_ne!(o.topic, e.topic);
                    }
                }
                assert_ne!(r.other, e.id, "no self relations");
            }
        }
    }

    #[test]
    fn same_subtopic_relations_always_relevant() {
        let s = small_space();
        for e in &s.entities {
            for r in &e.relations {
                if r.kind == RelKind::SameSubtopic {
                    assert!(r.relevant);
                }
                if r.kind == RelKind::SameDomain {
                    assert!(!r.relevant);
                }
            }
        }
    }

    #[test]
    fn some_same_topic_relations_are_irrelevant() {
        let s = small_space();
        let (mut rel, mut irrel) = (0, 0);
        for e in &s.entities {
            for r in &e.relations {
                if r.kind == RelKind::SameTopic {
                    if r.relevant {
                        rel += 1;
                    } else {
                        irrel += 1;
                    }
                }
            }
        }
        assert!(rel > 0 && irrel > 0, "rel={rel} irrel={irrel}");
    }

    #[test]
    fn relevance_neighborhood_contains_targets_and_subtopic() {
        let s = small_space();
        let target = s.subtopics[0].entities[0];
        let hood = s.relevance_neighborhood(&[target]);
        assert!(hood.contains(&target));
        for &peer in &s.subtopics[0].entities {
            assert!(hood.contains(&peer), "subtopic peers are relevant");
        }
        // Everything in the neighbourhood shares the target's topic.
        let topic = s.entities[target].topic;
        for &e in &hood {
            assert_eq!(s.entities[e].topic, topic);
        }
    }

    #[test]
    fn neighborhood_of_two_targets_unions() {
        let s = small_space();
        let t1 = s.subtopics[0].entities[0];
        let t2 = s.subtopics[0].entities[1];
        let h1 = s.relevance_neighborhood(&[t1]);
        let h12 = s.relevance_neighborhood(&[t1, t2]);
        assert!(h12.len() >= h1.len());
        assert!(h12.contains(&t2));
    }
}
