//! Whole-file snapshot assembly: encode, append, atomic write, verified
//! load — format v2 (footer-led, one section per index segment) plus the
//! frozen v1 decode path.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use entitylink::Dictionary;
use kbgraph::KbGraph;
use searchlite::{Index, Searcher, Segment};

use crate::codec::{
    decode_dict, decode_graph, decode_index, decode_meta, encode_dict, encode_graph, encode_index,
    encode_meta, SnapshotMeta,
};
use crate::crc32::crc32;
use crate::error::StoreError;
use crate::format::{
    align8, decode_footer, decode_header, encode_footer, encode_header,
    encode_prefix_v2, find_section, footer_span, header_span, section_payload,
    segment_section_id, verify_section_crc, SectionEntry, MAX_SEGMENTS_PER_COLLECTION, SEC_DICT,
    SEC_GRAPH, SEC_INDEX_BASE, SEC_META, VERSION, VERSION_V1,
};

/// Identification string embedded in the META section.
const WRITER: &str = concat!("sqe-store ", env!("CARGO_PKG_VERSION"));

/// Everything a snapshot persists, borrowed from the live pipeline
/// state. Each collection is a list of immutable index segments in
/// seal order; a monolithic collection is simply a one-segment list.
#[derive(Debug, Clone, Copy)]
// lint:allow(persist-types-derive-serde) — borrowed view, hand-serialized
pub struct SnapshotContents<'a> {
    /// The knowledge graph.
    pub graph: &'a KbGraph,
    /// `(collection name, segments)` pairs; both orders are preserved.
    pub collections: &'a [(&'a str, &'a [&'a Index])],
    /// The entity-linker surface-form dictionary.
    pub dict: &'a Dictionary,
}

/// Summary of a snapshot file, cheap to obtain (header walk only).
#[derive(Debug, Clone)]
// lint:allow(persist-types-derive-serde) — diagnostic value, printed not persisted
pub struct SnapshotInfo {
    /// Format version of the file (1 or 2).
    pub version: u32,
    /// Total file size in bytes.
    pub file_len: u64,
    /// Writer string from the META section.
    pub writer: String,
    /// Collection names in index-section order.
    pub collections: Vec<String>,
    /// Segment count per collection, parallel to `collections` (always
    /// 1 for v1 files).
    pub segment_counts: Vec<u32>,
    /// `(id, len, crc)` of every section, in file order.
    pub sections: Vec<(u32, u64, u32)>,
}

fn meta_of(contents: &SnapshotContents<'_>) -> SnapshotMeta {
    SnapshotMeta {
        writer: WRITER.to_owned(),
        collections: contents
            .collections
            .iter()
            .map(|(name, _)| (*name).to_owned())
            .collect(),
    }
}

/// Serializes the full snapshot into an in-memory v2 byte image
/// (prefix, aligned payloads, footer). Deterministic: the same contents
/// always produce identical bytes — the golden-stability test depends
/// on it, and it makes snapshot diffs meaningful. Appending segments to
/// the last collection with [`append_segment`] reproduces exactly the
/// bytes of a one-shot encode of the grown contents.
pub fn encode_snapshot(contents: &SnapshotContents<'_>) -> Result<Vec<u8>, StoreError> {
    let mut payloads: Vec<(u32, Vec<u8>)> = Vec::with_capacity(3 + contents.collections.len());
    payloads.push((SEC_META, encode_meta(&meta_of(contents))?));
    payloads.push((SEC_GRAPH, encode_graph(contents.graph)?));
    payloads.push((SEC_DICT, encode_dict(contents.dict)?));
    for (i, (_, segments)) in contents.collections.iter().enumerate() {
        for (j, segment) in segments.iter().enumerate() {
            payloads.push((segment_section_id(i, j)?, encode_index(segment)?));
        }
    }
    let mut out = encode_prefix_v2();
    let mut entries = Vec::with_capacity(payloads.len());
    for (id, payload) in &payloads {
        entries.push(SectionEntry {
            id: *id,
            crc: crc32(payload),
            offset: out.len() as u64,
            len: payload.len() as u64,
        });
        out.extend_from_slice(payload);
        out.resize(align8(out.len()), 0);
    }
    out.extend_from_slice(&encode_footer(&entries)?);
    Ok(out)
}

/// Serializes the snapshot in the frozen v1 layout (front header, one
/// index section per collection). Every collection must be a single
/// segment. Kept alive so the compat tests and the committed golden
/// fixture can keep exercising the v1 decode path forever.
pub fn encode_snapshot_v1(contents: &SnapshotContents<'_>) -> Result<Vec<u8>, StoreError> {
    let mut payloads: Vec<(u32, Vec<u8>)> = Vec::with_capacity(3 + contents.collections.len());
    payloads.push((SEC_META, encode_meta(&meta_of(contents))?));
    payloads.push((SEC_GRAPH, encode_graph(contents.graph)?));
    payloads.push((SEC_DICT, encode_dict(contents.dict)?));
    for (i, (name, segments)) in contents.collections.iter().enumerate() {
        let [segment] = segments else {
            return Err(StoreError::SectionTable {
                detail: format!(
                    "v1 stores one segment per collection; `{name}` has {}",
                    segments.len()
                ),
            });
        };
        let id = SEC_INDEX_BASE
            .checked_add(u32::try_from(i).unwrap_or(u32::MAX))
            .ok_or_else(|| StoreError::SectionTable {
                detail: format!("too many collections: {}", contents.collections.len()),
            })?;
        payloads.push((id, encode_index(segment)?));
    }

    let mut offset = header_span(payloads.len());
    let mut entries = Vec::with_capacity(payloads.len());
    for (id, payload) in &payloads {
        entries.push(SectionEntry {
            id: *id,
            crc: crc32(payload),
            offset: offset as u64,
            len: payload.len() as u64,
        });
        offset = align8(offset + payload.len());
    }
    let header = encode_header(&entries)?;
    let mut out = Vec::with_capacity(offset);
    out.extend_from_slice(&header);
    for (_, payload) in &payloads {
        out.extend_from_slice(payload);
        out.resize(align8(out.len()), 0);
    }
    Ok(out)
}

/// Appends one sealed segment to a collection of an existing v2 image,
/// in place. Only the footer is rewritten: every existing payload byte
/// is left untouched, so sealing is O(new segment) rather than O(file).
/// When the collection is the last one in section order the result is
/// byte-identical to a one-shot [`encode_snapshot`] of the grown
/// contents.
pub fn append_segment(
    bytes: &mut Vec<u8>,
    collection: &str,
    segment: &Index,
) -> Result<(), StoreError> {
    let mut entries = decode_footer(bytes)?;
    let meta_entry = find_section(&entries, SEC_META)?;
    verify_section_crc(bytes, &meta_entry)?;
    let meta = decode_meta(section_payload(bytes, &meta_entry))?;
    let ci = meta
        .collections
        .iter()
        .position(|n| n == collection)
        .ok_or_else(|| StoreError::NoSuchCollection {
            name: collection.to_owned(),
        })?;
    let lo = segment_section_id(ci, 0)?;
    let existing = entries
        .iter()
        .filter(|e| (lo..lo + MAX_SEGMENTS_PER_COLLECTION).contains(&e.id))
        .count();
    let id = segment_section_id(ci, existing)?;
    let payload = encode_index(segment)?;
    let footer_start = bytes.len() - footer_span(entries.len());
    bytes.truncate(footer_start);
    entries.push(SectionEntry {
        id,
        crc: crc32(&payload),
        offset: footer_start as u64,
        len: payload.len() as u64,
    });
    bytes.extend_from_slice(&payload);
    bytes.resize(align8(bytes.len()), 0);
    bytes.extend_from_slice(&encode_footer(&entries)?);
    Ok(())
}

/// Writes a snapshot atomically: the image goes to `<path>.tmp` in the
/// same directory, is flushed and synced, then renamed over `path`.
/// Readers therefore only ever observe either the old complete file or
/// the new complete file. Returns the number of bytes written.
pub fn write_snapshot(path: &Path, contents: &SnapshotContents<'_>) -> Result<u64, StoreError> {
    let bytes = encode_snapshot(contents)?;
    write_snapshot_bytes(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Atomically publishes an already-encoded snapshot image (the
/// write-temp-sync-rename dance of [`write_snapshot`], for callers that
/// grow the image incrementally with [`append_segment`]).
pub fn write_snapshot_bytes(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        // Leave no orphaned temp file behind a failed publication.
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::Io(e));
    }
    Ok(())
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// A fully decoded, fully audited snapshot.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — decoded runtime state
pub struct Snapshot {
    graph: KbGraph,
    collections: Vec<(String, Vec<Index>)>,
    dict: Dictionary,
    info: SnapshotInfo,
}

/// Decodes graph, dictionary and every index section, with the
/// per-section CRC scan folded into the thread that reads the section.
/// Sections decode on parallel scoped threads (graph + dictionary on
/// one, each index segment on its own) so cold-start wall time is
/// bounded by the largest section rather than the file size. Errors are
/// still reported in deterministic section order.
fn decode_world(
    bytes: &[u8],
    graph_entry: SectionEntry,
    dict_entry: SectionEntry,
    index_sections: &[(String, SectionEntry)],
) -> Result<(KbGraph, Dictionary, Vec<Index>), StoreError> {
    let decode_graph_dict = || -> Result<(KbGraph, Dictionary), StoreError> {
        verify_section_crc(bytes, &graph_entry)?;
        let graph = decode_graph(section_payload(bytes, &graph_entry))?;
        verify_section_crc(bytes, &dict_entry)?;
        let dict = decode_dict(section_payload(bytes, &dict_entry), graph.num_articles())?;
        Ok((graph, dict))
    };
    let decode_one_index = |name: &str, entry: &SectionEntry| -> Result<Index, StoreError> {
        verify_section_crc(bytes, entry)?;
        decode_index(section_payload(bytes, entry), entry.id, name)
    };
    let parallel = std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1
        && !index_sections.is_empty();
    let (graph, dict, index_results) = if parallel {
        let thread_died = |what: &str| StoreError::Malformed {
            section: SEC_META,
            detail: format!("{what} decoder thread panicked"),
        };
        let (graph_dict, index_results) = std::thread::scope(|s| {
            let graph_dict = s.spawn(decode_graph_dict);
            let index_handles: Vec<_> = index_sections
                .iter()
                .map(|(name, entry)| s.spawn(move || decode_one_index(name, entry)))
                .collect();
            let graph_dict = graph_dict.join();
            let index_results: Vec<_> = index_handles.into_iter().map(|h| h.join()).collect();
            (graph_dict, index_results)
        });
        let (graph, dict) = graph_dict.map_err(|_| thread_died("graph"))??;
        let index_results = index_results
            .into_iter()
            .map(|r| r.unwrap_or_else(|_| Err(thread_died("index"))))
            .collect::<Vec<_>>();
        (graph, dict, index_results)
    } else {
        let (graph, dict) = decode_graph_dict()?;
        let index_results = index_sections
            .iter()
            .map(|(name, entry)| decode_one_index(name, entry))
            .collect::<Vec<_>>();
        (graph, dict, index_results)
    };
    let mut indexes = Vec::with_capacity(index_sections.len());
    for r in index_results {
        indexes.push(r?);
    }
    Ok((graph, dict, indexes))
}

impl Snapshot {
    /// Decodes a snapshot image of either format version: header and
    /// checksum verification, section decoding, shape validation, and
    /// the full graph/index audits. Every failure is a typed
    /// [`StoreError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        match crate::format::read_version(bytes)? {
            VERSION_V1 => Snapshot::from_bytes_v1(bytes),
            _ => Snapshot::from_bytes_v2(bytes),
        }
    }

    fn from_bytes_v1(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        let entries = decode_header(bytes)?;
        let meta_entry = find_section(&entries, SEC_META)?;
        verify_section_crc(bytes, &meta_entry)?;
        let meta = decode_meta(section_payload(bytes, &meta_entry))?;
        let graph_entry = find_section(&entries, SEC_GRAPH)?;
        let dict_entry = find_section(&entries, SEC_DICT)?;
        let mut index_sections = Vec::with_capacity(meta.collections.len());
        for (i, name) in meta.collections.iter().enumerate() {
            let id = SEC_INDEX_BASE
                .checked_add(u32::try_from(i).unwrap_or(u32::MAX))
                .ok_or_else(|| StoreError::SectionTable {
                    detail: format!("too many collections: {}", meta.collections.len()),
                })?;
            index_sections.push((name.clone(), find_section(&entries, id)?));
        }
        // Every table entry must be one of the sections decoded above:
        // an id this version does not know would otherwise escape both
        // decoding and CRC verification.
        for e in &entries {
            let known = e.id == SEC_META
                || e.id == SEC_GRAPH
                || e.id == SEC_DICT
                || index_sections.iter().any(|(_, s)| s.id == e.id);
            if !known {
                return Err(StoreError::SectionTable {
                    detail: format!("unknown section id {:#x}", e.id),
                });
            }
        }
        let (graph, dict, indexes) = decode_world(bytes, graph_entry, dict_entry, &index_sections)?;
        let collections: Vec<(String, Vec<Index>)> = meta
            .collections
            .iter()
            .zip(indexes)
            .map(|(n, i)| (n.clone(), vec![i]))
            .collect();
        let info = SnapshotInfo {
            version: VERSION_V1,
            file_len: bytes.len() as u64,
            writer: meta.writer,
            collections: meta.collections,
            segment_counts: vec![1; collections.len()],
            sections: entries.iter().map(|e| (e.id, e.len, e.crc)).collect(),
        };
        Ok(Snapshot {
            graph,
            collections,
            dict,
            info,
        })
    }

    fn from_bytes_v2(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        let entries = decode_footer(bytes)?;
        let meta_entry = find_section(&entries, SEC_META)?;
        verify_section_crc(bytes, &meta_entry)?;
        let meta = decode_meta(section_payload(bytes, &meta_entry))?;
        let graph_entry = find_section(&entries, SEC_GRAPH)?;
        let dict_entry = find_section(&entries, SEC_DICT)?;
        let mut index_sections = Vec::new();
        let mut segment_counts = Vec::with_capacity(meta.collections.len());
        for (i, name) in meta.collections.iter().enumerate() {
            let lo = segment_section_id(i, 0)?;
            let count = entries
                .iter()
                .filter(|e| (lo..lo + MAX_SEGMENTS_PER_COLLECTION).contains(&e.id))
                .count();
            // A gap in the segment ids (j present without j-1) surfaces
            // below as MissingSection; a stray high id as unknown.
            for j in 0..count {
                let entry = find_section(&entries, segment_section_id(i, j)?)?;
                index_sections.push((format!("{name}[{j}]"), entry));
            }
            segment_counts.push(u32::try_from(count).unwrap_or(u32::MAX));
        }
        for e in &entries {
            let known = e.id == SEC_META
                || e.id == SEC_GRAPH
                || e.id == SEC_DICT
                || index_sections.iter().any(|(_, s)| s.id == e.id);
            if !known {
                return Err(StoreError::SectionTable {
                    detail: format!("unknown section id {:#x}", e.id),
                });
            }
        }
        let (graph, dict, indexes) = decode_world(bytes, graph_entry, dict_entry, &index_sections)?;
        let mut indexes = indexes.into_iter();
        let collections: Vec<(String, Vec<Index>)> = meta
            .collections
            .iter()
            .zip(&segment_counts)
            .map(|(n, &c)| (n.clone(), indexes.by_ref().take(c as usize).collect()))
            .collect();
        let info = SnapshotInfo {
            version: VERSION,
            file_len: bytes.len() as u64,
            writer: meta.writer,
            collections: meta.collections,
            segment_counts,
            sections: entries.iter().map(|e| (e.id, e.len, e.crc)).collect(),
        };
        Ok(Snapshot {
            graph,
            collections,
            dict,
            info,
        })
    }

    /// Reads and decodes a snapshot file (see [`Snapshot::from_bytes`]).
    pub fn load(path: &Path) -> Result<Snapshot, StoreError> {
        let bytes = fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Full verification of a snapshot image — everything
    /// [`Snapshot::from_bytes`] checks, reported as a [`SnapshotInfo`].
    pub fn verify(bytes: &[u8]) -> Result<SnapshotInfo, StoreError> {
        Snapshot::from_bytes(bytes).map(|s| s.info)
    }

    /// Header-only inspection: magic, version, table CRC, section CRCs
    /// and the META section — without decoding graph or index payloads.
    pub fn info(bytes: &[u8]) -> Result<SnapshotInfo, StoreError> {
        let (version, entries) = crate::format::decode_and_verify_sections(bytes)?;
        let meta_entry = find_section(&entries, SEC_META)?;
        let meta = decode_meta(section_payload(bytes, &meta_entry))?;
        let segment_counts = meta
            .collections
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if version == VERSION_V1 {
                    return Ok(1);
                }
                let lo = segment_section_id(i, 0)?;
                let count = entries
                    .iter()
                    .filter(|e| (lo..lo + MAX_SEGMENTS_PER_COLLECTION).contains(&e.id))
                    .count();
                Ok(u32::try_from(count).unwrap_or(u32::MAX))
            })
            .collect::<Result<Vec<u32>, StoreError>>()?;
        Ok(SnapshotInfo {
            version,
            file_len: bytes.len() as u64,
            writer: meta.writer,
            collections: meta.collections,
            segment_counts,
            sections: entries.iter().map(|e| (e.id, e.len, e.crc)).collect(),
        })
    }

    /// The decoded knowledge graph.
    pub fn graph(&self) -> &KbGraph {
        &self.graph
    }

    /// The decoded entity-linker dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Collection names in snapshot order.
    pub fn collections(&self) -> impl Iterator<Item = &str> + '_ {
        self.collections.iter().map(|(n, _)| n.as_str())
    }

    /// The decoded index segments of a collection, in seal order.
    pub fn segments(&self, name: &str) -> Result<&[Index], StoreError> {
        self.collections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, segs)| segs.as_slice())
            .ok_or_else(|| StoreError::NoSuchCollection {
                name: name.to_owned(),
            })
    }

    /// The sole index of a single-segment collection, by name. Errors
    /// with [`StoreError::MultiSegment`] when the collection was
    /// persisted as several segments — use [`Snapshot::searcher`] then.
    pub fn index(&self, name: &str) -> Result<&Index, StoreError> {
        let segments = self.segments(name)?;
        match segments {
            [one] => Ok(one),
            _ => Err(StoreError::MultiSegment {
                name: name.to_owned(),
                segments: segments.len(),
            }),
        }
    }

    /// The sole index of a single-segment collection, by position.
    pub fn index_at(&self, i: usize) -> Option<&Index> {
        match self.collections.get(i).map(|(_, s)| s.as_slice()) {
            Some([one]) => Some(one),
            _ => None,
        }
    }

    /// A [`Searcher`] over all segments of a collection (epoch 0): the
    /// serving view, byte-identical in scoring to the monolithic index
    /// regardless of how the collection was partitioned on disk.
    pub fn searcher(&self, name: &str) -> Result<Searcher, StoreError> {
        let segments = self.segments(name)?;
        let first = segments.first().ok_or_else(|| StoreError::Malformed {
            section: SEC_META,
            detail: format!("collection `{name}` has no segments to search"),
        })?;
        let arcs: Vec<Arc<Segment>> = segments
            .iter()
            .enumerate()
            .map(|(j, idx)| Arc::new(Segment::new(j as u64, idx.clone())))
            .collect();
        Ok(Searcher::new(first.analyzer().clone(), arcs, 0))
    }

    /// File-level metadata captured at decode time.
    pub fn summary(&self) -> &SnapshotInfo {
        &self.info
    }

    /// Decomposes into owned parts (graph, named segment lists,
    /// dictionary) so callers can move them into long-lived service
    /// state.
    pub fn into_parts(self) -> (KbGraph, Vec<(String, Vec<Index>)>, Dictionary) {
        (self.graph, self.collections, self.dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;
    use searchlite::{Analyzer, IndexBuilder};

    fn toy_index(docs: &[(&str, &str)]) -> Index {
        let mut ib = IndexBuilder::new(Analyzer::english());
        for (id, text) in docs {
            ib.add_document(id, text).expect("unique test ids");
        }
        ib.build()
    }

    fn toy_graph_dict() -> (KbGraph, Dictionary) {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let rail = b.add_category("rail transport");
        b.add_article_link(cable, funi);
        b.add_article_link(funi, cable);
        b.add_membership(cable, rail);
        b.add_membership(funi, rail);
        let graph = b.build();
        let mut dict = Dictionary::new();
        dict.add("cable car", cable, 1.0);
        dict.add("funicular", funi, 1.0);
        (graph, dict)
    }

    fn toy_bytes() -> Vec<u8> {
        let (graph, dict) = toy_graph_dict();
        let index = toy_index(&[("d0", "the cable car climbs"), ("d1", "a funicular railway")]);
        let segments = [&index];
        let collections = [("toy", &segments[..])];
        encode_snapshot(&SnapshotContents {
            graph: &graph,
            collections: &collections,
            dict: &dict,
        })
        .unwrap()
    }

    #[test]
    fn full_roundtrip() {
        let bytes = toy_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.graph().num_articles(), 2);
        assert_eq!(snap.index("toy").unwrap().num_docs(), 2);
        assert!(snap.index("missing").is_err());
        assert_eq!(snap.dict().len(), 2);
        assert_eq!(snap.summary().collections, vec!["toy"]);
        assert_eq!(snap.summary().segment_counts, vec![1]);
        assert_eq!(snap.summary().version, VERSION);
    }

    #[test]
    fn segmented_roundtrip() {
        let (graph, dict) = toy_graph_dict();
        let a = toy_index(&[("d0", "the cable car climbs")]);
        let b = toy_index(&[("d1", "a funicular railway"), ("d2", "rail transport history")]);
        let segments = [&a, &b];
        let collections = [("toy", &segments[..])];
        let bytes = encode_snapshot(&SnapshotContents {
            graph: &graph,
            collections: &collections,
            dict: &dict,
        })
        .unwrap();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.segments("toy").unwrap().len(), 2);
        assert!(matches!(
            snap.index("toy"),
            Err(StoreError::MultiSegment { segments: 2, .. })
        ));
        let searcher = snap.searcher("toy").unwrap();
        assert_eq!(searcher.num_segments(), 2);
        assert_eq!(searcher.num_docs(), 3);
        assert_eq!(snap.summary().segment_counts, vec![2]);
    }

    #[test]
    fn append_matches_one_shot_encode() {
        let (graph, dict) = toy_graph_dict();
        let a = toy_index(&[("d0", "the cable car climbs")]);
        let b = toy_index(&[("d1", "a funicular railway")]);
        let one_seg = [&a];
        let colls_one = [("toy", &one_seg[..])];
        let mut grown = encode_snapshot(&SnapshotContents {
            graph: &graph,
            collections: &colls_one,
            dict: &dict,
        })
        .unwrap();
        let payload_prefix = grown.len() - footer_span(4);
        append_segment(&mut grown, "toy", &b).unwrap();
        let two_seg = [&a, &b];
        let colls_two = [("toy", &two_seg[..])];
        let one_shot = encode_snapshot(&SnapshotContents {
            graph: &graph,
            collections: &colls_two,
            dict: &dict,
        })
        .unwrap();
        assert_eq!(grown, one_shot, "append must reproduce the one-shot bytes");
        // The existing payload bytes were reused untouched.
        assert_eq!(&grown[..payload_prefix], &one_shot[..payload_prefix]);
        assert!(matches!(
            append_segment(&mut grown, "missing", &b),
            Err(StoreError::NoSuchCollection { .. })
        ));
    }

    #[test]
    fn v1_encode_still_decodes() {
        let (graph, dict) = toy_graph_dict();
        let index = toy_index(&[("d0", "the cable car climbs"), ("d1", "a funicular railway")]);
        let segments = [&index];
        let collections = [("toy", &segments[..])];
        let contents = SnapshotContents {
            graph: &graph,
            collections: &collections,
            dict: &dict,
        };
        let bytes = encode_snapshot_v1(&contents).unwrap();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.summary().version, VERSION_V1);
        assert_eq!(snap.index("toy").unwrap().num_docs(), 2);
        assert_eq!(snap.searcher("toy").unwrap().num_docs(), 2);
        // v1 cannot hold a multi-segment collection.
        let a = toy_index(&[("d0", "x")]);
        let two = [&a, &a];
        let colls = [("toy", &two[..])];
        assert!(encode_snapshot_v1(&SnapshotContents {
            graph: &graph,
            collections: &colls,
            dict: &dict,
        })
        .is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(toy_bytes(), toy_bytes());
    }

    #[test]
    fn verify_and_info_agree() {
        let bytes = toy_bytes();
        let v = Snapshot::verify(&bytes).unwrap();
        let i = Snapshot::info(&bytes).unwrap();
        assert_eq!(v.sections, i.sections);
        assert_eq!(v.collections, i.collections);
        assert_eq!(v.segment_counts, i.segment_counts);
        assert_eq!(v.version, i.version);
        assert_eq!(v.file_len, bytes.len() as u64);
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join("sqe-store-test-atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.snap");
        let (graph, dict) = toy_graph_dict();
        let index = toy_index(&[("d0", "the cable car climbs"), ("d1", "a funicular railway")]);
        let segments = [&index];
        let collections = [("toy", &segments[..])];
        let contents = SnapshotContents {
            graph: &graph,
            collections: &collections,
            dict: &dict,
        };
        let written = write_snapshot(&path, &contents).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
        let snap = Snapshot::load(&path).unwrap();
        assert_eq!(snap.graph().num_articles(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = toy_bytes();
        // Exhaustive over bytes, one bit per byte: cheap on the toy world
        // and covers prefix, every payload, padding and the footer.
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "flip at byte {at} was accepted"
            );
        }
    }
}
