//! Hand-written recursive-descent parser over the [`crate::lexer`] token
//! stream, producing the lightweight AST in [`crate::ast`].
//!
//! Two stages:
//!
//! 1. **Token trees**: the flat token stream is grouped by balanced
//!    `(`/`[`/`{` delimiters. This is the only stage that can produce
//!    [`ParseError`]s — everything downstream is total.
//! 2. **Items and expressions**: items (fns, impls, mods, structs) are
//!    parsed structurally; function bodies are lowered chain-by-chain.
//!    Operator precedence is deliberately ignored — a statement is parsed
//!    as a sequence of postfix *chains* separated by operator tokens and
//!    wrapped in [`Expr::Other`], which preserves every nested call,
//!    cast, index, and macro for rule traversal.
//!
//! The parser must accept all real workspace code with zero errors (the
//! round-trip test enforces this); unfamiliar syntax degrades to
//! [`Expr::Other`], never to an error.

use crate::ast::{Block, Expr, FnDef, Item, ParseError, SourceFile};
use crate::lexer::{lex, Tok, TokKind};

/// A delimiter-grouped token.
#[derive(Debug)]
enum Tree {
    Leaf(Tok),
    Group {
        delim: char,
        line: u32,
        trees: Vec<Tree>,
    },
}

impl Tree {
    fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_punct(c))
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_ident(s))
    }

    fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    fn group(&self, d: char) -> Option<&[Tree]> {
        match self {
            Tree::Group { delim, trees, .. } if *delim == d => Some(trees),
            _ => None,
        }
    }
}

/// Groups tokens into balanced-delimiter trees. Comments are dropped.
fn build_trees(toks: &[Tok], errors: &mut Vec<ParseError>) -> Vec<Tree> {
    // Each stack frame: (delimiter char, open line, children).
    let mut stack: Vec<(char, u32, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for t in toks {
        if t.kind == TokKind::Comment {
            continue;
        }
        let c = if t.kind == TokKind::Punct {
            t.text.chars().next().unwrap_or(' ')
        } else {
            ' '
        };
        match c {
            '(' | '[' | '{' => stack.push((c, t.line, Vec::new())),
            ')' | ']' | '}' => {
                let want = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                match stack.pop() {
                    Some((delim, line, trees)) if delim == want => {
                        let g = Tree::Group { delim, line, trees };
                        match stack.last_mut() {
                            Some((_, _, parent)) => parent.push(g),
                            None => top.push(g),
                        }
                    }
                    Some((delim, line, trees)) => {
                        errors.push(ParseError {
                            line: t.line,
                            message: format!(
                                "mismatched `{c}` closing `{delim}` opened on line {line}"
                            ),
                        });
                        // Recover: close the open group anyway.
                        let g = Tree::Group { delim, line, trees };
                        match stack.last_mut() {
                            Some((_, _, parent)) => parent.push(g),
                            None => top.push(g),
                        }
                    }
                    None => errors.push(ParseError {
                        line: t.line,
                        message: format!("unmatched closing `{c}`"),
                    }),
                }
            }
            _ => {
                let leaf = Tree::Leaf(t.clone());
                match stack.last_mut() {
                    Some((_, _, parent)) => parent.push(leaf),
                    None => top.push(leaf),
                }
            }
        }
    }
    while let Some((delim, line, trees)) = stack.pop() {
        errors.push(ParseError {
            line,
            message: format!("unclosed `{delim}`"),
        });
        let g = Tree::Group { delim, line, trees };
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(g),
            None => top.push(g),
        }
    }
    top
}

/// Renders a tree slice back to flat text (single-space separated). Used
/// for type ascriptions and other text the rules match by substring.
fn render(trees: &[Tree]) -> String {
    let mut out = String::new();
    render_into(trees, &mut out);
    out
}

fn render_into(trees: &[Tree], out: &mut String) {
    for t in trees {
        if !out.is_empty() && !out.ends_with(' ') {
            out.push(' ');
        }
        match t {
            Tree::Leaf(tok) => out.push_str(&tok.text),
            Tree::Group { delim, trees, .. } => {
                let (open, close) = match delim {
                    '(' => ('(', ')'),
                    '[' => ('[', ']'),
                    _ => ('{', '}'),
                };
                out.push(open);
                render_into(trees, out);
                out.push(close);
            }
        }
    }
}

/// Parses one source file.
pub fn parse_file(rel: &str, src: &str) -> SourceFile {
    let toks = lex(src);
    parse_tokens(rel, &toks)
}

/// Parses an already-lexed token stream (lets the engine lex once and
/// share the stream with the token rules).
pub fn parse_tokens(rel: &str, toks: &[Tok]) -> SourceFile {
    let mut errors = Vec::new();
    let trees = build_trees(toks, &mut errors);
    let items = parse_items(&trees);
    SourceFile {
        rel: rel.to_string(),
        items,
        errors,
    }
}

/// Cursor over a tree slice.
struct P<'a> {
    t: &'a [Tree],
    i: usize,
}

impl<'a> P<'a> {
    fn new(t: &'a [Tree]) -> Self {
        P { t, i: 0 }
    }

    fn peek(&self) -> Option<&'a Tree> {
        self.t.get(self.i)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tree> {
        self.t.get(self.i + off)
    }

    fn bump(&mut self) -> Option<&'a Tree> {
        let t = self.t.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn done(&self) -> bool {
        self.i >= self.t.len()
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(c)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_ident(s)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// True when the next two leaves are `::`.
    fn at_path_sep(&self) -> bool {
        self.peek().is_some_and(|t| t.is_punct(':'))
            && self.peek_at(1).is_some_and(|t| t.is_punct(':'))
    }

    /// Skips a balanced `<...>` run starting at the current `<`. `>`
    /// preceded by `-` (i.e. `->` arrows inside generic bounds) does not
    /// close. Returns the rendered interior text.
    fn skip_angles(&mut self) -> String {
        let start = self.i;
        if !self.eat_punct('<') {
            return String::new();
        }
        let mut depth = 1usize;
        let mut prev_minus = false;
        while let Some(t) = self.peek() {
            if t.is_punct('<') {
                depth += 1;
                prev_minus = false;
            } else if t.is_punct('>') && !prev_minus {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    break;
                }
            } else {
                prev_minus = t.is_punct('-');
            }
            self.i += 1;
        }
        let inner = &self.t[start + 1..self.i.saturating_sub(1).max(start + 1)];
        render(inner)
    }

    /// Collects trees until a predicate matches at the current level (the
    /// matching tree is not consumed). Returns the collected range.
    fn take_until(&mut self, stop: impl Fn(&Tree) -> bool) -> &'a [Tree] {
        let start = self.i;
        while let Some(t) = self.peek() {
            if stop(t) {
                break;
            }
            self.i += 1;
        }
        &self.t[start..self.i]
    }
}

/// Attribute facts gathered ahead of an item.
#[derive(Default, Clone, Copy)]
struct Attrs {
    is_test: bool,
    is_cfg_test: bool,
}

/// Consumes `#[...]` / `#![...]` runs, recording `#[test]` and
/// `#[cfg(test)]`.
fn eat_attrs(p: &mut P<'_>) -> Attrs {
    let mut out = Attrs::default();
    loop {
        if !p.peek().is_some_and(|t| t.is_punct('#')) {
            return out;
        }
        // `#` [`!`] `[...]`
        let mut off = 1usize;
        if p.peek_at(off).is_some_and(|t| t.is_punct('!')) {
            off += 1;
        }
        let Some(group) = p.peek_at(off).and_then(|t| t.group('[')) else {
            return out;
        };
        let idents: Vec<&str> = group.iter().filter_map(Tree::ident).collect();
        if idents.first() == Some(&"test") && idents.len() == 1 {
            out.is_test = true;
        }
        if idents.first() == Some(&"cfg") {
            // Look inside cfg(...) for a bare `test`.
            if let Some(inner) = group.get(1).and_then(|t| t.group('(')) {
                if inner.iter().any(|t| t.is_ident("test")) {
                    out.is_cfg_test = true;
                }
            }
        }
        p.i += off + 1;
    }
}

/// Item-introducing keywords (after visibility/modifiers).
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "mod",
    "impl",
    "struct",
    "enum",
    "trait",
    "use",
    "const",
    "static",
    "type",
    "macro_rules",
    "extern",
    "union",
];

/// Parses a run of items.
fn parse_items(trees: &[Tree]) -> Vec<Item> {
    let mut p = P::new(trees);
    let mut items = Vec::new();
    while !p.done() {
        let before = p.i;
        if let Some(item) = parse_item(&mut p) {
            items.push(item);
        }
        if p.i == before {
            p.i += 1; // always make progress
        }
    }
    items
}

/// Parses one item, or skips one uninteresting tree.
fn parse_item(p: &mut P<'_>) -> Option<Item> {
    let attrs = eat_attrs(p);
    // Modifiers: `pub` (optionally `pub(crate)`), `const fn`, `async`,
    // `unsafe`, `default`, `extern "C"`.
    loop {
        if p.eat_ident("pub") {
            if p.peek().is_some_and(|t| t.group('(').is_some()) {
                p.i += 1;
            }
            continue;
        }
        // `const` is both a modifier (`const fn`) and an item (`const X`).
        if p.peek().is_some_and(|t| t.is_ident("const"))
            && p.peek_at(1).is_some_and(|t| t.is_ident("fn"))
        {
            p.i += 1;
            continue;
        }
        if p.peek().is_some_and(|t| {
            t.is_ident("async") || t.is_ident("unsafe") || t.is_ident("default")
        }) && p
            .peek_at(1)
            .is_some_and(|n| n.ident().is_some_and(|s| ITEM_KEYWORDS.contains(&s)))
        {
            p.i += 1;
            continue;
        }
        break;
    }
    let kw = p.peek()?.ident()?.to_string();
    match kw.as_str() {
        "fn" => {
            p.i += 1;
            parse_fn(p, attrs).map(Item::Fn)
        }
        "mod" => {
            let line = p.peek().map_or(0, Tree::line);
            p.i += 1;
            let name = p.bump().and_then(Tree::ident).unwrap_or("").to_string();
            if let Some(body) = p.peek().and_then(|t| t.group('{')) {
                p.i += 1;
                Some(Item::Mod {
                    name,
                    line,
                    items: parse_items(body),
                    is_test: attrs.is_cfg_test,
                })
            } else {
                p.eat_punct(';');
                Some(Item::Other)
            }
        }
        "impl" => {
            let line = p.peek().map_or(0, Tree::line);
            p.i += 1;
            if p.peek().is_some_and(|t| t.is_punct('<')) {
                p.skip_angles();
            }
            // Collect the header up to the body; the self type is the last
            // path before the brace (after `for`, when present).
            let header = p.take_until(|t| t.group('{').is_some());
            let ty = impl_self_type(header);
            let items = match p.peek().and_then(|t| t.group('{')) {
                Some(body) => {
                    p.i += 1;
                    parse_items(body)
                }
                None => Vec::new(),
            };
            Some(Item::Impl { ty, line, items })
        }
        "struct" => {
            let line = p.peek().map_or(0, Tree::line);
            p.i += 1;
            let name = p.bump().and_then(Tree::ident).unwrap_or("").to_string();
            if p.peek().is_some_and(|t| t.is_punct('<')) {
                p.skip_angles();
            }
            // Skip a `where` clause.
            let _ = p.take_until(|t| {
                t.group('{').is_some() || t.group('(').is_some() || t.is_punct(';')
            });
            let mut fields = Vec::new();
            if let Some(body) = p.peek().and_then(|t| t.group('{')) {
                p.i += 1;
                for seg in split_top_commas(body) {
                    let mut q = P::new(seg);
                    let _ = eat_attrs(&mut q);
                    if q.eat_ident("pub") && q.peek().is_some_and(|t| t.group('(').is_some()) {
                        q.i += 1;
                    }
                    let fname = q.bump().and_then(Tree::ident).unwrap_or("").to_string();
                    if q.eat_punct(':') {
                        fields.push((fname, render(&q.t[q.i..])));
                    }
                }
            } else if let Some(body) = p.peek().and_then(|t| t.group('(')) {
                p.i += 1;
                for (idx, seg) in split_top_commas(body).into_iter().enumerate() {
                    fields.push((idx.to_string(), render(seg)));
                }
                p.eat_punct(';');
            } else {
                p.eat_punct(';');
            }
            Some(Item::Struct { name, line, fields })
        }
        "trait" => {
            p.i += 1;
            let _name = p.bump().and_then(Tree::ident);
            if p.peek().is_some_and(|t| t.is_punct('<')) {
                p.skip_angles();
            }
            let _ = p.take_until(|t| t.group('{').is_some() || t.is_punct(';'));
            if let Some(body) = p.peek().and_then(|t| t.group('{')) {
                p.i += 1;
                // Trait default methods matter for the call graph; surface
                // them like a module's items (no self-type qualifier).
                Some(Item::Mod {
                    name: String::new(),
                    line: 0,
                    items: parse_items(body),
                    is_test: false,
                })
            } else {
                p.eat_punct(';');
                Some(Item::Other)
            }
        }
        "enum" | "union" => {
            p.i += 1;
            let _name = p.bump().and_then(Tree::ident);
            if p.peek().is_some_and(|t| t.is_punct('<')) {
                p.skip_angles();
            }
            let _ = p.take_until(|t| t.group('{').is_some() || t.is_punct(';'));
            if p.peek().is_some_and(|t| t.group('{').is_some()) {
                p.i += 1;
            } else {
                p.eat_punct(';');
            }
            Some(Item::Other)
        }
        "macro_rules" => {
            p.i += 1;
            p.eat_punct('!');
            let _name = p.bump();
            if p.peek().is_some_and(|t| t.group('{').is_some() || t.group('(').is_some()) {
                p.i += 1;
            }
            p.eat_punct(';');
            Some(Item::Other)
        }
        "use" | "type" | "static" | "const" | "extern" => {
            // Consume to the terminating `;` (extern blocks: skip the body).
            p.i += 1;
            let _ = p.take_until(|t| t.is_punct(';') || t.group('{').is_some());
            if p.peek().is_some_and(|t| t.group('{').is_some()) {
                p.i += 1;
            }
            p.eat_punct(';');
            Some(Item::Other)
        }
        _ => None,
    }
}

/// Head identifier of an impl block's self type from its header trees.
fn impl_self_type(header: &[Tree]) -> String {
    // After the last top-level `for`, or the whole header when absent.
    let mut start = 0usize;
    for (i, t) in header.iter().enumerate() {
        if t.is_ident("for") {
            start = i + 1;
        }
    }
    let slice = &header[start..];
    // First path segment run: idents separated by `::`; the head is the
    // last segment before generics.
    let mut head = String::new();
    let mut i = 0usize;
    while i < slice.len() {
        match &slice[i] {
            Tree::Leaf(t) if t.kind == TokKind::Ident && !t.text.starts_with('\'') => {
                if t.text != "dyn" && t.text != "mut" {
                    head = t.text.clone();
                }
                i += 1;
            }
            t if t.is_punct(':') || t.is_punct('&') || t.is_punct('*') => i += 1,
            t if t.is_punct('<') => break,
            _ => break,
        }
    }
    head
}

/// Splits a tree slice on top-level commas, tracking `<...>` depth so
/// generic arguments don't split.
fn split_top_commas(trees: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut angle = 0i32;
    let mut prev_minus = false;
    for (i, t) in trees.iter().enumerate() {
        if t.is_punct('<') {
            angle += 1;
            prev_minus = false;
        } else if t.is_punct('>') && !prev_minus {
            angle = (angle - 1).max(0);
        } else if t.is_punct(',') && angle == 0 {
            if i > start {
                out.push(&trees[start..i]);
            }
            start = i + 1;
        } else {
            prev_minus = t.is_punct('-');
        }
    }
    if start < trees.len() {
        out.push(&trees[start..]);
    }
    out
}

/// Parses a fn from just after the `fn` keyword.
fn parse_fn(p: &mut P<'_>, attrs: Attrs) -> Option<FnDef> {
    let name_tree = p.bump()?;
    let line = name_tree.line();
    let name = name_tree.ident().unwrap_or("").to_string();
    if p.peek().is_some_and(|t| t.is_punct('<')) {
        p.skip_angles();
    }
    let params = match p.peek().and_then(|t| t.group('(')) {
        Some(args) => {
            p.i += 1;
            parse_params(args)
        }
        None => Vec::new(),
    };
    // Return type: `-> Type` until body, `;`, or `where`.
    let mut ret = String::new();
    if p.peek().is_some_and(|t| t.is_punct('-')) && p.peek_at(1).is_some_and(|t| t.is_punct('>'))
    {
        p.i += 2;
        let ty = p.take_until(|t| t.group('{').is_some() || t.is_punct(';') || t.is_ident("where"));
        ret = render(ty);
    }
    if p.peek().is_some_and(|t| t.is_ident("where")) {
        let _ = p.take_until(|t| t.group('{').is_some() || t.is_punct(';'));
    }
    let body = match p.peek() {
        Some(t) => match t.group('{') {
            Some(inner) => {
                let bline = t.line();
                p.i += 1;
                Some(parse_block(inner, bline))
            }
            None => {
                p.eat_punct(';');
                None
            }
        },
        None => None,
    };
    Some(FnDef {
        name,
        line,
        params,
        ret,
        body,
        is_test: attrs.is_test || attrs.is_cfg_test,
    })
}

/// Parses a parameter list group into `(name, type text)` pairs; `self`
/// receivers are dropped.
fn parse_params(trees: &[Tree]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for seg in split_top_commas(trees) {
        let mut q = P::new(seg);
        let _ = eat_attrs(&mut q);
        // Receiver forms: `self`, `&self`, `&mut self`, `&'a mut self`.
        let mut r = q.i;
        while seg.get(r).is_some_and(|t| {
            t.is_punct('&')
                || t.is_ident("mut")
                || matches!(t, Tree::Leaf(tok) if tok.text.starts_with('\''))
        }) {
            r += 1;
        }
        if seg.get(r).is_some_and(|t| t.is_ident("self")) {
            continue;
        }
        // Pattern up to the top-level `:` (but not `::`).
        let mut colon = None;
        let mut k = q.i;
        while k < seg.len() {
            if seg[k].is_punct(':') {
                if seg.get(k + 1).is_some_and(|t| t.is_punct(':')) {
                    k += 2;
                    continue;
                }
                colon = Some(k);
                break;
            }
            k += 1;
        }
        let Some(c) = colon else { continue };
        let pat = &seg[q.i..c];
        let name = match pat {
            [single] => single.ident().unwrap_or("_pat").to_string(),
            [m, single] if m.is_ident("mut") => single.ident().unwrap_or("_pat").to_string(),
            _ => "_pat".to_string(),
        };
        out.push((name, render(&seg[c + 1..])));
    }
    out
}

/// Parses a block group's trees into a [`Block`].
fn parse_block(trees: &[Tree], line: u32) -> Block {
    let mut p = P::new(trees);
    let mut stmts = Vec::new();
    let mut items = Vec::new();
    while !p.done() {
        let before = p.i;
        if p.eat_punct(';') {
            continue;
        }
        // Items nested in the block (helper fns, local `use`, nested mods).
        // `const`/`type` inside a body could also be expression starts in
        // exotic code, but treating them as items is always safe here.
        let save = p.i;
        let attrs_probe = eat_attrs(&mut p);
        let is_item = p.peek().is_some_and(|t| {
            t.ident().is_some_and(|s| {
                (ITEM_KEYWORDS.contains(&s) && s != "impl") || s == "pub"
            })
        }) && !p.peek().is_some_and(|t| t.is_ident("const") && {
            // `const { ... }` block expressions are not items.
            p.peek_at(1).is_some_and(|n| n.group('{').is_some())
        });
        if is_item {
            if let Some(item) = parse_item(&mut p) {
                items.push(apply_attrs(item, attrs_probe));
            }
            if p.i == save {
                p.i += 1;
            }
            continue;
        }
        p.i = save;
        // Statement-level attributes (e.g. `#[allow]` on a stmt).
        let _ = eat_attrs(&mut p);
        stmts.push(parse_stmt(&mut p));
        p.eat_punct(';');
        if p.i == before {
            p.i += 1;
        }
    }
    Block { stmts, items, line }
}

/// Re-applies attribute facts to a just-parsed item (the block item path
/// consumes attrs before dispatching).
fn apply_attrs(item: Item, attrs: Attrs) -> Item {
    match item {
        Item::Fn(mut f) => {
            f.is_test = f.is_test || attrs.is_test || attrs.is_cfg_test;
            Item::Fn(f)
        }
        Item::Mod {
            name,
            line,
            items,
            is_test,
        } => Item::Mod {
            name,
            line,
            items,
            is_test: is_test || attrs.is_cfg_test,
        },
        other => other,
    }
}

/// Operator leaves that separate chains inside one statement.
fn is_operator(t: &Tree) -> bool {
    matches!(t, Tree::Leaf(tok) if tok.kind == TokKind::Punct
        && matches!(tok.text.chars().next(), Some('+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '&' | '|' | '^' | '!' | '.' | ',' | ':' | '?' | '@' | '$' | '~' | ';' | '#')))
}

/// Parses one statement: `let`, or a chain sequence up to a top-level `;`
/// (not consumed) or a non-operator boundary.
fn parse_stmt(p: &mut P<'_>) -> Expr {
    if p.peek().is_some_and(|t| t.is_ident("let")) {
        return parse_let(p);
    }
    parse_chain_seq(p)
}

/// Parses a whole tree slice as one statement-like expression (used for
/// arg segments, conditions, match-arm bodies).
fn parse_slice(trees: &[Tree]) -> Expr {
    let mut p = P::new(trees);
    if trees.is_empty() {
        return Expr::Other {
            children: Vec::new(),
            line: 0,
        };
    }
    let e = parse_stmt(&mut p);
    if p.done() {
        e
    } else {
        // Leftovers (e.g. `let ... else { }` tails): keep them walkable.
        let line = e.line();
        let mut children = vec![e];
        while !p.done() {
            let before = p.i;
            if p.eat_punct(';') {
                continue;
            }
            children.push(parse_stmt(&mut p));
            if p.i == before {
                p.i += 1;
            }
        }
        Expr::Other { children, line }
    }
}

/// `let [mut] PAT [: TY] [= INIT]`.
fn parse_let(p: &mut P<'_>) -> Expr {
    let line = p.peek().map_or(0, Tree::line);
    p.i += 1; // `let`
    p.eat_ident("mut");
    // Pattern: trees until top-level `:` (not `::`), `=` (not `==`), or end.
    let pat_start = p.i;
    while let Some(t) = p.peek() {
        if t.is_punct(';') {
            break;
        }
        if t.is_punct(':') && !p.peek_at(1).is_some_and(|n| n.is_punct(':')) {
            break;
        }
        if t.is_punct('=') && !p.peek_at(1).is_some_and(|n| n.is_punct('=')) {
            break;
        }
        if t.is_punct(':') {
            p.i += 2; // `::` inside a pattern path
            continue;
        }
        p.i += 1;
    }
    let pat = &p.t[pat_start..p.i];
    let name = match pat {
        [single] => single.ident().map(str::to_string),
        _ => None,
    };
    let mut ty = None;
    if p.peek().is_some_and(|t| t.is_punct(':'))
        && !p.peek_at(1).is_some_and(|t| t.is_punct(':'))
    {
        p.i += 1;
        let start = p.i;
        let mut angle = 0i32;
        let mut prev_minus = false;
        while let Some(t) = p.peek() {
            if t.is_punct('<') {
                angle += 1;
                prev_minus = false;
            } else if t.is_punct('>') && !prev_minus {
                angle = (angle - 1).max(0);
            } else if (t.is_punct('=') || t.is_punct(';')) && angle == 0 {
                break;
            } else {
                prev_minus = t.is_punct('-');
            }
            p.i += 1;
        }
        ty = Some(render(&p.t[start..p.i]));
    }
    let mut init = None;
    if p.eat_punct('=') {
        init = Some(Box::new(parse_chain_seq(p)));
    }
    Expr::Let {
        name,
        ty,
        init,
        line,
    }
}

/// Parses a run of chains separated by operator leaves, stopping at a
/// top-level `;` or at a non-operator boundary (which in valid Rust means
/// a new statement after a block-terminated expression).
fn parse_chain_seq(p: &mut P<'_>) -> Expr {
    let line = p.peek().map_or(0, Tree::line);
    let mut children = Vec::new();
    loop {
        if p.done() || p.peek().is_some_and(|t| t.is_punct(';')) {
            break;
        }
        let before = p.i;
        children.push(parse_chain(p));
        if p.i == before {
            p.i += 1;
        }
        // A top-level assignment operator after the first chain turns the
        // statement into `Expr::Assign` (the rhs absorbs the rest).
        if children.len() == 1 && p.i > before {
            if let Some((op, ntoks)) = peek_assign_op(p) {
                p.i += ntoks;
                let lhs = children.pop().expect("len checked");
                let rhs = parse_chain_seq(p);
                return Expr::Assign {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            }
        }
        // Continue through operators; `else` glues if/else chains.
        let mut advanced = false;
        while let Some(t) = p.peek() {
            if t.is_punct(';') {
                break;
            }
            if is_operator(t) {
                // Attribute on an expression position: skip its group too.
                if t.is_punct('#') && p.peek_at(1).is_some_and(|n| n.group('[').is_some()) {
                    p.i += 2;
                } else {
                    p.i += 1;
                }
                advanced = true;
            } else if t.is_ident("else") || t.is_ident("in") || t.is_ident("as") {
                // `as` here only when a chain didn't absorb it (defensive).
                p.i += 1;
                advanced = true;
            } else {
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    match children.len() {
        1 => children.pop().expect("len checked"),
        _ => Expr::Other { children, line },
    }
}

/// Recognizes an assignment operator at the cursor: `=` (but not `==` or
/// `=>`), `op=` for the arithmetic and bit operators, and `<<=`/`>>=`.
/// Comparison forms (`<=`, `>=`, `!=`) are *not* assignments. Returns the
/// operator text and the number of leaves it spans.
fn peek_assign_op(p: &P<'_>) -> Option<(String, usize)> {
    let t0 = p.peek()?;
    if t0.is_punct('=') {
        if p.peek_at(1)
            .is_some_and(|t| t.is_punct('=') || t.is_punct('>'))
        {
            return None;
        }
        return Some(("=".to_string(), 1));
    }
    for c in ['<', '>'] {
        if t0.is_punct(c)
            && p.peek_at(1).is_some_and(|t| t.is_punct(c))
            && p.peek_at(2).is_some_and(|t| t.is_punct('='))
        {
            return Some((format!("{c}{c}="), 3));
        }
    }
    for c in ['+', '-', '*', '/', '%', '&', '|', '^'] {
        if t0.is_punct(c) && p.peek_at(1).is_some_and(|t| t.is_punct('=')) {
            // `a += b` — but `a + = b` is not valid Rust, so adjacency of
            // the operator and `=` leaves is decisive here.
            if p.peek_at(2).is_some_and(|t| t.is_punct('=')) {
                return None; // `a + == b` degenerates; leave to the chain
            }
            return Some((format!("{c}="), 2));
        }
    }
    None
}

/// Parses one prefix–primary–postfix chain.
fn parse_chain(p: &mut P<'_>) -> Expr {
    // Prefix tokens.
    while let Some(t) = p.peek() {
        let is_prefix = t.is_punct('&')
            || t.is_punct('*')
            || t.is_punct('-')
            || t.is_punct('!')
            || t.is_ident("mut")
            || t.is_ident("box")
            || t.is_ident("ref")
            || t.is_ident("dyn");
        if is_prefix {
            p.i += 1;
        } else {
            break;
        }
    }
    let Some(first) = p.peek() else {
        return Expr::Other {
            children: Vec::new(),
            line: 0,
        };
    };
    let line = first.line();

    // Keyword-led constructs.
    if first.is_ident("if") || first.is_ident("while") {
        let is_while = first.is_ident("while");
        p.i += 1;
        let cond = p.take_until(|t| t.group('{').is_some());
        let cond = Box::new(parse_slice(cond));
        let body = match p.peek().and_then(|t| t.group('{')) {
            Some(inner) => {
                let bline = p.peek().map_or(line, Tree::line);
                p.i += 1;
                parse_block(inner, bline)
            }
            None => Block {
                stmts: Vec::new(),
                items: Vec::new(),
                line,
            },
        };
        if is_while {
            return postfix(p, Expr::While { cond, body, line });
        }
        let mut else_ = None;
        if p.peek().is_some_and(|t| t.is_ident("else")) {
            p.i += 1;
            else_ = Some(Box::new(parse_chain(p)));
        }
        return postfix(
            p,
            Expr::If {
                cond,
                then: body,
                else_,
                line,
            },
        );
    }
    if first.is_ident("match") {
        p.i += 1;
        let scrut = p.take_until(|t| t.group('{').is_some());
        let scrutinee = Box::new(parse_slice(scrut));
        let arms = match p.peek().and_then(|t| t.group('{')) {
            Some(body) => {
                p.i += 1;
                parse_match_arms(body)
            }
            None => Vec::new(),
        };
        return postfix(
            p,
            Expr::Match {
                scrutinee,
                arms,
                line,
            },
        );
    }
    if first.is_ident("return") || first.is_ident("yield") {
        p.i += 1;
        let value = if p.done() || p.peek().is_some_and(|t| t.is_punct(';') || t.is_punct(','))
        {
            None
        } else {
            Some(Box::new(parse_chain_seq(p)))
        };
        return Expr::Return { value, line };
    }
    if first.is_ident("break") {
        p.i += 1;
        // Optional loop label.
        if p.peek()
            .is_some_and(|t| matches!(t, Tree::Leaf(tok) if tok.text.starts_with('\'')))
        {
            p.i += 1;
        }
        let value = if p.done() || p.peek().is_some_and(|t| t.is_punct(';') || t.is_punct(','))
        {
            None
        } else {
            Some(Box::new(parse_chain_seq(p)))
        };
        return Expr::Break { value, line };
    }
    if first.is_ident("continue") {
        p.i += 1;
        if p.peek()
            .is_some_and(|t| matches!(t, Tree::Leaf(tok) if tok.text.starts_with('\'')))
        {
            p.i += 1;
        }
        return Expr::Continue { line };
    }
    if first.is_ident("for") {
        p.i += 1;
        let _pat = p.take_until(|t| t.is_ident("in"));
        p.eat_ident("in");
        let iter = p.take_until(|t| t.group('{').is_some());
        let iter = parse_slice(iter);
        let body = match p.peek() {
            Some(t) => match t.group('{') {
                Some(inner) => {
                    let bline = t.line();
                    p.i += 1;
                    parse_block(inner, bline)
                }
                None => Block {
                    stmts: Vec::new(),
                    items: Vec::new(),
                    line,
                },
            },
            None => Block {
                stmts: Vec::new(),
                items: Vec::new(),
                line,
            },
        };
        return Expr::For {
            iter: Box::new(iter),
            body,
            line,
        };
    }
    if first.is_ident("loop") {
        p.i += 1;
        if let Some(body) = p.peek().and_then(|t| t.group('{')) {
            let bline = p.peek().map_or(line, Tree::line);
            p.i += 1;
            return postfix(
                p,
                Expr::Loop {
                    body: parse_block(body, bline),
                    line,
                },
            );
        }
        return parse_chain(p);
    }
    if first.is_ident("unsafe") || first.is_ident("async") || first.is_ident("move") {
        p.i += 1;
        // `async move`, `unsafe {`, bare `move |..|` closures.
        return parse_chain(p);
    }

    // Closures: `|args| body` or `||` body.
    if first.is_punct('|') {
        p.i += 1;
        if !p.eat_punct('|') {
            // Consume the parameter list up to the closing `|`.
            while let Some(t) = p.peek() {
                let done = t.is_punct('|');
                p.i += 1;
                if done {
                    break;
                }
            }
        }
        // Optional `-> Ty` before a braced body.
        if p.peek().is_some_and(|t| t.is_punct('-'))
            && p.peek_at(1).is_some_and(|t| t.is_punct('>'))
        {
            p.i += 2;
            let _ = p.take_until(|t| t.group('{').is_some());
        }
        let body = parse_chain_seq(p);
        return Expr::Closure {
            body: Box::new(body),
            line,
        };
    }

    // Primaries.
    let mut cur = match first {
        Tree::Leaf(tok) if tok.kind == TokKind::Ident => {
            // A path, possibly a macro or struct literal.
            let mut segs = vec![tok.text.clone()];
            p.i += 1;
            loop {
                if p.at_path_sep() {
                    p.i += 2;
                    if p.peek().is_some_and(|t| t.is_punct('<')) {
                        p.skip_angles();
                        continue;
                    }
                    match p.peek().and_then(Tree::ident) {
                        Some(s) => {
                            segs.push(s.to_string());
                            p.i += 1;
                        }
                        None => break,
                    }
                } else {
                    break;
                }
            }
            if p.peek().is_some_and(|t| t.is_punct('!'))
                && p.peek_at(1)
                    .is_some_and(|t| matches!(t, Tree::Group { .. }))
            {
                p.i += 1;
                let g = p.bump().expect("peeked group");
                let inner = match g {
                    Tree::Group { delim: '{', trees, .. } => {
                        vec![Expr::Block(parse_block(trees, g.line()))]
                    }
                    Tree::Group { trees, .. } => split_top_commas(trees)
                        .into_iter()
                        .map(parse_slice)
                        .collect(),
                    Tree::Leaf(_) => Vec::new(),
                };
                Expr::Macro {
                    name: segs.join("::"),
                    inner,
                    line,
                }
            } else if let Some(body) = p.peek().and_then(|t| t.group('{')) {
                // Struct literal `Path { field: expr, .. }`. Keyword-led
                // forms were handled above, so a brace here is a literal.
                p.i += 1;
                let children = split_top_commas(body)
                    .into_iter()
                    .map(|seg| {
                        // Strip `field:` prefixes, keep the value exprs.
                        let mut q = 0usize;
                        if seg.len() >= 2
                            && seg[0].ident().is_some()
                            && seg[1].is_punct(':')
                            && !seg.get(2).is_some_and(|t| t.is_punct(':'))
                        {
                            q = 2;
                        }
                        parse_slice(&seg[q..])
                    })
                    .collect();
                Expr::Other {
                    children: vec![
                        Expr::Path { segs, line },
                        Expr::Other { children, line },
                    ],
                    line,
                }
            } else {
                Expr::Path { segs, line }
            }
        }
        Tree::Leaf(tok) if tok.kind == TokKind::Literal => {
            p.i += 1;
            Expr::Lit {
                text: tok.text.clone(),
                line,
            }
        }
        Tree::Group { delim: '{', trees, .. } => {
            p.i += 1;
            Expr::Block(parse_block(trees, line))
        }
        Tree::Group { delim, trees, .. } => {
            // Tuple/paren group or array literal.
            let d = *delim;
            p.i += 1;
            let children: Vec<Expr> = split_top_commas(trees)
                .into_iter()
                .map(parse_slice)
                .collect();
            if d == '(' && children.len() == 1 {
                let mut children = children;
                children.pop().expect("len checked")
            } else {
                Expr::Other { children, line }
            }
        }
        Tree::Leaf(_) => {
            // Stray punctuation: consume defensively.
            p.i += 1;
            Expr::Other {
                children: Vec::new(),
                line,
            }
        }
    };
    cur = postfix(p, cur);
    cur
}

/// Applies postfix operations: method calls, field access, calls,
/// indexing, `?`, `.await`, and `as` casts.
fn postfix(p: &mut P<'_>, mut cur: Expr) -> Expr {
    loop {
        // `.` postfix — but not `..` ranges.
        if p.peek().is_some_and(|t| t.is_punct('.'))
            && !p.peek_at(1).is_some_and(|t| t.is_punct('.'))
        {
            let Some(next) = p.peek_at(1) else { break };
            match next {
                Tree::Leaf(tok) if tok.kind == TokKind::Ident => {
                    if tok.text == "await" {
                        p.i += 2;
                        continue;
                    }
                    let mline = tok.line;
                    let method = tok.text.clone();
                    p.i += 2;
                    // Optional turbofish: `::<...>`.
                    let mut turbofish = String::new();
                    if p.at_path_sep() && p.peek_at(2).is_some_and(|t| t.is_punct('<')) {
                        p.i += 2;
                        turbofish = p.skip_angles();
                    }
                    if let Some(args) = p.peek().and_then(|t| t.group('(')) {
                        p.i += 1;
                        let args = split_top_commas(args)
                            .into_iter()
                            .map(parse_slice)
                            .collect();
                        cur = Expr::MethodCall {
                            recv: Box::new(cur),
                            method,
                            turbofish,
                            args,
                            line: mline,
                        };
                    } else {
                        cur = Expr::Field {
                            recv: Box::new(cur),
                            name: method,
                            line: mline,
                        };
                    }
                    continue;
                }
                Tree::Leaf(tok) if tok.kind == TokKind::Literal => {
                    let name = tok.text.clone();
                    let fline = tok.line;
                    p.i += 2;
                    cur = Expr::Field {
                        recv: Box::new(cur),
                        name,
                        line: fline,
                    };
                    continue;
                }
                _ => break,
            }
        }
        if let Some(t) = p.peek() {
            if let Some(args) = t.group('(') {
                let cline = t.line();
                p.i += 1;
                let args = split_top_commas(args).into_iter().map(parse_slice).collect();
                cur = Expr::Call {
                    callee: Box::new(cur),
                    args,
                    line: cline,
                };
                continue;
            }
            if let Some(idx) = t.group('[') {
                let iline = t.line();
                p.i += 1;
                cur = Expr::Index {
                    recv: Box::new(cur),
                    index: Box::new(parse_slice(idx)),
                    line: iline,
                };
                continue;
            }
            if t.is_punct('?') {
                let qline = t.line();
                p.i += 1;
                cur = Expr::Try {
                    expr: Box::new(cur),
                    line: qline,
                };
                continue;
            }
            if t.is_ident("as") {
                let aline = t.line();
                p.i += 1;
                let ty = parse_cast_type(p);
                cur = Expr::Cast {
                    expr: Box::new(cur),
                    ty,
                    line: aline,
                };
                continue;
            }
        }
        break;
    }
    cur
}

/// Parses the type after `as`: reference/pointer sigils, then one path
/// with optional generics, or a slice/array/tuple group.
fn parse_cast_type(p: &mut P<'_>) -> String {
    let start = p.i;
    while p.peek().is_some_and(|t| {
        t.is_punct('&')
            || t.is_punct('*')
            || t.is_ident("mut")
            || t.is_ident("const")
            || t.is_ident("dyn")
            || matches!(t, Tree::Leaf(tok) if tok.text.starts_with('\''))
    }) {
        p.i += 1;
    }
    if p.peek().is_some_and(|t| t.group('[').is_some() || t.group('(').is_some()) {
        p.i += 1;
    } else {
        // Path with `::` and generics.
        loop {
            if p.peek().and_then(Tree::ident).is_some() {
                p.i += 1;
                if p.peek().is_some_and(|t| t.is_punct('<')) {
                    p.skip_angles();
                }
                if p.at_path_sep() {
                    p.i += 2;
                    continue;
                }
            }
            break;
        }
    }
    render(&p.t[start..p.i])
}

/// Parses a match body into arm expressions (patterns dropped, guards and
/// bodies kept).
fn parse_match_arms(trees: &[Tree]) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        // Find the `=>` of this arm.
        let mut j = i;
        let mut arrow = None;
        while j < trees.len() {
            if trees[j].is_punct('=') && trees.get(j + 1).is_some_and(|t| t.is_punct('>')) {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(a) = arrow else {
            // Trailing trees without an arrow: parse loosely and stop.
            if i < trees.len() {
                out.push(parse_slice(&trees[i..]));
            }
            break;
        };
        // Guard: an `if` inside the pattern region.
        if let Some(k) = (i..a).find(|&k| trees[k].is_ident("if")) {
            out.push(parse_slice(&trees[k + 1..a]));
        }
        // Body: trees after `=>` until the arm-separating `,` at top level
        // — or a single block group.
        let body_start = a + 2;
        let mut end = body_start;
        if trees
            .get(body_start)
            .is_some_and(|t| t.group('{').is_some())
        {
            end = body_start + 1;
        } else {
            while end < trees.len() && !trees[end].is_punct(',') {
                end += 1;
            }
        }
        if body_start < trees.len() {
            out.push(parse_slice(&trees[body_start..end.min(trees.len())]));
        }
        i = end;
        if trees.get(i).is_some_and(|t| t.is_punct(',')) {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;

    fn parse(src: &str) -> SourceFile {
        parse_file("crates/x/src/lib.rs", src)
    }

    fn all_exprs(file: &SourceFile) -> Vec<String> {
        let mut out = Vec::new();
        file.for_each_fn(&mut |_, _, def| {
            if let Some(b) = &def.body {
                for s in &b.stmts {
                    s.walk(&mut |e| out.push(format!("{e:?}")));
                }
            }
        });
        out
    }

    #[test]
    fn parses_simple_fn() {
        let f = parse("pub fn add(a: u32, b: u32) -> u32 { a + b }");
        assert!(f.errors.is_empty());
        let mut found = false;
        f.for_each_fn(&mut |ty, is_test, def| {
            assert_eq!(ty, None);
            assert!(!is_test);
            assert_eq!(def.name, "add");
            assert_eq!(def.params.len(), 2);
            assert_eq!(def.ret, "u32");
            found = true;
        });
        assert!(found);
    }

    #[test]
    fn impl_methods_get_type_qualifier() {
        let f = parse("struct Csr; impl Csr { pub fn neighbors(&self, s: u32) -> u32 { s } }");
        let mut quals = Vec::new();
        f.for_each_fn(&mut |ty, _, def| quals.push((ty.map(str::to_string), def.name.clone())));
        assert_eq!(quals, vec![(Some("Csr".into()), "neighbors".into())]);
    }

    #[test]
    fn trait_impl_resolves_self_type_after_for() {
        let f = parse("impl Rule for MyRule { fn check(&self) {} }");
        let mut quals = Vec::new();
        f.for_each_fn(&mut |ty, _, _| quals.push(ty.map(str::to_string)));
        assert_eq!(quals, vec![Some("MyRule".into())]);
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let f = parse("#[cfg(test)] mod tests { #[test] fn t() { x.unwrap(); } }");
        let mut tests = Vec::new();
        f.for_each_fn(&mut |_, is_test, def| tests.push((def.name.clone(), is_test)));
        assert_eq!(tests, vec![("t".into(), true)]);
    }

    #[test]
    fn method_chain_and_cast() {
        let f = parse("fn f(v: Vec<usize>) { let n = v.len() as u32; }");
        assert!(f.errors.is_empty());
        let dump = all_exprs(&f).join("\n");
        assert!(dump.contains("Cast"), "cast parsed: {dump}");
        assert!(dump.contains("MethodCall"), "len() parsed: {dump}");
    }

    #[test]
    fn turbofish_collect_captured() {
        let f = parse("fn f(m: std::collections::HashMap<u32, u32>) { let v = m.keys().collect::<Vec<_>>(); }");
        let mut fish = Vec::new();
        f.for_each_fn(&mut |_, _, def| {
            if let Some(b) = &def.body {
                for s in &b.stmts {
                    s.walk(&mut |e| {
                        if let Expr::MethodCall { method, turbofish, .. } = e {
                            fish.push((method.clone(), turbofish.clone()));
                        }
                    });
                }
            }
        });
        assert!(fish
            .iter()
            .any(|(m, t)| m == "collect" && t.contains("Vec")));
    }

    #[test]
    fn for_loop_over_map() {
        let f = parse("fn f(m: HashMap<u32, u32>) { for (k, v) in m.iter() { drop(k); } }");
        let dump = all_exprs(&f).join("\n");
        assert!(dump.contains("For"), "{dump}");
    }

    #[test]
    fn macros_and_struct_literals() {
        let f = parse(
            "fn f() -> P { assert!(a <= b, \"msg\"); P { x: g(), y: 2 } }",
        );
        assert!(f.errors.is_empty());
        let dump = all_exprs(&f).join("\n");
        assert!(dump.contains("Macro"), "{dump}");
        assert!(dump.contains("Call"), "struct literal field call kept: {dump}");
    }

    #[test]
    fn unbalanced_braces_error() {
        let toks = lex("fn f() { let x = (1; }");
        let mut errors = Vec::new();
        let _ = build_trees(&toks, &mut errors);
        assert!(!errors.is_empty());
    }

    #[test]
    fn ranges_do_not_break_postfix() {
        let f = parse("fn f(n: usize) { for i in 0..n as u32 { g(i); } }");
        assert!(f.errors.is_empty());
        let dump = all_exprs(&f).join("\n");
        assert!(dump.contains("Cast"), "{dump}");
    }

    #[test]
    fn nested_fn_is_visited() {
        let f = parse("fn outer() { fn inner() { h(); } inner(); }");
        let mut names = Vec::new();
        f.for_each_fn(&mut |_, _, def| names.push(def.name.clone()));
        names.sort();
        assert_eq!(names, vec!["inner".to_string(), "outer".to_string()]);
    }

    #[test]
    fn closures_keep_bodies() {
        let f = parse("fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }");
        let dump = all_exprs(&f).join("\n");
        assert!(dump.contains("Closure"), "{dump}");
        assert!(dump.contains("total_cmp"), "{dump}");
    }

    #[test]
    fn match_arm_bodies_walked() {
        let f = parse("fn f(x: Option<u32>) -> u32 { match x { Some(v) => g(v), None => 0, } }");
        let dump = all_exprs(&f).join("\n");
        assert!(dump.contains("Match"), "{dump}");
        assert!(dump.contains("Call"), "{dump}");
    }

    #[test]
    fn if_else_chain_structured() {
        let f = parse("fn f(x: u32) -> u32 { if x > 1 { g(x) } else if x > 0 { 1 } else { 0 } }");
        assert!(f.errors.is_empty());
        let exprs = all_exprs(&f);
        let ifs = exprs.iter().filter(|e| e.starts_with("If {")).count();
        assert_eq!(ifs, 2, "{exprs:?}");
        assert!(exprs.iter().any(|e| e.starts_with("Call")), "{exprs:?}");
    }

    #[test]
    fn while_and_loop_structured() {
        let f = parse(
            "fn f(mut n: u32) { while n > 0 { n -= 1; } loop { if n == 0 { break; } g(); } }",
        );
        assert!(f.errors.is_empty());
        let dump = all_exprs(&f).join("\n");
        assert!(dump.contains("While"), "{dump}");
        assert!(dump.contains("Loop"), "{dump}");
        assert!(dump.contains("Break"), "{dump}");
    }

    #[test]
    fn return_and_try_structured() {
        let f = parse(
            "fn f(o: Option<u32>) -> Option<u32> { let v = o?; if v > 9 { return None; } Some(v + 1) }",
        );
        assert!(f.errors.is_empty());
        let dump = all_exprs(&f).join("\n");
        assert!(dump.contains("Try"), "{dump}");
        assert!(dump.contains("Return"), "{dump}");
    }

    #[test]
    fn assignments_structured() {
        let f = parse("fn f(v: &mut Vec<u64>, i: usize) { v[i] = 1; self.total += g(); }");
        assert!(f.errors.is_empty());
        let dump = all_exprs(&f).join("\n");
        assert_eq!(dump.matches("Assign {").count(), 2, "{dump}");
        assert!(dump.contains("op: \"=\""), "{dump}");
        assert!(dump.contains("op: \"+=\""), "{dump}");
    }

    #[test]
    fn comparisons_are_not_assignments() {
        let f = parse("fn f(a: u32, b: u32) -> bool { a <= b && a == b || a >= b }");
        assert!(f.errors.is_empty());
        let dump = all_exprs(&f).join("\n");
        assert!(!dump.contains("Assign"), "{dump}");
    }
}
