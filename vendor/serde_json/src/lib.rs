//! Vendored stand-in for `serde_json` (offline build).
//!
//! A thin facade over the vendored `serde` value tree: [`Value`], [`Map`],
//! [`Number`] re-exports, the [`to_string`] / [`to_string_pretty`] /
//! [`from_str`] entry points, and a literal-only [`json!`] macro.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

/// Serializes any [`serde::Serialize`] type to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_compact())
}

/// Serializes any [`serde::Serialize`] type to pretty JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&Value::parse_json(text)?)
}

/// Builds a [`Value`] from a single expression (`json!(3.25)`).
///
/// The vendored macro supports expression literals only — the full
/// object/array syntax of real serde_json is not needed offline.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::Value::from($e)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_through_facade() {
        let mut m = Map::new();
        m.insert("P@10".to_string(), json!(0.492));
        let v = Value::Object(m);
        let text = to_string_pretty(&v).expect("serializes");
        let back: Value = from_str(&text).expect("parses");
        assert_eq!(back.get("P@10").and_then(Value::as_f64), Some(0.492));
    }

    #[test]
    fn map_collects_from_iterator() {
        let m: Map<String, Value> = [("a".to_string(), json!(1u32))].into_iter().collect();
        assert!(m.contains_key("a"));
    }
}
