//! Declarative motif patterns.
//!
//! The paper crafts its two motifs by hand and closes with: "We need to
//! expand our understanding of KBs, and study what other motifs may be
//! relevant for other KBs … we are already working on a learning
//! algorithm that is capable of identifying such motifs automatically."
//!
//! [`PatternMotif`] factors every motif in this family into two
//! orthogonal conditions — how the expansion article must be *linked* to
//! the query node, and how their *categories* must relate — making the
//! space enumerable for the learner in [`crate::learn`]. The paper's
//! motifs are two points of this space:
//!
//! * triangular ≡ `Mutual` link + `Superset` categories,
//! * square ≡ `Mutual` link + `Adjacent` categories.

use kbgraph::{ArticleId, CategoryId, KbGraph};

use crate::motif::{Motif, MotifKind};

/// How the candidate article must be hyperlinked with the query node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkCondition {
    /// Reciprocal links in both directions (the paper's "doubly linked").
    Mutual,
    /// A link from the query node to the candidate suffices.
    OutLink,
    /// A link in either direction suffices.
    AnyDirection,
}

/// How the candidate's categories must relate to the query node's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CategoryCondition {
    /// `cats(candidate) ⊇ cats(query)` — the triangular condition.
    /// Instance count: one per category of the query node.
    Superset,
    /// At least one category in common. Instance count: number of shared
    /// categories.
    SharedAny,
    /// Some category of one is a direct sub-/super-category of some
    /// category of the other — the square condition. Instance count:
    /// number of adjacent category pairs.
    Adjacent,
    /// No category requirement (pure link motif). Instance count 1.
    Unconstrained,
}

/// A motif defined by a link condition and a category condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternMotif {
    /// Link requirement.
    pub link: LinkCondition,
    /// Category requirement.
    pub category: CategoryCondition,
}

impl PatternMotif {
    /// The paper's triangular motif as a pattern.
    pub fn triangular() -> Self {
        PatternMotif {
            link: LinkCondition::Mutual,
            category: CategoryCondition::Superset,
        }
    }

    /// The paper's square motif as a pattern.
    pub fn square() -> Self {
        PatternMotif {
            link: LinkCondition::Mutual,
            category: CategoryCondition::Adjacent,
        }
    }

    /// Every pattern in the space (the learner's search grid).
    pub fn all() -> Vec<PatternMotif> {
        let links = [
            LinkCondition::Mutual,
            LinkCondition::OutLink,
            LinkCondition::AnyDirection,
        ];
        let cats = [
            CategoryCondition::Superset,
            CategoryCondition::SharedAny,
            CategoryCondition::Adjacent,
            CategoryCondition::Unconstrained,
        ];
        let mut out = Vec::with_capacity(links.len() * cats.len());
        for &link in &links {
            for &category in &cats {
                out.push(PatternMotif { link, category });
            }
        }
        out
    }

    /// Short display form, e.g. `mutual+superset`.
    pub fn name(&self) -> String {
        let l = match self.link {
            LinkCondition::Mutual => "mutual",
            LinkCondition::OutLink => "outlink",
            LinkCondition::AnyDirection => "anylink",
        };
        let c = match self.category {
            CategoryCondition::Superset => "superset",
            CategoryCondition::SharedAny => "shared",
            CategoryCondition::Adjacent => "adjacent",
            CategoryCondition::Unconstrained => "free",
        };
        format!("{l}+{c}")
    }

}

/// Candidate articles satisfying the link condition — the shared CSR
/// traversal behind both [`PatternMotif`] and [`crate::spec::MotifSpec`].
pub(crate) fn link_candidates(
    graph: &KbGraph,
    link: LinkCondition,
    query_node: ArticleId,
) -> Vec<ArticleId> {
    match link {
        LinkCondition::Mutual => graph.mutual_links(query_node),
        LinkCondition::OutLink => graph
            .out_links(query_node)
            .iter()
            .map(|&x| ArticleId::new(x))
            .collect(),
        LinkCondition::AnyDirection => {
            let mut v: Vec<u32> = graph
                .out_links(query_node)
                .iter()
                .chain(graph.in_links(query_node).iter())
                .copied()
                .collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(ArticleId::new).collect()
        }
    }
}

/// Number of motif instances the candidate closes under a category
/// condition (0 = no match) — shared by [`PatternMotif`] and
/// [`crate::spec::MotifSpec`].
pub(crate) fn category_instances(
    graph: &KbGraph,
    cond: CategoryCondition,
    query_node: ArticleId,
    cand: ArticleId,
) -> u32 {
    let qc = graph.categories_of(query_node);
    let cc = graph.categories_of(cand);
    match cond {
        CategoryCondition::Superset => {
            if !qc.is_empty() && graph.categories_superset(query_node, cand) {
                qc.len() as u32
            } else {
                0
            }
        }
        CategoryCondition::SharedAny => {
            // Sorted intersection size.
            let (mut i, mut j, mut shared) = (0, 0, 0u32);
            while i < qc.len() && j < cc.len() {
                match qc[i].cmp(&cc[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        shared += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            shared
        }
        CategoryCondition::Adjacent => {
            let mut squares = 0u32;
            for &a in qc {
                for &b in cc {
                    if a != b
                        && graph.category_adjacent(CategoryId::new(a), CategoryId::new(b))
                    {
                        squares += 1;
                    }
                }
            }
            squares
        }
        CategoryCondition::Unconstrained => 1,
    }
}

impl Motif for PatternMotif {
    fn kind(&self) -> MotifKind {
        // Patterns generalize both; report the closest classical kind.
        match self.category {
            CategoryCondition::Superset | CategoryCondition::SharedAny => MotifKind::Triangular,
            _ => MotifKind::Square,
        }
    }

    fn expansions_into(
        &self,
        graph: &KbGraph,
        query_node: ArticleId,
        out: &mut Vec<(ArticleId, u32)>,
    ) {
        for cand in link_candidates(graph, self.link, query_node) {
            if cand == query_node {
                continue;
            }
            let m = category_instances(graph, self.category, query_node, cand);
            if m > 0 {
                out.push((cand, m));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MotifSpec;
    use kbgraph::GraphBuilder;

    /// A graph exercising every condition: mutual pair with shared cats,
    /// one-way link, hierarchy-adjacent cats.
    fn world() -> (KbGraph, ArticleId) {
        let mut b = GraphBuilder::new();
        let q = b.add_article("q");
        let tri = b.add_article("tri");
        let sq = b.add_article("sq");
        let out = b.add_article("out");
        let c = b.add_category("c");
        let sub = b.add_category("sub");
        b.add_membership(q, c);
        b.add_membership(tri, c);
        b.add_membership(sq, sub);
        b.add_subcategory(sub, c);
        b.add_mutual_link(q, tri);
        b.add_mutual_link(q, sq);
        b.add_article_link(q, out);
        b.add_membership(out, c);
        (b.build(), q)
    }

    #[test]
    fn pattern_reproduces_triangular() {
        let (g, q) = world();
        let tri = g.find_article_by_title("tri").unwrap();
        let got = PatternMotif::triangular().expansions(&g, q);
        // "tri" shares q's single category; "sq" does not (only sub).
        assert_eq!(got, vec![(tri, 1)]);
        assert_eq!(got, MotifSpec::triangular().expansions(&g, q));
    }

    #[test]
    fn pattern_reproduces_square() {
        let (g, q) = world();
        let sq = g.find_article_by_title("sq").unwrap();
        let got = PatternMotif::square().expansions(&g, q);
        // "sq" is in sub, which is directly inside q's category c.
        assert_eq!(got, vec![(sq, 1)]);
        assert_eq!(got, MotifSpec::square().expansions(&g, q));
    }

    #[test]
    fn outlink_pattern_reaches_one_way_neighbors() {
        let (g, q) = world();
        let p = PatternMotif {
            link: LinkCondition::OutLink,
            category: CategoryCondition::SharedAny,
        };
        let names: Vec<u32> = p.expansions(&g, q).iter().map(|&(a, _)| a.raw()).collect();
        // "out" shares category c and is out-linked.
        let out = g.find_article_by_title("out").unwrap();
        assert!(names.contains(&out.raw()));
    }

    #[test]
    fn unconstrained_pattern_counts_one_per_candidate() {
        let (g, q) = world();
        let p = PatternMotif {
            link: LinkCondition::Mutual,
            category: CategoryCondition::Unconstrained,
        };
        let exps = p.expansions(&g, q);
        assert_eq!(exps.len(), 2, "both mutual partners");
        assert!(exps.iter().all(|&(_, m)| m == 1));
    }

    #[test]
    fn shared_any_counts_intersection() {
        let mut b = GraphBuilder::new();
        let q = b.add_article("q");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        let c3 = b.add_category("c3");
        for c in [c1, c2] {
            b.add_membership(q, c);
            b.add_membership(x, c);
        }
        b.add_membership(x, c3);
        b.add_mutual_link(q, x);
        let g = b.build();
        let p = PatternMotif {
            link: LinkCondition::Mutual,
            category: CategoryCondition::SharedAny,
        };
        assert_eq!(p.expansions(&g, q), vec![(x, 2)]);
    }

    #[test]
    fn pattern_space_is_complete() {
        let all = PatternMotif::all();
        assert_eq!(all.len(), 12);
        assert!(all.contains(&PatternMotif::triangular()));
        assert!(all.contains(&PatternMotif::square()));
        let names: std::collections::HashSet<String> =
            all.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 12, "names must be distinct");
    }

    #[test]
    fn any_direction_superset_of_outlink() {
        let (g, q) = world();
        for cat in [
            CategoryCondition::Superset,
            CategoryCondition::SharedAny,
            CategoryCondition::Adjacent,
            CategoryCondition::Unconstrained,
        ] {
            let out: Vec<_> = PatternMotif { link: LinkCondition::OutLink, category: cat }
                .expansions(&g, q);
            let any: Vec<_> = PatternMotif { link: LinkCondition::AnyDirection, category: cat }
                .expansions(&g, q);
            for (a, _) in &out {
                assert!(any.iter().any(|(x, _)| x == a), "{cat:?}");
            }
        }
    }
}
