/root/repo/target/release/deps/searchlite-cc252a0ff0bf8636.d: crates/searchlite/src/lib.rs crates/searchlite/src/analysis.rs crates/searchlite/src/bm25.rs crates/searchlite/src/index.rs crates/searchlite/src/prf.rs crates/searchlite/src/ql.rs crates/searchlite/src/stats.rs crates/searchlite/src/structured.rs crates/searchlite/src/topk.rs

/root/repo/target/release/deps/libsearchlite-cc252a0ff0bf8636.rlib: crates/searchlite/src/lib.rs crates/searchlite/src/analysis.rs crates/searchlite/src/bm25.rs crates/searchlite/src/index.rs crates/searchlite/src/prf.rs crates/searchlite/src/ql.rs crates/searchlite/src/stats.rs crates/searchlite/src/structured.rs crates/searchlite/src/topk.rs

/root/repo/target/release/deps/libsearchlite-cc252a0ff0bf8636.rmeta: crates/searchlite/src/lib.rs crates/searchlite/src/analysis.rs crates/searchlite/src/bm25.rs crates/searchlite/src/index.rs crates/searchlite/src/prf.rs crates/searchlite/src/ql.rs crates/searchlite/src/stats.rs crates/searchlite/src/structured.rs crates/searchlite/src/topk.rs

crates/searchlite/src/lib.rs:
crates/searchlite/src/analysis.rs:
crates/searchlite/src/bm25.rs:
crates/searchlite/src/index.rs:
crates/searchlite/src/prf.rs:
crates/searchlite/src/ql.rs:
crates/searchlite/src/stats.rs:
crates/searchlite/src/structured.rs:
crates/searchlite/src/topk.rs:
