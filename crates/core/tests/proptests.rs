//! Property-based tests for the SQE core: motif semantics on random
//! graphs and rank-combination invariants.

use kbgraph::{ArticleId, CategoryId, GraphBuilder, KbGraph};
use proptest::prelude::*;
use sqe::combine::{combine_rankings, sqe_c, RankSegment};
use sqe::{Motif, MotifSet, MotifSpec, QueryGraphBuilder};

/// A random small KB: articles, categories, directed links, memberships,
/// subcategory edges.
#[derive(Debug, Clone)]
struct RandomKb {
    links: Vec<(u8, u8)>,
    memberships: Vec<(u8, u8)>,
    subcats: Vec<(u8, u8)>,
}

fn random_kb() -> impl Strategy<Value = RandomKb> {
    (
        prop::collection::vec((0u8..10, 0u8..10), 0..80),
        prop::collection::vec((0u8..10, 0u8..6), 0..30),
        prop::collection::vec((0u8..6, 0u8..6), 0..10),
    )
        .prop_map(|(links, memberships, subcats)| RandomKb {
            links,
            memberships,
            subcats,
        })
}

fn build(kb: &RandomKb) -> (KbGraph, Vec<ArticleId>) {
    let mut b = GraphBuilder::new();
    let arts: Vec<ArticleId> = (0..10).map(|i| b.add_article(&format!("a{i}"))).collect();
    let cats: Vec<CategoryId> = (0..6).map(|i| b.add_category(&format!("c{i}"))).collect();
    for &(s, d) in &kb.links {
        if s != d {
            b.add_article_link(arts[s as usize], arts[d as usize]);
        }
    }
    for &(a, c) in &kb.memberships {
        b.add_membership(arts[a as usize], cats[c as usize]);
    }
    for &(c, p) in &kb.subcats {
        b.add_subcategory(cats[c as usize], cats[p as usize]);
    }
    (b.build(), arts)
}

proptest! {
    /// Every motif expansion is doubly linked with the query node, never
    /// the query node itself, and satisfies the motif's category
    /// condition.
    #[test]
    fn motif_postconditions(kb in random_kb(), anchor in 0usize..10) {
        let (g, arts) = build(&kb);
        let qn = arts[anchor];
        for (a, m) in MotifSpec::triangular().expansions(&g, qn) {
            prop_assert!(m >= 1);
            prop_assert!(a != qn);
            prop_assert!(g.doubly_linked(qn, a));
            prop_assert!(g.categories_superset(qn, a));
            // The triangle count equals the anchor's category count.
            prop_assert_eq!(m as usize, g.categories_of(qn).len());
        }
        for (a, m) in MotifSpec::square().expansions(&g, qn) {
            prop_assert!(m >= 1);
            prop_assert!(a != qn);
            prop_assert!(g.doubly_linked(qn, a));
            // At least one hierarchy-adjacent category pair exists.
            let mut found = false;
            for &cq in g.categories_of(qn) {
                for &cc in g.categories_of(a) {
                    if cq != cc
                        && g.category_adjacent(CategoryId::new(cq), CategoryId::new(cc))
                    {
                        found = true;
                    }
                }
            }
            prop_assert!(found);
        }
    }

    /// T&S multiplicities decompose as T + S for every article.
    #[test]
    fn union_decomposes(kb in random_kb(), anchor in 0usize..10) {
        let (g, arts) = build(&kb);
        let qn = [arts[anchor]];
        let t = QueryGraphBuilder::from_set(&g, &MotifSet::triangular()).build(&qn);
        let s = QueryGraphBuilder::from_set(&g, &MotifSet::square()).build(&qn);
        let ts = QueryGraphBuilder::from_set(&g, &MotifSet::t_and_s()).build(&qn);
        let mut all: Vec<ArticleId> = t
            .expansions
            .iter()
            .chain(s.expansions.iter())
            .chain(ts.expansions.iter())
            .map(|&(a, _)| a)
            .collect();
        all.sort_unstable();
        all.dedup();
        for a in all {
            prop_assert_eq!(ts.multiplicity(a), t.multiplicity(a) + s.multiplicity(a));
        }
    }

    /// Motif expansion counts are monotone in query-node sets: more query
    /// nodes can only reach at least as many expansion articles (modulo
    /// the exclusion of the query nodes themselves).
    #[test]
    fn more_query_nodes_reach_no_fewer(kb in random_kb(), a1 in 0usize..10, a2 in 0usize..10) {
        prop_assume!(a1 != a2);
        let (g, arts) = build(&kb);
        let builder = QueryGraphBuilder::from_set(&g, &MotifSet::t_and_s());
        let single = builder.build(&[arts[a1]]);
        let both = builder.build(&[arts[a1], arts[a2]]);
        for &(a, m1) in &single.expansions {
            if a != arts[a2] {
                prop_assert!(both.multiplicity(a) >= m1);
            }
        }
    }

    /// Combined rankings contain no duplicates, respect segment budget,
    /// and preserve each source's internal order.
    #[test]
    fn combination_invariants(
        a in prop::collection::vec(0u32..30, 0..30),
        b in prop::collection::vec(0u32..30, 0..30),
        cut in 1usize..20,
    ) {
        let dedup = |v: Vec<u32>| -> Vec<String> {
            let mut seen = std::collections::HashSet::new();
            v.into_iter().filter(|x| seen.insert(*x)).map(|x| format!("d{x}")).collect()
        };
        let ra = dedup(a);
        let rb = dedup(b);
        let combined = combine_rankings(&[
            RankSegment { run: &ra, until_rank: cut },
            RankSegment { run: &rb, until_rank: usize::MAX },
        ]);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        prop_assert!(combined.iter().all(|d| seen.insert(d.clone())));
        // Union coverage: every combined doc comes from a source.
        for d in &combined {
            prop_assert!(ra.contains(d) || rb.contains(d));
        }
        // Source-order preservation within each segment's contribution.
        let positions: Vec<usize> = ra
            .iter()
            .filter_map(|d| combined.iter().position(|x| x == d))
            .collect();
        let head: Vec<usize> = positions.iter().copied().take_while(|&p| p < cut).collect();
        let mut sorted = head.clone();
        sorted.sort_unstable();
        prop_assert_eq!(head, sorted, "segment A order broken");
    }

    /// The paper's SQE_C stitching never exceeds its depth and starts
    /// with the SQE_T prefix.
    #[test]
    fn sqe_c_prefix_property(
        t in prop::collection::vec(0u32..50, 0..40),
        ts in prop::collection::vec(0u32..50, 0..40),
        s in prop::collection::vec(0u32..50, 0..40),
        depth in 1usize..30,
    ) {
        let dedup = |v: Vec<u32>| -> Vec<String> {
            let mut seen = std::collections::HashSet::new();
            v.into_iter().filter(|x| seen.insert(*x)).map(|x| format!("d{x}")).collect()
        };
        let (rt, rts, rs) = (dedup(t), dedup(ts), dedup(s));
        let combined = sqe_c(&rt, &rts, &rs, depth);
        prop_assert!(combined.len() <= depth);
        let prefix_len = combined.len().min(rt.len()).min(5).min(depth);
        for i in 0..prefix_len {
            prop_assert_eq!(&combined[i], &rt[i], "rank {} must come from SQE_T", i);
        }
    }

    /// Every enumerable [`MotifSpec`] round-trips through its index, its
    /// name, and the fingerprint of its singleton set.
    #[test]
    fn every_motif_spec_roundtrips_through_its_fingerprint(idx in 0usize..MotifSpec::COUNT) {
        let spec = MotifSpec::from_index(idx).expect("index is in range");
        prop_assert_eq!(spec.index(), idx);
        prop_assert_eq!(MotifSpec::from_name(&spec.name()), Some(spec));
        let set = MotifSet::single(spec);
        let fp = set.fingerprint();
        prop_assert_eq!(MotifSet::from_fingerprint(fp), set.clone());
        let parsed = sqe::MotifFingerprint::parse(&fp.to_string())
            .expect("fingerprint text form parses");
        prop_assert_eq!(fp, parsed);
        prop_assert_eq!(MotifSet::from_fingerprint(parsed), set);
    }

    /// Arbitrary motif sets (any subset of the spec space, in any input
    /// order, with duplicates) canonicalize and round-trip through their
    /// fingerprint and its textual form.
    #[test]
    fn motif_sets_roundtrip_through_fingerprints(
        indices in prop::collection::vec(0usize..MotifSpec::COUNT, 0..12),
    ) {
        let specs: Vec<MotifSpec> = indices
            .iter()
            .map(|&i| MotifSpec::from_index(i).expect("index is in range"))
            .collect();
        let set = MotifSet::new(specs);
        let fp = set.fingerprint();
        prop_assert_eq!(MotifSet::from_fingerprint(fp), set.clone());
        let parsed = sqe::MotifFingerprint::parse(&fp.to_string())
            .expect("fingerprint text form parses");
        prop_assert_eq!(MotifSet::from_fingerprint(parsed), set);
    }
}
