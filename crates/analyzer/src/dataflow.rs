//! Dataflow facts for the concurrency and determinism rule pack.
//!
//! Two analyses run over the per-function CFGs ([`crate::cfg`]):
//!
//! **Lock analysis** ([`lock_model`]). A guard acquisition is a
//! zero-argument `lock()`/`read()`/`write()` (or `try_` variant) method
//! call on a plain path/field receiver — `self.live.lock()`,
//! `view.read()` — or a call to an *accessor* function that itself
//! acquires a lock and returns a guard type (return type text contains
//! `Guard`). The lock's identity is the last field/path identifier of
//! the receiver (`live` for `self.live`). A may-held set of guards flows
//! forward through the CFG; guards die at `drop(g)` calls and at the
//! [`crate::cfg::Stmt::ScopeEnd`] of their binding scope. From the
//! fixpoint, each function exports:
//! - acquisition order pairs (lock held → lock acquired) for
//!   `lock-order-consistency`,
//! - calls made while holding guards for `no-blocking-while-locked`,
//! - guards that are returned or stored into fields for `guard-escape`.
//!
//! **Value provenance** ([`Prov`], [`eval_prov`]). A tiny two-bit lattice
//! tracking whether a value derives from a corpus-statistic integer
//! ([`STAT_NAMES`]: `coll_tf`, `doc_freq`, `collection_len`, ...) and
//! whether it has passed through `as f64`/`as f32`, a float literal, or
//! float-only arithmetic. `float-taint-before-merge` uses it to keep
//! statistic *merging* (compound assignment onto a stat field, as in
//! `Searcher::new`) exactly integral: float math belongs after the merge,
//! in the scoring accessors.
//!
//! Everything here is heuristic and name-based, in line with the rest of
//! the analyzer: precision comes from the workspace's own conventions,
//! escape hatches from `lint:allow`.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::ast::Expr;
use crate::cfg::{for_each_state, Cfg, Lattice, Stmt};
use crate::symbols::WorkspaceModel;

/// Zero-argument guard-producing methods on sync primitives.
pub const LOCK_METHODS: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Type text that denotes an unordered hash container.
pub fn is_hash_ty(t: &str) -> bool {
    t.contains("HashMap") || t.contains("HashSet")
}

/// Iterator-producing methods whose order is the container's.
pub const HASH_ITER_METHODS: &[&str] = &["iter", "iter_mut", "into_iter", "keys", "values", "drain"];

/// Corpus-statistic integer names (fields, accessors, locals) whose
/// merge must stay in exact integer arithmetic.
pub const STAT_NAMES: [&str; 7] = [
    "coll_tf",
    "collection_tf",
    "doc_freq",
    "collection_len",
    "num_docs",
    "doc_len",
    "total_tf",
];

/// One direct lock acquisition inside a function.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock identity (last receiver identifier, or the accessor's lock).
    pub lock: String,
    /// Binding the guard lives in; `None` for statement temporaries.
    pub binding: Option<String>,
    /// 1-based line.
    pub line: u32,
}

/// An acquisition performed while another lock was already held.
#[derive(Debug, Clone)]
pub struct OrderPair {
    /// Lock already held.
    pub held: String,
    /// Lock acquired under it.
    pub acquired: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// A call made while at least one guard was live.
#[derive(Debug, Clone)]
pub struct LockedCall {
    /// Locks held at the call, with their acquisition lines.
    pub locks: Vec<(String, u32)>,
    /// Callee name (method name or last path segment).
    pub callee: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// A guard leaving its acquiring function.
#[derive(Debug, Clone)]
pub struct Escape {
    /// The escaping guard's lock.
    pub lock: String,
    /// 1-based line of the escape point.
    pub line: u32,
    /// `"returned"` or `"stored"`.
    pub how: &'static str,
}

/// Per-function lock facts exported to the rules.
#[derive(Debug)]
pub struct FnLockFacts {
    /// Display name (`Type::name` inside an impl).
    pub qual: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn`.
    pub line: u32,
    /// Effective test-ness (attribute- or location-derived).
    pub is_test: bool,
    /// Return type text contains `Guard` — the audited accessor pattern.
    pub returns_guard: bool,
    /// Direct acquisitions in source order.
    pub acquires: Vec<Acquire>,
    /// (held → acquired) pairs observed at inner acquisitions.
    pub order_pairs: Vec<OrderPair>,
    /// Calls made under at least one held lock.
    pub locked_calls: Vec<LockedCall>,
    /// Guards returned or stored beyond the function.
    pub escapes: Vec<Escape>,
}

/// Workspace-wide lock facts.
#[derive(Debug)]
pub struct LockModel {
    /// One entry per function that touches a lock (directly or through
    /// an accessor); functions with no lock activity are omitted.
    pub fns: Vec<FnLockFacts>,
}

/// May-held guard set: binding name → (lock, acquisition line).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct HeldSet {
    pub(crate) guards: BTreeMap<String, (String, u32)>,
}

impl Lattice for HeldSet {
    fn bottom() -> Self {
        HeldSet::default()
    }
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.guards {
            if !self.guards.contains_key(k) {
                self.guards.insert(k.clone(), v.clone());
                changed = true;
            }
        }
        changed
    }
}

/// Last identifier of a path/field receiver chain (`live` for
/// `self.live`, `view` for `self.inner.view`); `None` when the receiver
/// is not a plain chain (calls, indexing).
pub(crate) fn chain_last_ident(e: &Expr) -> Option<String> {
    fn is_plain_chain(e: &Expr) -> bool {
        match e {
            Expr::Path { .. } => true,
            Expr::Field { recv, .. } => is_plain_chain(recv),
            _ => false,
        }
    }
    match e {
        Expr::Path { segs, .. } => {
            let last = segs.last()?;
            if last == "self" {
                // `self.lock()` locks the *object*, not a named lock; the
                // accessor summary covers that shape.
                return None;
            }
            Some(last.clone())
        }
        Expr::Field { name, recv, .. } if is_plain_chain(recv) => Some(name.clone()),
        _ => None,
    }
}

/// Direct acquisitions syntactically inside `e`: zero-argument lock
/// methods on plain chains, plus calls to known accessor functions
/// (`accessors` maps accessor fn name → lock it acquires).
pub(crate) fn find_acquires(e: &Expr, accessors: &BTreeMap<String, String>) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    e.walk(&mut |n| match n {
        Expr::MethodCall {
            recv,
            method,
            args,
            line,
            ..
        } => {
            if args.is_empty() && LOCK_METHODS.contains(&method.as_str()) {
                if let Some(lock) = chain_last_ident(recv) {
                    out.push((lock, *line));
                    return;
                }
            }
            if let Some(lock) = accessors.get(method.as_str()) {
                out.push((lock.clone(), *line));
            }
        }
        Expr::Call { callee, line, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if let Some(last) = segs.last() {
                    if let Some(lock) = accessors.get(last.as_str()) {
                        out.push((lock.clone(), *line));
                    }
                }
            }
        }
        _ => {}
    });
    out
}

/// Callee names invoked inside `e` (method names and last path segments
/// of direct calls), with lines. Lock methods themselves and the
/// ubiquitous `Result`/`Option` plumbing are excluded.
pub(crate) fn find_calls(e: &Expr) -> Vec<(String, u32)> {
    const PLUMBING: [&str; 10] = [
        "unwrap", "expect", "ok", "err", "map_err", "clone", "as_ref", "as_deref", "into", "len",
    ];
    let mut out = Vec::new();
    e.walk(&mut |n| match n {
        Expr::MethodCall { method, line, .. } => {
            if !LOCK_METHODS.contains(&method.as_str()) && !PLUMBING.contains(&method.as_str()) {
                out.push((method.clone(), *line));
            }
        }
        Expr::Call { callee, line, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if let Some(last) = segs.last() {
                    if !PLUMBING.contains(&last.as_str()) {
                        out.push((last.clone(), *line));
                    }
                }
            }
        }
        _ => {}
    });
    out
}

/// The acquisition whose guard is the *value* of `e`, if any: the lock
/// or accessor call itself, possibly wrapped in `unwrap`/`expect`/`?`.
/// An acquisition buried deeper (as a receiver of a further method call,
/// or an argument) produces a statement temporary, not a binding.
pub(crate) fn value_acquire(
    e: &Expr,
    accessors: &BTreeMap<String, String>,
) -> Option<(String, u32)> {
    match e {
        Expr::MethodCall {
            recv,
            method,
            args,
            line,
            ..
        } => {
            if (method == "unwrap" || method == "expect") && {
                // `.expect(msg)` takes the message, `.unwrap()` nothing.
                method == "expect" || args.is_empty()
            } {
                if let Some(a) = value_acquire(recv, accessors) {
                    return Some(a);
                }
            }
            if args.is_empty() && LOCK_METHODS.contains(&method.as_str()) {
                if let Some(lock) = chain_last_ident(recv) {
                    return Some((lock, *line));
                }
            }
            accessors.get(method.as_str()).map(|l| (l.clone(), *line))
        }
        Expr::Try { expr, .. } => value_acquire(expr, accessors),
        Expr::Call { callee, line, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if let Some(last) = segs.last() {
                    return accessors.get(last.as_str()).map(|l| (l.clone(), *line));
                }
            }
            None
        }
        _ => None,
    }
}

/// `drop(x)` / `std::mem::drop(x)` argument binding, if `e` is one.
pub(crate) fn dropped_binding(e: &Expr) -> Option<String> {
    if let Expr::Call { callee, args, .. } = e {
        if let Expr::Path { segs, .. } = callee.as_ref() {
            if segs.last().is_some_and(|s| s == "drop") && args.len() == 1 {
                if let Expr::Path { segs, .. } = &args[0] {
                    if segs.len() == 1 {
                        return Some(segs[0].clone());
                    }
                }
            }
        }
    }
    None
}

/// Accessor summaries — `fn view_guard(&self) -> RwLockReadGuard<..>`
/// acquiring exactly one lock exports that lock to its callers. Maps
/// accessor fn name → the lock its guard protects.
pub(crate) fn guard_accessors(model: &WorkspaceModel) -> BTreeMap<String, String> {
    let empty: BTreeMap<String, String> = BTreeMap::new();
    let mut accessors: BTreeMap<String, String> = BTreeMap::new();
    model.for_each_fn(&mut |_file, _ty, _is_test, def| {
        if !def.ret.contains("Guard") {
            return;
        }
        let Some(body) = &def.body else { return };
        let mut locks: BTreeSet<String> = BTreeSet::new();
        for s in &body.stmts {
            for (lock, _) in find_acquires(s, &empty) {
                locks.insert(lock);
            }
        }
        if locks.len() == 1 {
            let lock = locks
                .into_iter()
                .next()
                .expect("invariant: len == 1 checked on the line above");
            accessors.insert(def.name.clone(), lock);
        }
    });
    accessors
}

/// The held-set transfer function shared by every lockset analysis:
/// `drop(g)` kills, `let g = <acquire>` binds, rebinding and scope end
/// kill.
pub(crate) fn held_step(stmt: &Stmt<'_>, held: &mut HeldSet, accessors: &BTreeMap<String, String>) {
    match stmt {
        Stmt::Expr(e) => {
            if let Some(b) = dropped_binding(e) {
                held.guards.remove(&b);
            }
            if let Expr::Let {
                name: Some(n),
                init: Some(init),
                ..
            } = e
            {
                if let Some((lock, line)) = value_acquire(init, accessors) {
                    held.guards.insert(n.clone(), (lock, line));
                    return;
                }
                // Rebinding a name to a non-guard kills the old guard.
                held.guards.remove(n.as_str());
            }
        }
        Stmt::ScopeEnd(names) => {
            for n in names {
                held.guards.remove(n.as_str());
            }
        }
    }
}

/// Builds workspace-wide lock facts. Two passes: the first collects
/// per-function direct acquisitions and guard-returning accessors, the
/// second runs the held-set dataflow with accessor calls resolved.
pub fn lock_model(model: &WorkspaceModel) -> LockModel {
    let accessors = guard_accessors(model);

    // Pass 2: per-function dataflow.
    let mut fns: Vec<FnLockFacts> = Vec::new();
    model.for_each_fn(&mut |file, ty, is_test, def| {
        let Some(cfg) = Cfg::build(def) else { return };
        let qual = match ty {
            Some(t) => format!("{t}::{}", def.name),
            None => def.name.clone(),
        };
        let mut facts = FnLockFacts {
            qual,
            file: file.rel.clone(),
            line: def.line,
            is_test,
            returns_guard: def.ret.contains("Guard"),
            acquires: Vec::new(),
            order_pairs: Vec::new(),
            locked_calls: Vec::new(),
            escapes: Vec::new(),
        };
        let trailing = def
            .body
            .as_ref()
            .and_then(|b| b.stmts.last())
            .map(|s| s as *const Expr);
        let mut transfer =
            |stmt: &Stmt<'_>, held: &mut HeldSet| held_step(stmt, held, &accessors);
        let mut visit = |stmt: &Stmt<'_>, held: &HeldSet| {
            let Stmt::Expr(e) = stmt else { return };
            let acq = find_acquires(e, &accessors);
            for (lock, line) in &acq {
                let binding = match e {
                    Expr::Let {
                        name: Some(n),
                        init: Some(init),
                        ..
                    } if value_acquire(init, &accessors)
                        .is_some_and(|(l, ln)| l == *lock && ln == *line) =>
                    {
                        Some(n.clone())
                    }
                    _ => None,
                };
                facts.acquires.push(Acquire {
                    lock: lock.clone(),
                    binding,
                    line: *line,
                });
                for (held_lock, _) in held.guards.values() {
                    if held_lock != lock {
                        facts.order_pairs.push(OrderPair {
                            held: held_lock.clone(),
                            acquired: lock.clone(),
                            line: *line,
                        });
                    }
                }
            }
            // Locks relevant to calls in this statement: everything held
            // coming in, plus this statement's own acquisitions (the
            // guard is live for the rest of the statement).
            let mut locks: Vec<(String, u32)> = held
                .guards
                .values()
                .map(|(l, ln)| (l.clone(), *ln))
                .collect();
            for (lock, line) in &acq {
                if !locks.iter().any(|(l, _)| l == lock) {
                    locks.push((lock.clone(), *line));
                }
            }
            if !locks.is_empty() {
                for (callee, line) in find_calls(e) {
                    facts.locked_calls.push(LockedCall {
                        locks: locks.clone(),
                        callee,
                        line,
                    });
                }
            }
            // Escapes: guards returned or stored into fields.
            let escaping_root = |v: &Expr| -> Option<(String, u32)> {
                let root = v.root_ident()?;
                let (lock, _) = held.guards.get(root)?;
                Some((lock.clone(), v.line()))
            };
            match e {
                Expr::Return { value: Some(v), .. } => {
                    if let Some((lock, line)) = escaping_root(v) {
                        facts.escapes.push(Escape {
                            lock,
                            line,
                            how: "returned",
                        });
                    }
                }
                Expr::Assign { op, lhs, rhs, .. } if op == "=" => {
                    if matches!(lhs.as_ref(), Expr::Field { .. }) {
                        if let Some((lock, line)) = escaping_root(rhs) {
                            facts.escapes.push(Escape {
                                lock,
                                line,
                                how: "stored",
                            });
                        }
                    }
                }
                // A trailing `g` expression is an implicit return.
                Expr::Path { segs, line, .. }
                    if segs.len() == 1 && trailing == Some(*e as *const Expr) =>
                {
                    if let Some((lock, _)) = held.guards.get(segs[0].as_str()) {
                        facts.escapes.push(Escape {
                            lock: lock.clone(),
                            line: *line,
                            how: "returned",
                        });
                    }
                }
                _ => {}
            }
        };
        for_each_state(&cfg, HeldSet::default(), &mut transfer, &mut visit);
        if !facts.acquires.is_empty() || !facts.locked_calls.is_empty() {
            fns.push(facts);
        }
    });
    LockModel { fns }
}

/// Value provenance: does a value derive from a corpus-stat integer, and
/// has it passed through float territory?
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prov {
    /// Derives from a [`STAT_NAMES`] field/accessor/local.
    pub stat: bool,
    /// Has float type or passed through float arithmetic.
    pub float: bool,
}

impl Prov {
    fn or(self, o: Prov) -> Prov {
        Prov {
            stat: self.stat || o.stat,
            float: self.float || o.float,
        }
    }
}

/// Per-binding provenance environment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProvEnv {
    vars: BTreeMap<String, Prov>,
}

impl ProvEnv {
    /// Provenance of binding `name` (unknown → default).
    pub fn get(&self, name: &str) -> Prov {
        self.vars.get(name).copied().unwrap_or_default()
    }

    /// Joins `p` into binding `name`.
    pub fn set(&mut self, name: &str, p: Prov) {
        let cur = self.get(name);
        self.vars.insert(name.to_string(), cur.or(p));
    }
}

impl Lattice for ProvEnv {
    fn bottom() -> Self {
        ProvEnv::default()
    }
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, &p) in &other.vars {
            let cur = self.get(k);
            let joined = cur.or(p);
            if joined != cur || !self.vars.contains_key(k) {
                self.vars.insert(k.clone(), joined);
                changed = true;
            }
        }
        changed
    }
}

/// True for `f32`/`f64` cast targets (including `&f64` oddities).
pub fn is_float_ty(ty: &str) -> bool {
    let t = ty.trim_start_matches(['&', ' ']);
    t.starts_with("f32") || t.starts_with("f64")
}

fn is_float_lit(text: &str) -> bool {
    let t = text.trim_end_matches(['f', '3', '2', '6', '4']);
    t.chars().next().is_some_and(|c| c.is_ascii_digit()) && t.contains('.')
}

/// Float-producing methods (beyond casts and literals).
const FLOAT_METHODS: [&str; 9] = [
    "ln", "ln_1p", "log2", "log10", "powf", "powi", "sqrt", "exp", "recip",
];

/// Evaluates the provenance of an expression under `env`.
pub fn eval_prov(e: &Expr, env: &ProvEnv) -> Prov {
    let mut p = Prov::default();
    e.walk(&mut |n| match n {
        Expr::Path { segs, .. } => {
            if segs.len() == 1 {
                p = p.or(env.get(&segs[0]));
            }
            if segs.iter().any(|s| STAT_NAMES.contains(&s.as_str())) {
                p.stat = true;
            }
        }
        Expr::Field { name, .. } => {
            if STAT_NAMES.contains(&name.as_str()) {
                p.stat = true;
            }
        }
        Expr::MethodCall { method, .. } => {
            if STAT_NAMES.contains(&method.as_str()) {
                p.stat = true;
            }
            if FLOAT_METHODS.contains(&method.as_str()) {
                p.float = true;
            }
        }
        Expr::Cast { ty, .. } => {
            if is_float_ty(ty) {
                p.float = true;
            }
        }
        Expr::Lit { text, .. } => {
            if is_float_lit(text) {
                p.float = true;
            }
        }
        _ => {}
    });
    p
}

/// One float-taint violation inside a stat-merging function.
#[derive(Debug)]
pub struct TaintFinding {
    /// Function display name.
    pub qual: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable description of the violation.
    pub what: String,
}

/// True when the assignment target names a corpus statistic
/// (`coll_tf[g] += ..`, `self.collection_len += ..`).
fn stat_target(lhs: &Expr) -> bool {
    let mut hit = false;
    lhs.walk(&mut |n| match n {
        Expr::Path { segs, .. } => {
            if segs.iter().any(|s| STAT_NAMES.contains(&s.as_str())) {
                hit = true;
            }
        }
        Expr::Field { name, .. } => {
            if STAT_NAMES.contains(&name.as_str()) {
                hit = true;
            }
        }
        _ => {}
    });
    hit
}

/// Scans the workspace for float taint crossing the exact-integer stat
/// merge boundary. Scope: non-test functions that *accumulate* into a
/// stat-named target via compound assignment (the merge functions). In
/// those, both float-tainted accumulation and float casts of
/// stat-derived values are violations; float math in non-merging
/// accessors (`collection_prob`) is legal.
pub fn float_taint(model: &WorkspaceModel) -> Vec<TaintFinding> {
    let mut out = Vec::new();
    model.for_each_fn(&mut |file, ty, is_test, def| {
        if is_test {
            return;
        }
        let Some(cfg) = Cfg::build(def) else { return };
        // Is this a merge function? (any compound assignment onto a
        // stat-named target anywhere in the body)
        let mut merges = false;
        if let Some(body) = &def.body {
            for s in &body.stmts {
                s.walk(&mut |n| {
                    if let Expr::Assign { op, lhs, .. } = n {
                        if op != "=" && stat_target(lhs) {
                            merges = true;
                        }
                    }
                });
            }
        }
        if !merges {
            return;
        }
        let qual = match ty {
            Some(t) => format!("{t}::{}", def.name),
            None => def.name.clone(),
        };
        let mut transfer = |stmt: &Stmt<'_>, env: &mut ProvEnv| {
            let Stmt::Expr(e) = stmt else { return };
            e.walk(&mut |n| match n {
                Expr::Let {
                    name: Some(nm),
                    init: Some(init),
                    ..
                } => env.set(nm, eval_prov(init, env)),
                Expr::Assign { lhs, rhs, .. } => {
                    if let Expr::Path { segs, .. } = lhs.as_ref() {
                        if segs.len() == 1 {
                            env.set(&segs[0], eval_prov(rhs, env));
                        }
                    }
                }
                _ => {}
            });
        };
        let mut visit = |stmt: &Stmt<'_>, env: &ProvEnv| {
            let Stmt::Expr(e) = stmt else { return };
            e.walk(&mut |n| match n {
                Expr::Assign { op, lhs, rhs, line } => {
                    if op != "=" && stat_target(lhs) && eval_prov(rhs, env).float {
                        out.push(TaintFinding {
                            qual: qual.clone(),
                            file: file.rel.clone(),
                            line: *line,
                            what: format!(
                                "float-tainted value accumulated into corpus stat `{}`",
                                lhs.text()
                            ),
                        });
                    }
                }
                Expr::Cast { expr, ty, line } => {
                    if is_float_ty(ty) && eval_prov(expr, env).stat {
                        out.push(TaintFinding {
                            qual: qual.clone(),
                            file: file.rel.clone(),
                            line: *line,
                            what: format!(
                                "corpus stat `{}` cast to `{}` before the exact-integer merge",
                                expr.text(),
                                ty
                            ),
                        });
                    }
                }
                _ => {}
            });
        };
        for_each_state(&cfg, ProvEnv::default(), &mut transfer, &mut visit);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses sources into a model for unit tests.
    fn model_of(files: &[(&str, &str)]) -> WorkspaceModel {
        let parsed: Vec<crate::ast::SourceFile> = files
            .iter()
            .map(|(rel, src)| crate::parser::parse_file(rel, src))
            .collect();
        WorkspaceModel::new(parsed)
    }

    #[test]
    fn direct_acquisition_and_scope_drop() {
        let m = model_of(&[(
            "crates/x/src/lib.rs",
            "impl S { fn f(&self) { let g = self.live.lock().unwrap(); g.push(1); } \
             fn after(&self) { tail(); } }",
        )]);
        let lm = lock_model(&m);
        assert_eq!(lm.fns.len(), 1);
        let f = &lm.fns[0];
        assert_eq!(f.qual, "S::f");
        assert_eq!(f.acquires.len(), 1);
        assert_eq!(f.acquires[0].lock, "live");
        assert_eq!(f.acquires[0].binding.as_deref(), Some("g"));
        // push happens under the lock.
        assert!(f.locked_calls.iter().any(|c| c.callee == "push"));
    }

    #[test]
    fn drop_releases_before_call() {
        let m = model_of(&[(
            "crates/x/src/lib.rs",
            "fn f(live: L) { let g = live.lock().unwrap(); let n = g.len(); drop(g); \
             publish(n); }",
        )]);
        let lm = lock_model(&m);
        let f = &lm.fns[0];
        assert!(
            !f.locked_calls.iter().any(|c| c.callee == "publish"),
            "publish runs after drop(g): {:?}",
            f.locked_calls
        );
    }

    #[test]
    fn order_pairs_recorded() {
        let m = model_of(&[(
            "crates/x/src/lib.rs",
            "impl S { fn ab(&self) { let a = self.alpha.lock().unwrap(); \
             let b = self.beta.lock().unwrap(); touch(a, b); } }",
        )]);
        let lm = lock_model(&m);
        let f = &lm.fns[0];
        assert_eq!(f.order_pairs.len(), 1);
        assert_eq!(f.order_pairs[0].held, "alpha");
        assert_eq!(f.order_pairs[0].acquired, "beta");
    }

    #[test]
    fn accessor_export_and_branch_merge() {
        let m = model_of(&[(
            "crates/x/src/lib.rs",
            "impl S { fn view_guard(&self) -> RwLockReadGuard<V> { self.view.read().unwrap() } \
             fn f(&self, c: bool) { if c { let g = self.view_guard(); work(g); } done(); } }",
        )]);
        let lm = lock_model(&m);
        let f = lm.fns.iter().find(|f| f.qual == "S::f").expect("facts");
        assert_eq!(f.acquires.len(), 1);
        assert_eq!(f.acquires[0].lock, "view");
        assert!(f.locked_calls.iter().any(|c| c.callee == "work"));
        // done() is after the branch scope closed: guard dead.
        assert!(
            !f.locked_calls.iter().any(|c| c.callee == "done"),
            "{:?}",
            f.locked_calls
        );
    }

    #[test]
    fn guard_escape_detected_and_accessor_exempt_shape() {
        let m = model_of(&[(
            "crates/x/src/lib.rs",
            "impl S { fn leak(&self) -> G { let g = self.live.lock().unwrap(); return g; } }",
        )]);
        let lm = lock_model(&m);
        let f = &lm.fns[0];
        assert!(!f.returns_guard, "ret `G` does not look like a guard");
        assert_eq!(f.escapes.len(), 1);
        assert_eq!(f.escapes[0].lock, "live");
        assert_eq!(f.escapes[0].how, "returned");
    }

    #[test]
    fn float_taint_flags_merge_and_spares_accessor() {
        let m = model_of(&[(
            "crates/x/src/lib.rs",
            "impl S {\n\
             fn merge(&mut self, o: &S) { let add = o.coll_tf as f64; \
              self.coll_tf += add as u64; }\n\
             fn collection_prob(&self) -> f64 { self.coll_tf as f64 / self.n as f64 }\n\
             }",
        )]);
        let findings = float_taint(&m);
        assert_eq!(findings.len(), 2, "{findings:?}");
        // Both the cast and the tainted accumulation are inside `merge`;
        // `collection_prob` (no compound stat assignment) is clean.
        assert!(findings.iter().all(|f| f.qual == "S::merge"));
    }

    #[test]
    fn integer_merge_is_clean() {
        let m = model_of(&[(
            "crates/x/src/lib.rs",
            "impl S { fn merge(&mut self, o: &S) { self.coll_tf += o.coll_tf; \
             self.num_docs += o.num_docs; } }",
        )]);
        let findings = float_taint(&m);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
