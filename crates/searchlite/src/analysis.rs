//! Text analysis: tokenization, stopword removal, Porter stemming.
//!
//! Indri's default English pipeline — lowercasing, alphanumeric
//! tokenization, stopping, Porter stemming — is reproduced here so that
//! documents, queries and expansion features are all normalized
//! identically (critical: expansion features are *titles*, matched as
//! n-grams of analyzed terms).

/// Sorted stopword list (a compact subset of the SMART list; the same set
/// must be applied to documents and queries, which this module guarantees
/// by construction).
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "cannot", "could", "did", "do", "does", "doing", "down", "during", "each", "few",
    "for", "from", "further", "had", "has", "have", "having", "he", "her", "here", "hers",
    "herself", "him", "himself", "his", "how", "i", "if", "in", "into", "is", "it", "its",
    "itself", "me", "more", "most", "my", "myself", "no", "nor", "not", "of", "off", "on", "once",
    "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over", "own", "same",
    "she", "should", "so", "some", "such", "than", "that", "the", "their", "theirs", "them",
    "themselves", "then", "there", "these", "they", "this", "those", "through", "to", "too",
    "under", "until", "up", "very", "was", "we", "were", "what", "when", "where", "which",
    "while", "who", "whom", "why", "with", "would", "you", "your", "yours", "yourself",
    "yourselves",
];

/// Returns true if `word` (already lowercased) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// A cheaply-cloneable analysis pipeline configuration.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Analyzer {
    /// Apply the Porter stemmer to each surviving token.
    pub stemming: bool,
    /// Drop stopwords.
    pub stopwords: bool,
}

impl Analyzer {
    /// The default English pipeline: lowercase → stop → Porter stem.
    pub fn english() -> Self {
        Analyzer {
            stemming: true,
            stopwords: true,
        }
    }

    /// A pipeline that only lowercases and tokenizes (useful in tests and
    /// for entity-title dictionaries where stemming would distort names).
    pub fn plain() -> Self {
        Analyzer {
            stemming: false,
            stopwords: false,
        }
    }

    /// Analyzes raw text into a token stream.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.analyze_into(text, &mut out);
        out
    }

    /// Analyzes into a caller-provided buffer (cleared first); the
    /// workhorse-buffer pattern avoids reallocation in indexing loops.
    pub fn analyze_into(&self, text: &str, out: &mut Vec<String>) {
        out.clear();
        for raw in tokenize(text) {
            let lower = raw.to_lowercase();
            if self.stopwords && is_stopword(&lower) {
                continue;
            }
            let token = if self.stemming {
                porter_stem(&lower)
            } else {
                lower
            };
            if !token.is_empty() {
                out.push(token);
            }
        }
    }
}

/// Splits text into maximal alphanumeric runs.
pub fn tokenize(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
}

// ---------------------------------------------------------------------
// Porter stemmer (M.F. Porter, "An algorithm for suffix stripping", 1980)
// ---------------------------------------------------------------------

/// Stems a lowercase ASCII word with the classic Porter algorithm.
/// Non-ASCII words and words shorter than 3 characters pass through
/// unchanged (Porter's own convention).
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.is_ascii() {
        return word.to_owned();
    }
    let mut w: Vec<u8> = word.bytes().collect();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("invariant: stemmer input is ascii, so output stays valid utf-8")
}

/// True if `w[i]` acts as a consonant.
fn is_cons(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_cons(w, i - 1),
        _ => true,
    }
}

/// Porter's measure m of `w[..len]`: the number of VC sequences.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_cons(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_cons(w, i) {
            i += 1;
        }
        if i == len {
            return m;
        }
        // Skip consonants: one full VC found.
        while i < len && is_cons(w, i) {
            i += 1;
        }
        m += 1;
        if i == len {
            return m;
        }
    }
}

/// True if `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_cons(w, i))
}

/// True if `w[..len]` ends with a double consonant.
fn ends_double_cons(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_cons(w, len - 1)
}

/// True if `w[..len]` ends consonant-vowel-consonant and the final
/// consonant is not w, x or y.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_cons(w, len - 3)
        && !is_cons(w, len - 2)
        && is_cons(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &[u8]) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix
}

/// If the word ends in `suffix`, returns the stem length, else None.
fn stem_len(w: &[u8], suffix: &[u8]) -> Option<usize> {
    if ends_with(w, suffix) {
        Some(w.len() - suffix.len())
    } else {
        None
    }
}

fn replace_suffix(w: &mut Vec<u8>, stem: usize, repl: &[u8]) {
    w.truncate(stem);
    w.extend_from_slice(repl);
}

fn step1a(w: &mut Vec<u8>) {
    // "sses"→"ss" and "ies"→"i" both drop two bytes.
    if ends_with(w, b"sses") || ends_with(w, b"ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, b"ss") {
        // no-op
    } else if ends_with(w, b"s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if let Some(stem) = stem_len(w, b"eed") {
        if measure(w, stem) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let trimmed = if let Some(stem) = stem_len(w, b"ed") {
        if has_vowel(w, stem) {
            w.truncate(stem);
            true
        } else {
            false
        }
    } else if let Some(stem) = stem_len(w, b"ing") {
        if has_vowel(w, stem) {
            w.truncate(stem);
            true
        } else {
            false
        }
    } else {
        false
    };
    if trimmed {
        if ends_with(w, b"at") || ends_with(w, b"bl") || ends_with(w, b"iz") {
            w.push(b'e');
        } else if ends_double_cons(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    let len = w.len();
    if len >= 2 && w[len - 1] == b'y' && has_vowel(w, len - 1) {
        w[len - 1] = b'i';
    }
}

/// (m>0) suffix → replacement pairs for step 2.
static STEP2: &[(&[u8], &[u8])] = &[
    (b"ational", b"ate"),
    (b"tional", b"tion"),
    (b"enci", b"ence"),
    (b"anci", b"ance"),
    (b"izer", b"ize"),
    (b"abli", b"able"),
    (b"alli", b"al"),
    (b"entli", b"ent"),
    (b"eli", b"e"),
    (b"ousli", b"ous"),
    (b"ization", b"ize"),
    (b"ation", b"ate"),
    (b"ator", b"ate"),
    (b"alism", b"al"),
    (b"iveness", b"ive"),
    (b"fulness", b"ful"),
    (b"ousness", b"ous"),
    (b"aliti", b"al"),
    (b"iviti", b"ive"),
    (b"biliti", b"ble"),
];

fn step2(w: &mut Vec<u8>) {
    for (suf, repl) in STEP2 {
        if let Some(stem) = stem_len(w, suf) {
            if measure(w, stem) > 0 {
                replace_suffix(w, stem, repl);
            }
            return;
        }
    }
}

static STEP3: &[(&[u8], &[u8])] = &[
    (b"icate", b"ic"),
    (b"ative", b""),
    (b"alize", b"al"),
    (b"iciti", b"ic"),
    (b"ical", b"ic"),
    (b"ful", b""),
    (b"ness", b""),
];

fn step3(w: &mut Vec<u8>) {
    for (suf, repl) in STEP3 {
        if let Some(stem) = stem_len(w, suf) {
            if measure(w, stem) > 0 {
                replace_suffix(w, stem, repl);
            }
            return;
        }
    }
}

static STEP4: &[&[u8]] = &[
    b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment", b"ent",
    b"ion", b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
];

fn step4(w: &mut Vec<u8>) {
    for suf in STEP4 {
        if let Some(stem) = stem_len(w, suf) {
            if measure(w, stem) > 1 {
                // "ion" only strips after s or t.
                if *suf == b"ion" && !(stem > 0 && matches!(w[stem - 1], b's' | b't')) {
                    return;
                }
                w.truncate(stem);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, b"e") {
        let stem = w.len() - 1;
        let m = measure(w, stem);
        if m > 1 || (m == 1 && !ends_cvc(w, stem)) {
            w.truncate(stem);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    let len = w.len();
    if len >= 2 && w[len - 1] == b'l' && ends_double_cons(w, len) && measure(w, len) > 1 {
        w.truncate(len - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stem(s: &str) -> String {
        porter_stem(s)
    }

    #[test]
    fn step1a_examples() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("caress"), "caress");
        assert_eq!(stem("cats"), "cat");
    }

    #[test]
    fn step1b_examples() {
        assert_eq!(stem("feed"), "feed");
        assert_eq!(stem("agreed"), "agre");
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("bled"), "bled");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("sing"), "sing");
        assert_eq!(stem("conflated"), "conflat");
        assert_eq!(stem("troubled"), "troubl");
        assert_eq!(stem("sized"), "size");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("tanned"), "tan");
        assert_eq!(stem("falling"), "fall");
        assert_eq!(stem("hissing"), "hiss");
        assert_eq!(stem("failing"), "fail");
        assert_eq!(stem("filing"), "file");
    }

    #[test]
    fn step1c_examples() {
        assert_eq!(stem("happy"), "happi");
        assert_eq!(stem("sky"), "sky");
    }

    #[test]
    fn step2_examples() {
        assert_eq!(stem("relational"), "relat");
        assert_eq!(stem("conditional"), "condit");
        assert_eq!(stem("vietnamization"), "vietnam");
        assert_eq!(stem("predication"), "predic");
        assert_eq!(stem("operator"), "oper");
        assert_eq!(stem("feudalism"), "feudal");
        assert_eq!(stem("hopefulness"), "hope");
        assert_eq!(stem("callousness"), "callous");
        assert_eq!(stem("formaliti"), "formal");
        assert_eq!(stem("sensitiviti"), "sensit");
    }

    #[test]
    fn step3_examples() {
        assert_eq!(stem("triplicate"), "triplic");
        assert_eq!(stem("formative"), "form");
        assert_eq!(stem("formalize"), "formal");
        assert_eq!(stem("electricity"), "electr");
        assert_eq!(stem("electrical"), "electr");
        assert_eq!(stem("hopeful"), "hope");
        assert_eq!(stem("goodness"), "good");
    }

    #[test]
    fn step4_examples() {
        assert_eq!(stem("revival"), "reviv");
        assert_eq!(stem("allowance"), "allow");
        assert_eq!(stem("inference"), "infer");
        assert_eq!(stem("airliner"), "airlin");
        assert_eq!(stem("adjustment"), "adjust");
        assert_eq!(stem("adoption"), "adopt");
        assert_eq!(stem("irritant"), "irrit");
        assert_eq!(stem("communism"), "commun");
        assert_eq!(stem("activate"), "activ");
        assert_eq!(stem("effective"), "effect");
    }

    #[test]
    fn step5_examples() {
        assert_eq!(stem("probate"), "probat");
        assert_eq!(stem("rate"), "rate");
        assert_eq!(stem("cease"), "ceas");
        assert_eq!(stem("controll"), "control");
        assert_eq!(stem("roll"), "roll");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("a"), "a");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(stem("füniculár"), "füniculár");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in ["funicular", "painting", "graffiti", "carriage", "street"] {
            let once = stem(w);
            let twice = stem(&once);
            // Porter is not idempotent in general, but it must be stable on
            // these evaluation-vocabulary words (sanity guard for indexing
            // query titles that were already stemmed).
            assert_eq!(once, twice, "word {w}");
        }
    }

    #[test]
    fn stopword_lookup() {
        assert!(is_stopword("the"));
        assert!(is_stopword("of"));
        assert!(!is_stopword("funicular"));
        // The static list must be sorted for binary search to be sound.
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn analyzer_pipeline() {
        let a = Analyzer::english();
        let toks = a.analyze("The cable cars of San Francisco are climbing!");
        assert_eq!(toks, vec!["cabl", "car", "san", "francisco", "climb"]);
    }

    #[test]
    fn analyzer_plain_keeps_stopwords() {
        let a = Analyzer::plain();
        let toks = a.analyze("The Cable-Cars");
        assert_eq!(toks, vec!["the", "cable", "cars"]);
    }

    #[test]
    fn tokenizer_splits_on_punctuation_and_keeps_digits() {
        let toks: Vec<&str> = tokenize("CHiC-2012, 50 queries!").collect();
        assert_eq!(toks, vec!["CHiC", "2012", "50", "queries"]);
    }

    #[test]
    fn analyze_into_reuses_buffer() {
        let a = Analyzer::english();
        let mut buf = Vec::new();
        a.analyze_into("cable cars", &mut buf);
        assert_eq!(buf, vec!["cabl", "car"]);
        a.analyze_into("funicular", &mut buf);
        assert_eq!(buf, vec!["funicular"]);
    }
}
