//! Greedy longest-match mention spotting.

use crate::dictionary::Dictionary;

/// A detected mention: a token span with dictionary hits.
#[derive(Debug, Clone, PartialEq)]
pub struct Mention {
    /// Token offset of the mention start.
    pub start: usize,
    /// Number of tokens covered.
    pub len: usize,
    /// The normalized surface form (dictionary key).
    pub surface: String,
}

/// Spots dictionary mentions in analyzed tokens, greedily preferring the
/// longest match at each position (Dexter's spotting strategy). Spans do
/// not overlap.
pub fn spot(dict: &Dictionary, tokens: &[String]) -> Vec<Mention> {
    let mut mentions = Vec::new();
    let max = dict.max_tokens().max(1);
    let mut i = 0;
    while i < tokens.len() {
        let mut matched = false;
        let upper = (tokens.len() - i).min(max);
        for len in (1..=upper).rev() {
            let key = tokens[i..i + len].join(" ");
            if dict.lookup(&key).is_some() {
                mentions.push(Mention {
                    start: i,
                    len,
                    surface: key,
                });
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            i += 1;
        }
    }
    mentions
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::ArticleId;

    fn dict() -> Dictionary {
        let mut d = Dictionary::new();
        d.add("cable car", ArticleId::new(1), 1.0);
        d.add("car", ArticleId::new(2), 0.8);
        d.add("street art", ArticleId::new(3), 1.0);
        d
    }

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|t| t.to_owned()).collect()
    }

    #[test]
    fn longest_match_wins() {
        let m = spot(&dict(), &toks("historic cable car photos"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "cable car");
        assert_eq!((m[0].start, m[0].len), (1, 2));
    }

    #[test]
    fn shorter_match_when_longer_absent() {
        let m = spot(&dict(), &toks("red car race"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].surface, "car");
    }

    #[test]
    fn multiple_non_overlapping_mentions() {
        let m = spot(&dict(), &toks("cable car near street art"));
        let surfaces: Vec<&str> = m.iter().map(|x| x.surface.as_str()).collect();
        assert_eq!(surfaces, vec!["cable car", "street art"]);
    }

    #[test]
    fn no_mentions_in_unknown_text() {
        assert!(spot(&dict(), &toks("quiet mountain village")).is_empty());
    }

    #[test]
    fn empty_tokens() {
        assert!(spot(&dict(), &[]).is_empty());
    }

    #[test]
    fn consumed_span_not_reused() {
        // "car" inside "cable car" must not produce a second mention.
        let m = spot(&dict(), &toks("cable car"));
        assert_eq!(m.len(), 1);
    }
}
