//! Workspace facade for the SQE reproduction.
//!
//! This crate re-exports the member crates and provides small helpers for
//! the examples and cross-crate integration tests. The interesting code
//! lives in the members:
//!
//! * [`kbgraph`] — knowledge-base graph substrate,
//! * [`searchlite`] — Indri-like retrieval engine,
//! * [`entitylink`] — Dexter/Alchemy-style entity linker,
//! * [`synthwiki`] — calibrated synthetic Wikipedia + benchmark datasets,
//! * [`sqe`] — Structural Query Expansion (the paper's contribution),
//! * [`ireval`] — trec_eval-style evaluation.

pub use entitylink;
pub use ireval;
pub use kbgraph;
pub use searchlite;
pub use sqe;
pub use synthwiki;

use kbgraph::{ArticleId, GraphBuilder, KbGraph};
use searchlite::{Analyzer, Index, IndexBuilder};

/// A hand-written miniature world modelled on the paper's Figure 4
/// examples ("cable cars" → funicular via the triangular motif;
/// "graffiti street art" → Banksy via the square motif). Used by the
/// quickstart example and the integration tests.
pub struct DemoWorld {
    /// The knowledge-base graph.
    pub graph: KbGraph,
    /// The indexed caption collection.
    pub index: Index,
    /// The "Cable car" article.
    pub cable_car: ArticleId,
    /// The "Funicular" article.
    pub funicular: ArticleId,
    /// The "Graffiti" article.
    pub graffiti: ArticleId,
    /// The "Banksy" article.
    pub banksy: ArticleId,
}

/// Builds the demo world.
pub fn demo_world() -> DemoWorld {
    let mut b = GraphBuilder::new();
    // Figure 4a: cable car ↔ funicular share their categories exactly.
    let cable_car = b.add_article("cable car");
    let funicular = b.add_article("funicular");
    let rail = b.add_category("mountain railways");
    b.add_mutual_link(cable_car, funicular);
    b.add_membership(cable_car, rail);
    b.add_membership(funicular, rail);
    // Figure 4b: graffiti ↔ banksy with hierarchy-adjacent categories.
    let graffiti = b.add_article("graffiti");
    let banksy = b.add_article("banksy");
    let street_art = b.add_category("street art");
    let artists = b.add_category("graffiti artists");
    b.add_mutual_link(graffiti, banksy);
    b.add_membership(graffiti, street_art);
    b.add_membership(banksy, artists);
    b.add_subcategory(artists, street_art);
    // Unrelated structure that must never expand anything.
    let opera = b.add_article("opera house");
    let music = b.add_category("music venues");
    b.add_membership(opera, music);
    b.add_article_link(opera, cable_car);
    let graph = b.build();

    let mut ib = IndexBuilder::new(Analyzer::english());
    for (id, text) in [
        ("img-001", "a red cable car climbing over the bay"),
        ("img-002", "historic funicular railway in the alps"),
        ("img-003", "the funicular station at the summit"),
        ("img-004", "stencil by banksy on a brick wall"),
        ("img-005", "colorful graffiti street art on city walls"),
        ("img-006", "opera house facade at dusk"),
        ("img-007", "market stalls with fruit and vegetables"),
        ("img-008", "mountain village under the snow"),
    ] {
        ib.add_document(id, text).expect("demo ids are unique");
    }
    let index = ib.build();
    DemoWorld {
        graph,
        index,
        cable_car,
        funicular,
        graffiti,
        banksy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_world_builds() {
        let w = demo_world();
        assert!(w.graph.doubly_linked(w.cable_car, w.funicular));
        assert_eq!(w.index.num_docs(), 8);
    }
}
