//! Run builders: every retrieval configuration of the paper's evaluation.

use ireval::Run;
use kbgraph::ArticleId;
use searchlite::prf::{self, PrfParams};
use searchlite::ql::SearchHit;
use searchlite::{Index, Query, Searcher};
use sqe::{combine, expand, MotifSet, SqePipeline};
use synthwiki::queries::QuerySpec;
use synthwiki::Dataset;

use crate::context::ExperimentContext;

/// Which query parts feed a PRF run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrfBase {
    /// The user's keywords (`PRF_Q`).
    UserQuery,
    /// The query-entity titles (`PRF_E`).
    Entities,
    /// Both (`PRF_Q&E`).
    Both,
}

/// Builds runs for one dataset.
pub struct DatasetRunner<'a> {
    ctx: &'a ExperimentContext,
    dataset: &'a Dataset,
    index: &'a Index,
    /// One-segment searcher view over `index`, built once so every
    /// [`DatasetRunner::pipeline`] call is a cheap `Arc` clone.
    searcher: Searcher,
}

impl<'a> DatasetRunner<'a> {
    /// Creates a runner.
    pub fn new(ctx: &'a ExperimentContext, dataset: &'a Dataset, index: &'a Index) -> Self {
        DatasetRunner {
            ctx,
            dataset,
            index,
            searcher: Searcher::from_index(index.clone()),
        }
    }

    /// The dataset this runner evaluates.
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// The pipeline bound to this dataset's collection.
    pub fn pipeline(&self) -> SqePipeline<'_> {
        SqePipeline::new(&self.ctx.bed.kb.graph, self.searcher.clone(), self.ctx.sqe_config)
    }

    /// Manually selected query nodes (the generator's true targets).
    pub fn manual_nodes(&self, q: &QuerySpec) -> Vec<ArticleId> {
        q.targets
            .iter()
            .map(|&e| self.ctx.bed.kb.article_of[e])
            .collect()
    }

    /// Automatically linked query nodes (Dexter/Alchemy stage).
    pub fn auto_nodes(&self, q: &QuerySpec) -> Vec<ArticleId> {
        self.ctx
            .linker
            .link(&q.text)
            .into_iter()
            .take(3)
            .map(|l| l.article)
            .collect()
    }

    fn nodes(&self, q: &QuerySpec, auto: bool) -> Vec<ArticleId> {
        if auto {
            self.auto_nodes(q)
        } else {
            self.manual_nodes(q)
        }
    }

    fn collect(&self, name: &str, f: impl Fn(&QuerySpec, &SqePipeline<'_>) -> Vec<String>) -> Run {
        let pipeline = self.pipeline();
        let mut run = Run::new(name);
        for q in &self.dataset.queries {
            run.set_ranking(&q.id, f(q, &pipeline));
        }
        run
    }

    fn ids(&self, pipeline: &SqePipeline<'_>, hits: &[SearchHit]) -> Vec<String> {
        pipeline.external_ids(hits)
    }

    // -------------------------------------------------------- baselines --

    /// `QL_Q`: the user's keywords.
    pub fn run_ql_q(&self) -> Run {
        self.collect("QL_Q", |q, p| self.ids(p, &p.rank_user(&q.text)))
    }

    /// `QL_E`: the query-entity titles (manual or automatic selection).
    pub fn run_ql_e(&self, auto: bool) -> Run {
        let name = if auto { "QL_E (A)" } else { "QL_E (M)" };
        self.collect(name, |q, p| {
            self.ids(p, &p.rank_entities(&self.nodes(q, auto)))
        })
    }

    /// `QL_Q&E`: user keywords + entity titles.
    pub fn run_ql_qe(&self, auto: bool) -> Run {
        let name = if auto { "QL_Q&E (A)" } else { "QL_Q&E (M)" };
        self.collect(name, |q, p| {
            self.ids(p, &p.rank_user_entities(&q.text, &self.nodes(q, auto)))
        })
    }

    /// `QL_X`: expansion features alone (from the T&S query graph over
    /// manually selected nodes).
    pub fn run_ql_x(&self) -> Run {
        self.collect("QL_X", |q, p| {
            let qg = p.build_query_graph(&self.manual_nodes(q), &MotifSet::t_and_s());
            self.ids(p, &p.rank_expansion_only(&qg))
        })
    }

    // -------------------------------------------------------------- SQE --

    /// The paper's display name for a motif set, falling back to the
    /// set's own stable name for configurations outside the T/S family.
    pub fn sqe_run_name(motifs: &MotifSet) -> String {
        if *motifs == MotifSet::triangular() {
            "SQE_T".to_owned()
        } else if *motifs == MotifSet::square() {
            "SQE_S".to_owned()
        } else if *motifs == MotifSet::t_and_s() {
            "SQE_T&S".to_owned()
        } else if motifs.is_empty() {
            "SQE_none".to_owned()
        } else {
            format!("SQE[{}]", motifs.name())
        }
    }

    /// An SQE run over any motif set — `SQE_T`, `SQE_S`, `SQE_T&S` or an
    /// arbitrary configuration (manual/automatic entity selection).
    pub fn run_sqe(&self, motifs: &MotifSet, auto: bool) -> Run {
        let name = Self::sqe_run_name(motifs);
        let name = if auto { format!("{name} (A)") } else { name };
        self.collect(&name, |q, p| {
            let (hits, _) = p.rank_sqe(&q.text, &self.nodes(q, auto), motifs);
            self.ids(p, &hits)
        })
    }

    /// `SQE^UB`: expansion from the ground-truth optimal query graphs.
    pub fn run_sqe_ub(&self) -> Run {
        let gt = self.ctx.ground_truth(&self.dataset.name);
        self.collect("SQE_UB", |q, p| {
            let g = gt.graph(&q.id).expect("ground truth covers all queries");
            let hits = p.rank_with_expansions(&q.text, &g.query_nodes, &g.weighted_expansions());
            self.ids(p, &hits)
        })
    }

    /// `SQE_C`: the rank-range combination (1–5 T, 6–200 T&S, rest S).
    pub fn run_sqe_c(&self, auto: bool) -> Run {
        let name = if auto { "SQE_C (A)" } else { "SQE_C (M)" };
        self.collect(name, |q, p| p.rank_sqe_c(&q.text, &self.nodes(q, auto)))
    }

    // -------------------------------------------------------------- PRF --

    /// The paper's PRF parameters: pure Lavrenko relevance model (the
    /// reformulated query is the top-n feedback concepts).
    pub fn prf_params(&self) -> PrfParams {
        PrfParams {
            fb_docs: 10,
            fb_terms: 20,
            orig_weight: 0.0,
            exclude_base_terms: true,
            ql: self.ctx.sqe_config.ql,
        }
    }

    fn prf_base_query(&self, q: &QuerySpec, base: PrfBase, p: &SqePipeline<'_>) -> Query {
        let analyzer = self.index.analyzer();
        let nodes = self.manual_nodes(q);
        match base {
            PrfBase::UserQuery => expand::user_part(&q.text, analyzer),
            PrfBase::Entities => expand::entities_bag_part(p.graph(), &nodes, analyzer),
            PrfBase::Both => {
                let user = expand::user_part(&q.text, analyzer);
                let ents = expand::entities_bag_part(p.graph(), &nodes, analyzer);
                Query::combine(&[(user, 0.5), (ents, 0.5)])
            }
        }
    }

    /// `PRF_Q` / `PRF_E` / `PRF_Q&E`: relevance-model feedback from the
    /// given base query.
    pub fn run_prf(&self, base: PrfBase) -> Run {
        let name = match base {
            PrfBase::UserQuery => "PRF_Q",
            PrfBase::Entities => "PRF_E",
            PrfBase::Both => "PRF_Q&E",
        };
        let params = self.prf_params();
        self.collect(name, |q, p| {
            let query = self.prf_base_query(q, base, p);
            let hits = prf::rank_with_prf(&self.searcher, &query, params, self.ctx.sqe_config.depth);
            self.ids(p, &hits)
        })
    }

    /// `SQE_C/PRF`: SQE generates the expanded query, PRF reformulates it
    /// (RM3 interpolation keeps the SQE features), lists combined as in
    /// `SQE_C`.
    pub fn run_sqe_c_prf(&self) -> Run {
        let params = PrfParams {
            orig_weight: 0.5,
            exclude_base_terms: false,
            ..self.prf_params()
        };
        let depth = self.ctx.sqe_config.depth;
        self.collect("SQE_C/PRF", |q, p| {
            let nodes = self.manual_nodes(q);
            let mut lists: Vec<Vec<String>> = Vec::with_capacity(3);
            for motifs in [MotifSet::triangular(), MotifSet::t_and_s(), MotifSet::square()] {
                let eq = p.expand(&q.text, &nodes, &motifs);
                let hits = prf::rank_with_prf(&self.searcher, &eq.query, params, depth);
                lists.push(self.ids(p, &hits));
            }
            combine::sqe_c(&lists[0], &lists[1], &lists[2], depth)
        })
    }

    /// Mean number of expansion features per query for a motif config
    /// (the paper reports 0.76 / 20.96 / 20.48 for T / T&S / S).
    pub fn avg_expansion_features(&self, motifs: &MotifSet) -> f64 {
        let p = self.pipeline();
        if self.dataset.queries.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .dataset
            .queries
            .iter()
            .map(|q| {
                p.build_query_graph(&self.manual_nodes(q), motifs)
                    .num_expansions()
            })
            .sum();
        total as f64 / self.dataset.queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireval::precision::mean_precision;

    fn ctx() -> ExperimentContext {
        ExperimentContext::small()
    }

    #[test]
    fn all_runs_build_and_cover_queries() {
        let ctx = ctx();
        let r = ctx.runner("imageclef");
        let n = r.dataset().queries.len();
        for run in [
            r.run_ql_q(),
            r.run_ql_e(false),
            r.run_ql_e(true),
            r.run_ql_qe(false),
            r.run_ql_x(),
            r.run_sqe(&MotifSet::triangular(), false),
            r.run_sqe(&MotifSet::square(), false),
            r.run_sqe(&MotifSet::t_and_s(), false),
            r.run_sqe_ub(),
            r.run_sqe_c(false),
            r.run_sqe_c(true),
        ] {
            assert_eq!(run.num_queries(), n, "run {} incomplete", run.name());
        }
    }

    #[test]
    fn sqe_beats_user_query_baseline() {
        let ctx = ctx();
        let r = ctx.runner("imageclef");
        let qrels = ctx.qrels("imageclef");
        let base = mean_precision(&r.run_ql_q(), &qrels, 10);
        let sqe = mean_precision(&r.run_sqe(&MotifSet::t_and_s(), false), &qrels, 10);
        assert!(
            sqe > base,
            "SQE_T&S P@10 {sqe} must beat QL_Q P@10 {base}"
        );
    }

    #[test]
    fn upper_bound_is_strong() {
        let ctx = ctx();
        let r = ctx.runner("imageclef");
        let qrels = ctx.qrels("imageclef");
        let ub = mean_precision(&r.run_sqe_ub(), &qrels, 10);
        let base = mean_precision(&r.run_ql_q(), &qrels, 10);
        assert!(ub > base, "UB {ub} vs QL_Q {base}");
    }

    #[test]
    fn expansion_feature_counts_ordered() {
        let ctx = ctx();
        let r = ctx.runner("imageclef");
        let t = r.avg_expansion_features(&MotifSet::triangular());
        let s = r.avg_expansion_features(&MotifSet::square());
        let ts = r.avg_expansion_features(&MotifSet::t_and_s());
        assert!(t < s, "triangular ({t}) must be rarer than square ({s})");
        assert!(ts >= s, "union at least as large as square");
    }

    #[test]
    fn prf_runs_build() {
        let ctx = ctx();
        let r = ctx.runner("imageclef");
        let n = r.dataset().queries.len();
        assert_eq!(r.run_prf(PrfBase::UserQuery).num_queries(), n);
        assert_eq!(r.run_sqe_c_prf().num_queries(), n);
    }
}
