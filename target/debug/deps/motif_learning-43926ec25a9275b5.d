/root/repo/target/debug/deps/motif_learning-43926ec25a9275b5.d: tests/motif_learning.rs

/root/repo/target/debug/deps/motif_learning-43926ec25a9275b5: tests/motif_learning.rs

tests/motif_learning.rs:
