//! Vendored stand-in for `serde` (offline build).
//!
//! The real serde is a zero-copy streaming framework; this stand-in keeps
//! the *names* (`Serialize`, `Deserialize`, derive macros) but routes
//! everything through an owned JSON-like [`Value`] tree, which is all the
//! workspace needs: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, plus `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! The derive macros are re-exported from the companion `serde_derive`
//! proc-macro crate and generate `to_value` / `from_value` implementations
//! against this crate's traits.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

use std::fmt;

/// Serialization/deserialization error (shared with `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Error for a type mismatch while deserializing.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// A type that can convert itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type constructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches and deserializes a struct field from an object map.
///
/// Missing keys deserialize from `Null`, so `Option` fields tolerate
/// absence; everything else reports which field of which type was missing.
pub fn de_field<T: Deserialize>(m: &Map, key: &str, ty: &str) -> Result<T, Error> {
    match m.get(key) {
        Some(v) => T::from_value(v)
            .map_err(|e| Error::custom(format!("field `{key}` of `{ty}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{key}` of `{ty}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::expected("unsigned integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::expected("2-element array", "tuple")),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: object keys sorted (Map is ordered).
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                let mut out = Self::default();
                for (k, val) in m.iter() {
                    out.insert(k.clone(), V::from_value(val)?);
                }
                Ok(out)
            }
            _ => Err(Error::expected("object", "HashMap")),
        }
    }
}

impl<S: std::hash::BuildHasher> Serialize for std::collections::HashSet<String, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&String> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(|s| Value::String(s.clone())).collect())
    }
}

impl<S: std::hash::BuildHasher + Default> Deserialize for std::collections::HashSet<String, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => {
                let mut out = Self::default();
                for item in items {
                    out.insert(String::from_value(item)?);
                }
                Ok(out)
            }
            _ => Err(Error::expected("array", "HashSet")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, val) in self {
            m.insert(k.clone(), val.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                let mut out = Self::new();
                for (k, val) in m.iter() {
                    out.insert(k.clone(), V::from_value(val)?);
                }
                Ok(out)
            }
            _ => Err(Error::expected("object", "BTreeMap")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
