//! Generative property tests for the interprocedural summaries.
//!
//! A random call graph — cycles included — is rendered to source, and
//! an independent oracle computes the two transitive effects the
//! summaries claim to track:
//!
//! * **may-block**: a function blocks iff it can reach (over explicit
//!   calls or a tail call) a body that invokes an expensive name, and
//! * **return taint**: a thread-id source reaches a return value iff
//!   the chain of tail calls, followed with cycle detection, ends at a
//!   function returning `thread::current()`.
//!
//! The oracle is a plain reachability fixpoint / chain walk over the
//! generated adjacency, so agreement pins the SCC-ordered fixpoint in
//! [`analyzer::summaries::Summaries::build`] against recursion, mutual
//! recursion, and diamond sharing in one shot.

use analyzer::callgraph::CallGraph;
use analyzer::summaries::Summaries;
use analyzer::symbols::WorkspaceModel;
use proptest::prelude::*;

/// How a generated function produces its return value.
#[derive(Debug, Clone, Copy)]
enum Ret {
    /// `7` — clean literal.
    Lit,
    /// `x` — forwards the parameter.
    Param,
    /// `thread::current()` — a value-nondeterminism source.
    ThreadId,
    /// `f<j>(x)` — tail call; taint and blocking flow from `j`.
    Call(usize),
}

#[derive(Debug, Clone)]
struct Program {
    /// Per function: explicit callees (`let _ = f<j>(x);` statements).
    calls: Vec<Vec<usize>>,
    /// Per function: body invokes `open(x)` (an expensive name).
    expensive: Vec<bool>,
    ret: Vec<Ret>,
}

/// Generates at the maximum width (9 functions) and truncates to the
/// drawn size, reducing callee indices mod `n` — the vendored proptest
/// subset has no `prop_flat_map` for size-dependent strategies.
fn program_strategy() -> impl Strategy<Value = Program> {
    (
        3usize..10,
        prop::collection::vec(prop::collection::vec(0usize..9, 0..3), 9),
        prop::collection::vec(0u8..4, 9),
        prop::collection::vec((0u8..4, 0usize..9), 9),
    )
        .prop_map(|(n, calls, expensive, rets)| Program {
            calls: calls[..n]
                .iter()
                .map(|cs| cs.iter().map(|&j| j % n).collect())
                .collect(),
            // One in four bodies does expensive work.
            expensive: expensive[..n].iter().map(|&e| e == 0).collect(),
            ret: rets[..n]
                .iter()
                .map(|&(kind, j)| match kind {
                    0 => Ret::Lit,
                    1 => Ret::Param,
                    2 => Ret::ThreadId,
                    _ => Ret::Call(j % n),
                })
                .collect(),
        })
}

/// Renders the program as one source file of free functions.
fn render(p: &Program) -> String {
    let mut src = String::new();
    for i in 0..p.calls.len() {
        src.push_str(&format!("pub fn f{i}(x: u64) -> u64 {{\n"));
        for &j in &p.calls[i] {
            src.push_str(&format!("    let _ = f{j}(x);\n"));
        }
        if p.expensive[i] {
            src.push_str("    let _ = open(x);\n");
        }
        match p.ret[i] {
            Ret::Lit => src.push_str("    7\n"),
            Ret::Param => src.push_str("    x\n"),
            Ret::ThreadId => src.push_str("    thread::current()\n"),
            Ret::Call(j) => src.push_str(&format!("    f{j}(x)\n")),
        }
        src.push_str("}\n\n");
    }
    src
}

/// Full adjacency: explicit calls plus the tail call.
fn adjacency(p: &Program) -> Vec<Vec<usize>> {
    let mut adj = p.calls.clone();
    for (i, r) in p.ret.iter().enumerate() {
        if let Ret::Call(j) = r {
            adj[i].push(*j);
        }
    }
    adj
}

/// Oracle may-block: reachability to an expensive body over `adj`.
fn oracle_blocks(p: &Program) -> Vec<bool> {
    let adj = adjacency(p);
    let mut blocks = p.expensive.clone();
    loop {
        let mut changed = false;
        for i in 0..adj.len() {
            if !blocks[i] && adj[i].iter().any(|&j| blocks[j]) {
                blocks[i] = true;
                changed = true;
            }
        }
        if !changed {
            return blocks;
        }
    }
}

/// Oracle return taint: does the tail-call chain from `i` end at a
/// `thread::current()` return? A cycle without a source is clean.
fn oracle_thread_taint(p: &Program, mut i: usize) -> bool {
    let mut seen = vec![false; p.ret.len()];
    loop {
        if seen[i] {
            return false;
        }
        seen[i] = true;
        match p.ret[i] {
            Ret::ThreadId => return true,
            Ret::Call(j) => i = j,
            Ret::Lit | Ret::Param => return false,
        }
    }
}

proptest! {
    #[test]
    fn summaries_match_the_reachability_oracle(p in program_strategy()) {
        let src = render(&p);
        let file = analyzer::parser::parse_file("crates/x/src/gen.rs", &src);
        prop_assert!(file.errors.is_empty(), "generated source must parse: {:?}\n{src}", file.errors);
        let model = WorkspaceModel::new(vec![file]);
        let graph = CallGraph::build(&model);
        let sums = Summaries::build(&model, &graph);
        prop_assert_eq!(sums.fns.len(), p.calls.len());

        for i in 0..p.calls.len() {
            let name = format!("f{i}");
            let ids = graph.find(&name);
            prop_assert_eq!(ids.len(), 1, "exactly one node for {}", name);
            let s = &sums.fns[ids[0]];

            let want_blocks = oracle_blocks(&p)[i];
            prop_assert_eq!(
                s.blocks.is_some(),
                want_blocks,
                "{}: summary blocks={:?}, oracle={}\n{}",
                name, s.blocks, want_blocks, src
            );

            let want_thread = oracle_thread_taint(&p, i);
            let has_thread = s
                .ret_taint
                .value
                .iter()
                .any(|v| v.contains("thread id"));
            prop_assert_eq!(
                has_thread,
                want_thread,
                "{}: summary ret taint={:?}, oracle={}\n{}",
                name, s.ret_taint, want_thread, src
            );
        }
    }
}
