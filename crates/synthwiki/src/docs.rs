//! Document-collection generation.
//!
//! Collections imitate the paper's targets: short caption/metadata-style
//! records (Image CLEF image annotations, CHiC cultural-heritage entries).
//! Four document families are generated:
//!
//! 1. **relevant entity documents** — about entities in some query's
//!    relevance neighbourhood, sized so each query's relevant count lands
//!    near the configured mean;
//! 2. **hard negatives** — about same-topic entities *outside* the
//!    neighbourhood: lexically close, never relevant;
//! 3. **boilerplate** — per-domain catalogue records covering broad
//!    vocabulary with low per-word density; these are what pure
//!    pseudo-relevance feedback drifts onto (Section 4.3's PRF collapse);
//! 4. **background** — entity documents from unused topics plus pure
//!    noise, filling the collection to its configured size.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use crate::concepts::ConceptSpace;
use crate::config::CollectionConfig;
use crate::queries::QuerySpec;

/// One generated document.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Document {
    /// Stable external id, e.g. `"chic-d001234"`.
    pub id: String,
    /// The caption-like text.
    pub text: String,
    /// The entity the document is about (None for boilerplate/noise).
    pub about: Option<usize>,
    /// Whether a relevance assessor would judge this document relevant to
    /// a query about its entity (documents about the right entity but the
    /// wrong aspect are judged non-relevant in real benchmarks).
    pub judged_relevant: bool,
}

/// Generates the documents of one collection, honouring every query set
/// that runs over it (the CHiC collection serves both 2012 and 2013).
pub fn generate_documents(
    space: &ConceptSpace,
    cfg: &CollectionConfig,
    query_sets: &[&[QuerySpec]],
) -> Vec<Document> {
    generate_documents_with_means(space, cfg, query_sets, &[])
}

/// Like [`generate_documents`], but with a per-query-set override of the
/// mean judged-relevant count (parallel to `query_sets`; missing or
/// non-positive entries fall back to the collection default). The CHiC
/// 2012 and 2013 query sets share one collection but have different
/// relevant-count profiles (31.32 vs 50.6).
pub fn generate_documents_with_means(
    space: &ConceptSpace,
    cfg: &CollectionConfig,
    query_sets: &[&[QuerySpec]],
    set_means: &[f64],
) -> Vec<Document> {
    let mut docs: Vec<Document> = Vec::with_capacity(cfg.total_docs);
    stream_documents_with_means(space, cfg, query_sets, set_means, &mut |d| docs.push(d));
    docs
}

/// Emits generated documents through a sink, tracking the generated
/// count. The planted quota phases may overshoot `total` (the in-memory
/// path used to truncate at the end); the emitter drops the overshoot
/// *after* its text was generated, so the RNG consumption — and hence
/// every surviving document — is identical to the in-memory path.
struct Emitter<'s> {
    name: &'s str,
    total: usize,
    counter: usize,
    sink: &'s mut dyn FnMut(Document),
}

impl Emitter<'_> {
    fn push(&mut self, text: String, about: Option<usize>, judged_relevant: bool) {
        if self.counter < self.total {
            (self.sink)(Document {
                id: format!("{}-d{:06}", self.name, self.counter),
                text,
                about,
                judged_relevant,
            });
        }
        self.counter += 1;
    }

    /// Documents generated so far (including dropped overshoot).
    fn generated(&self) -> usize {
        self.counter
    }
}

/// The streaming core behind [`generate_documents_with_means`]: emits
/// each document through `sink` the moment its text exists, holding no
/// document buffer — memory stays bounded by the quota bookkeeping
/// (proportional to the query sets, not to `total_docs`). Guaranteed to
/// emit exactly the documents the in-memory path returns, in the same
/// order: both paths drive one RNG through the identical call sequence.
pub fn stream_documents_with_means(
    space: &ConceptSpace,
    cfg: &CollectionConfig,
    query_sets: &[&[QuerySpec]],
    set_means: &[f64],
    sink: &mut dyn FnMut(Document),
) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut em = Emitter {
        name: cfg.name,
        total: cfg.total_docs,
        counter: 0,
        sink,
    };

    // --- per-entity doc quotas from the queries -----------------------
    let mut quota: FxHashMap<usize, usize> = FxHashMap::default();
    let mut used_topics: Vec<usize> = Vec::new();
    let mut banned_topics: Vec<usize> = Vec::new();
    // topic → the aspect words of the query owning that topic.
    let mut topic_aspect: FxHashMap<usize, Vec<String>> = FxHashMap::default();
    // Expected judged-relevant fraction of a neighbourhood document.
    let blend = (cfg.p_aspect_in_doc * cfg.p_rel_with_aspect
        + (1.0 - cfg.p_aspect_in_doc) * cfg.p_rel_without_aspect)
        .clamp(0.05, 1.0);
    for (si, qs) in query_sets.iter().enumerate() {
        let mean = match set_means.get(si) {
            Some(&m) if m > 0.0 => m,
            _ => cfg.mean_relevant_per_query,
        };
        for q in *qs {
            used_topics.push(q.topic);
            topic_aspect.insert(q.topic, q.aspect_words.clone());
            if q.zero_relevant {
                banned_topics.push(q.topic);
                continue;
            }
            let spread = cfg.relevant_spread;
            let factor = 1.0 + rng.gen_range(-spread..spread);
            // Oversample by the expected judged fraction so the judged
            // relevant count lands near the configured mean.
            let oversample = 1.0 / blend;
            let n_q = ((mean * factor * oversample).round() as usize).max(3);
            // Distribute n_q documents over the neighbourhood entities,
            // with the *targets themselves* deliberately under-documented:
            // archives describe specific neighbourhood instances, not the
            // general concept the user names (the reason entity titles
            // alone cannot reach most of the relevant documents).
            let k = q.relevant_entities.len();
            for (i, &e) in q.relevant_entities.iter().enumerate() {
                let mut share = n_q / k + usize::from(i < n_q % k);
                if q.targets.contains(&e) {
                    share = (share as f64 * 0.35).round() as usize;
                }
                let slot = quota.entry(e).or_insert(0);
                *slot = (*slot).max(share);
            }
        }
    }

    // --- 1. relevant entity documents ---------------------------------
    let mut quota_entities: Vec<usize> = quota.keys().copied().collect();
    quota_entities.sort_unstable();
    for &e in &quota_entities {
        let aspect = topic_aspect.get(&space.entities[e].topic);
        let share = quota.get(&e).copied().unwrap_or(0);
        for _ in 0..share {
            let with_aspect = rng.gen_bool(cfg.p_aspect_in_doc.clamp(0.0, 1.0));
            let aspect_words: &[String] = match (with_aspect, aspect) {
                (true, Some(a)) => a.as_slice(),
                _ => &[],
            };
            let text = entity_document_with_aspect(space, cfg, e, aspect_words, &mut rng);
            let p_rel = if with_aspect && aspect.is_some() {
                cfg.p_rel_with_aspect
            } else {
                cfg.p_rel_without_aspect
            };
            let judged = rng.gen_bool(p_rel.clamp(0.0, 1.0));
            em.push(text, Some(e), judged);
        }
    }

    // --- 2. hard negatives --------------------------------------------
    for qs in query_sets {
        for q in *qs {
            if q.zero_relevant {
                continue;
            }
            for e in space.topic_entities(q.topic) {
                if q.relevant_entities.contains(&e) || quota.contains_key(&e) {
                    continue;
                }
                for _ in 0..cfg.hard_negative_docs {
                    let with_aspect = rng.gen_bool(0.2);
                    let aspect_words: &[String] = if with_aspect {
                        q.aspect_words.as_slice()
                    } else {
                        &[]
                    };
                    let text =
                        entity_document_with_aspect(space, cfg, e, aspect_words, &mut rng);
                    em.push(text, Some(e), false);
                }
            }
        }
    }

    // --- 3. boilerplate ------------------------------------------------
    for (d, domain) in space.domains.iter().enumerate() {
        for _ in 0..cfg.boilerplate_per_domain {
            let text = boilerplate_document(space, cfg, d, &mut rng);
            let _ = domain;
            em.push(text, None, false);
        }
    }

    // --- 4. background fill ---------------------------------------------
    used_topics.sort_unstable();
    used_topics.dedup();
    let free_topics: Vec<usize> = (0..space.num_topics())
        .filter(|t| used_topics.binary_search(t).is_err())
        .collect();
    while em.generated() < cfg.total_docs {
        if !free_topics.is_empty() && rng.gen_bool(0.7) {
            let t = free_topics[rng.gen_range(0..free_topics.len())];
            let range = space.topic_entities(t);
            let e = rng.gen_range(range.start..range.end);
            let text = entity_document(space, cfg, e, &mut rng);
            em.push(text, Some(e), false);
        } else {
            let text = noise_document(space, cfg, &mut rng);
            em.push(text, None, false);
        }
    }
    let _ = banned_topics;
}

/// A caption-like document about entity `e`: the entity's title planted
/// contiguously (so phrase features can match), topic/domain words, some
/// global noise, and occasionally the alias or a related entity's title.
fn entity_document(
    space: &ConceptSpace,
    cfg: &CollectionConfig,
    e: usize,
    rng: &mut SmallRng,
) -> String {
    entity_document_with_aspect(space, cfg, e, &[], rng)
}

/// An entity document that additionally depicts the given aspect words.
fn entity_document_with_aspect(
    space: &ConceptSpace,
    cfg: &CollectionConfig,
    e: usize,
    aspect_words: &[String],
    rng: &mut SmallRng,
) -> String {
    let ent = &space.entities[e];
    let topic = &space.topics[ent.topic];
    let domain = &space.domains[ent.domain];
    // Segments keep multi-word units contiguous while their order varies.
    let mut segments: Vec<Vec<String>> = Vec::new();
    if ent.title_words.len() == 1 || rng.gen_bool(cfg.p_full_title) {
        segments.push(ent.title_words.clone());
    } else {
        // Partial reference: a single title word (vocabulary variation).
        let w = ent.title_words[rng.gen_range(0..ent.title_words.len())].clone();
        segments.push(vec![w]);
    }
    let n_topic = rng.gen_range(2..=3);
    for _ in 0..n_topic {
        segments.push(vec![topic.words[rng.gen_range(0..topic.words.len())].clone()]);
    }
    let n_domain = rng.gen_range(1..=2);
    for _ in 0..n_domain {
        segments.push(vec![domain.words[rng.gen_range(0..domain.words.len())].clone()]);
    }
    for a in aspect_words {
        // Vocabulary mismatch even on-aspect: captions usually express the
        // aspect in their own words; only sometimes in the user's.
        if rng.gen_bool(0.35) {
            segments.push(vec![a.clone()]);
        } else {
            segments.push(vec![paraphrase(a)]);
        }
    }
    if let Some(alias) = &ent.alias {
        if rng.gen_bool(cfg.p_alias_in_doc) {
            segments.push(vec![alias.clone()]);
        }
    }
    // Co-mentions: captions name associated entities, preferring the
    // semantically relevant ones. This is what gives aggregated expansion
    // features their consensus power: documents in the semantic
    // neighbourhood match *several* related titles at once.
    let mut mentions = 0;
    while mentions < 2
        && !ent.relations.is_empty()
        && rng.gen_bool(if mentions == 0 {
            cfg.p_mention_related
        } else {
            cfg.p_mention_related * 0.7
        })
    {
        let relevant: Vec<&crate::concepts::Relation> =
            ent.relations.iter().filter(|r| r.relevant).collect();
        let other = if !relevant.is_empty() && rng.gen_bool(0.75) {
            relevant[rng.gen_range(0..relevant.len())].other
        } else {
            ent.relations[rng.gen_range(0..ent.relations.len())].other
        };
        segments.push(space.entities[other].title_words.clone());
        mentions += 1;
    }
    // Caption function words / boilerplate fields: nearly every record
    // carries one or two, *repeated* (catalogue fields like media type or
    // institution recur within a record). The repetition concentrates
    // P(w|D) on them, which is what an unfiltered relevance model locks
    // onto — the paper's PRF collapse.
    let n_caption = rng.gen_range(1..=2);
    for _ in 0..n_caption {
        let w = space
            .caption_pool
            .get(rng.gen_range(0..space.caption_pool.len()));
        let reps = rng.gen_range(2..=3);
        segments.push(vec![w; reps]);
    }
    // Pad with global noise up to the target length.
    let (lo, hi) = cfg.doc_len;
    let target = rng.gen_range(lo..=hi);
    let mut len: usize = segments.iter().map(|s| s.len()).sum();
    while len < target {
        segments.push(vec![space
            .global_pool
            .get(rng.gen_range(0..space.global_pool.len()))]);
        len += 1;
    }
    shuffle(&mut segments, rng);
    let mut words = segments.concat();
    // Foreign-language document: every token is replaced by its
    // deterministic "translation", putting the document out of reach of
    // English query vocabulary while keeping it judged.
    if rng.gen_bool(cfg.p_foreign.clamp(0.0, 1.0)) {
        for w in &mut words {
            *w = translate(w);
        }
    }
    words.join(" ")
}

/// Deterministic word-level "translation" into the synthetic foreign
/// language. Injective: two words translate equally iff they are equal.
pub fn translate(word: &str) -> String {
    format!("{word}eth")
}

/// Deterministic paraphrase of an aspect word: the way captions express
/// the concept, distinct from the user's keyword. Injective, and can
/// never collide with a generator word (no pseudo-word syllable starts
/// with a bare vowel after another nucleus).
pub fn paraphrase(word: &str) -> String {
    format!("{word}en")
}

/// A boilerplate catalogue record: broad coverage of the domain's word
/// pool, each word at most twice, long relative to entity documents.
fn boilerplate_document(
    space: &ConceptSpace,
    cfg: &CollectionConfig,
    d: usize,
    rng: &mut SmallRng,
) -> String {
    let domain = &space.domains[d];
    let mut words: Vec<String> = Vec::with_capacity(cfg.boilerplate_len);
    for _ in 0..cfg.boilerplate_len {
        let r: f64 = rng.gen();
        let w = if r < 0.5 {
            domain.pool[rng.gen_range(0..domain.pool.len())].clone()
        } else if r < 0.72 {
            domain.words[rng.gen_range(0..domain.words.len())].clone()
        } else if r < 0.84 {
            space
                .caption_pool
                .get(rng.gen_range(0..space.caption_pool.len()))
        } else {
            space.global_pool.get(rng.gen_range(0..space.global_pool.len()))
        };
        words.push(w);
    }
    words.join(" ")
}

/// A pure-noise document of global words. Alias words deliberately do
/// NOT occur here: an alias is how the *user* names an entity, not how
/// captions describe it — the vocabulary-mismatch premise of the paper.
fn noise_document(space: &ConceptSpace, cfg: &CollectionConfig, rng: &mut SmallRng) -> String {
    let (lo, hi) = cfg.doc_len;
    let len = rng.gen_range(lo..=hi);
    let mut words: Vec<String> = (0..len)
        .map(|_| space.global_pool.get(rng.gen_range(0..space.global_pool.len())))
        .collect();
    let w = space
        .caption_pool
        .get(rng.gen_range(0..space.caption_pool.len()));
    let n_caption = rng.gen_range(2..=4).min(words.len());
    for slot in words.iter_mut().take(n_caption) {
        *slot = w.clone();
    }
    words.join(" ")
}

/// Fisher–Yates shuffle (avoids pulling in the `rand` shuffle trait for a
/// single call site).
fn shuffle<T>(v: &mut [T], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestBedConfig;
    use crate::queries::generate_queries;

    fn setup() -> (ConceptSpace, Vec<QuerySpec>, Vec<Document>) {
        let cfg = TestBedConfig::small();
        let space = ConceptSpace::generate(&cfg.kb);
        let topics: Vec<usize> = (0..space.num_topics()).collect();
        let queries = generate_queries(&space, &cfg.imageclef_queries, &topics);
        let docs = generate_documents(&space, &cfg.imageclef, &[&queries]);
        (space, queries, docs)
    }

    #[test]
    fn collection_size_is_exact() {
        let cfg = TestBedConfig::small();
        let (_, _, docs) = setup();
        assert_eq!(docs.len(), cfg.imageclef.total_docs);
    }

    #[test]
    fn doc_ids_unique() {
        let (_, _, docs) = setup();
        let ids: std::collections::HashSet<&String> = docs.iter().map(|d| &d.id).collect();
        assert_eq!(ids.len(), docs.len());
    }

    #[test]
    fn relevant_counts_near_mean() {
        let cfg = TestBedConfig::small();
        let (_, queries, docs) = setup();
        let mut total = 0usize;
        let mut counted = 0usize;
        for q in &queries {
            if q.zero_relevant {
                continue;
            }
            let n = docs
                .iter()
                .filter(|d| {
                    d.judged_relevant
                        && d.about.is_some_and(|e| q.relevant_entities.contains(&e))
                })
                .count();
            assert!(n > 0, "non-zero-relevant query must have relevant docs");
            total += n;
            counted += 1;
        }
        let mean = total as f64 / counted as f64;
        let want = cfg.imageclef.mean_relevant_per_query;
        assert!(
            (mean - want).abs() / want < 0.35,
            "mean relevant {mean} too far from {want}"
        );
    }

    #[test]
    fn entity_docs_reference_their_entity() {
        let (space, _, docs) = setup();
        let mut full_title = 0usize;
        let mut partial = 0usize;
        for d in docs.iter().take(2000) {
            if let Some(e) = d.about {
                let ent = &space.entities[e];
                // Every entity doc carries at least one title word.
                assert!(
                    ent.title_words.iter().any(|w| d.text.contains(w.as_str())),
                    "doc about {e} lacks any title word: {}",
                    d.text
                );
                if ent.title_words.len() > 1 {
                    if d.text.contains(&ent.title()) {
                        full_title += 1;
                    } else {
                        partial += 1;
                    }
                }
            }
        }
        // Both full-title (phrase-matchable) and partial-reference docs
        // must exist: that split is what keeps QL_E precision moderate.
        assert!(full_title > 0, "no full-title docs");
        assert!(partial > 0, "no partial-title docs");
    }

    #[test]
    fn hard_negatives_exist() {
        let (space, queries, docs) = setup();
        let q = queries.iter().find(|q| !q.zero_relevant).unwrap();
        let negatives = docs
            .iter()
            .filter(|d| {
                d.about.is_some_and(|e| {
                    space.entities[e].topic == q.topic && !q.relevant_entities.contains(&e)
                })
            })
            .count();
        assert!(negatives > 0, "same-topic non-relevant docs required");
    }

    #[test]
    fn boilerplate_docs_have_broad_low_density_vocabulary() {
        let cfg = TestBedConfig::small();
        let (_, _, docs) = setup();
        let boiler: Vec<&Document> = docs
            .iter()
            .filter(|d| d.about.is_none() && d.text.split(' ').count() >= cfg.imageclef.boilerplate_len)
            .collect();
        assert!(!boiler.is_empty());
        // Broad coverage: plenty of distinct words per record.
        for d in boiler.iter().take(20) {
            let toks: Vec<&str> = d.text.split(' ').collect();
            let distinct: std::collections::HashSet<&&str> = toks.iter().collect();
            assert!(distinct.len() * 3 >= toks.len() * 2, "low repetition");
        }
    }

    #[test]
    fn zero_relevant_queries_have_no_relevant_docs() {
        let cfg = TestBedConfig::small();
        let space = ConceptSpace::generate(&cfg.kb);
        let topics: Vec<usize> = (0..space.num_topics()).collect();
        let queries = generate_queries(&space, &cfg.chic2012_queries, &topics);
        let docs = generate_documents(&space, &cfg.chic, &[&queries]);
        for q in queries.iter().filter(|q| q.zero_relevant) {
            let n = docs
                .iter()
                .filter(|d| d.about.is_some_and(|e| q.relevant_entities.contains(&e)))
                .count();
            assert_eq!(n, 0, "query {} must have zero relevant docs", q.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, _, d1) = setup();
        let (_, _, d2) = setup();
        for (a, b) in d1.iter().zip(d2.iter()).step_by(97) {
            assert_eq!(a.text, b.text);
        }
    }
}
