// Fixture: every access path of the shared counter holds `state` —
// directly, or via a caller that already holds it (the entry-lock
// context covers the `bump`/`read_pending` helpers).

pub struct Svc {
    state: Mutex<Vec<u32>>,
    pending: usize,
}

impl Svc {
    fn bump(&mut self) {
        self.pending += 1;
    }

    fn read_pending(&self) -> usize {
        self.pending
    }

    pub fn add(&mut self, x: u32) {
        let mut s = self.state.lock().unwrap();
        s.push(x);
        self.bump();
    }

    pub fn drain(&mut self) -> Vec<u32> {
        let mut s = self.state.lock().unwrap();
        let out = s.split_off(0);
        self.bump();
        out
    }

    pub fn report(&self) -> usize {
        let s = self.state.lock().unwrap();
        s.capacity() + self.read_pending()
    }

    pub fn tally(&self) -> usize {
        let s = self.state.lock().unwrap();
        s.capacity() + self.pending
    }

    pub fn reset(&mut self) {
        let _s = self.state.lock().unwrap();
        self.pending = 0;
    }
}
