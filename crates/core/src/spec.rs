//! First-class motif specifications: the generalized motif engine.
//!
//! The paper hand-crafts two motifs and closes by asking "what other
//! motifs may be relevant for other KBs". [`MotifSpec`] makes the answer
//! a *value* instead of a code change: every motif in the family is a
//! point in a three-axis space —
//!
//! * **link reciprocity** ([`LinkCondition`]): mutual, out-link only, or
//!   either direction;
//! * **category containment depth** ([`CategoryScope`]): same category
//!   set ([`CategoryScope::Superset`], the triangular condition, cycle
//!   length 3), any shared category ([`CategoryScope::SharedAny`], cycle
//!   length 3), hierarchy-adjacent categories
//!   ([`CategoryScope::Adjacent`], the square condition, cycle length 4),
//!   categories two hierarchy steps apart ([`CategoryScope::Cousin`],
//!   cycle length 5 — the length the paper skipped for performance), or
//!   no category requirement ([`CategoryScope::Unconstrained`], the bare
//!   link 2-cycle);
//! * **multiplicity weighting** ([`WeightRule`]): count every motif
//!   instance (`|m_a|`, the paper's weighting) or flatten to 1 per
//!   expansion article.
//!
//! A [`MotifSet`] is a canonical (sorted, deduplicated) set of specs with
//! a stable [`MotifFingerprint`] — a bitmask over the enumeration order —
//! used as the expansion-cache key and as the identity of a set in
//! reports and benchmarks. The paper's configurations are
//! [`MotifSet::triangular`], [`MotifSet::square`] and
//! [`MotifSet::t_and_s`]; each spec compiles to the same CSR traversals
//! the hand-written motifs used, byte for byte (pinned by the
//! serve-determinism wall).
//!
//! [`MotifLadder`] generalizes the serving layer's degraded-mode ladder:
//! an ordered list of named rungs, each either a motif set or the
//! unexpanded query, walked top-down by the admission layer's
//! `select_rung` against per-rung cost histograms.

use std::fmt;
use std::sync::Arc;

use kbgraph::{ArticleId, CategoryId, KbGraph};

use crate::motif::{Motif, MotifKind};
use crate::pattern::{category_instances, link_candidates, CategoryCondition, LinkCondition};

/// How the candidate's categories must relate to the query node's —
/// [`CategoryCondition`] extended with the depth-2 containment scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CategoryScope {
    /// `cats(candidate) ⊇ cats(query)` — the triangular condition
    /// (3-cycle). Instance count: one per category of the query node.
    Superset,
    /// At least one category in common (3-cycle). Instance count: number
    /// of shared categories.
    SharedAny,
    /// Some category of one is a direct sub-/super-category of some
    /// category of the other — the square condition (4-cycle). Instance
    /// count: number of adjacent category pairs.
    Adjacent,
    /// Some category of one is exactly **two** hierarchy steps from some
    /// category of the other (grandparent, grandchild, or sibling) — the
    /// 5-cycle the paper declined to traverse. Instance count: number of
    /// such distinct, non-adjacent category pairs.
    Cousin,
    /// No category requirement (pure link motif, 2-cycle). Instance
    /// count 1.
    Unconstrained,
}

impl CategoryScope {
    const ALL: [CategoryScope; 5] = [
        CategoryScope::Superset,
        CategoryScope::SharedAny,
        CategoryScope::Adjacent,
        CategoryScope::Cousin,
        CategoryScope::Unconstrained,
    ];

    /// The [`CategoryCondition`] this scope shares semantics with, when
    /// one exists (`Cousin` is the extension point).
    fn as_condition(self) -> Option<CategoryCondition> {
        match self {
            CategoryScope::Superset => Some(CategoryCondition::Superset),
            CategoryScope::SharedAny => Some(CategoryCondition::SharedAny),
            CategoryScope::Adjacent => Some(CategoryCondition::Adjacent),
            CategoryScope::Unconstrained => Some(CategoryCondition::Unconstrained),
            CategoryScope::Cousin => None,
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            CategoryScope::Superset => "superset",
            CategoryScope::SharedAny => "shared",
            CategoryScope::Adjacent => "adjacent",
            CategoryScope::Cousin => "cousin",
            CategoryScope::Unconstrained => "free",
        }
    }
}

/// How motif instance counts become expansion multiplicities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightRule {
    /// `|m_a|` = the number of motif instances the article closes (the
    /// paper's weighting).
    Counted,
    /// Every matched article gets multiplicity 1 (the ablation that
    /// flattens `|m_a|`).
    Unit,
}

impl WeightRule {
    const ALL: [WeightRule; 2] = [WeightRule::Counted, WeightRule::Unit];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            WeightRule::Counted => "counted",
            WeightRule::Unit => "unit",
        }
    }
}

const LINKS: [LinkCondition; 3] =
    [LinkCondition::Mutual, LinkCondition::OutLink, LinkCondition::AnyDirection];

fn link_name(link: LinkCondition) -> &'static str {
    match link {
        LinkCondition::Mutual => "mutual",
        LinkCondition::OutLink => "outlink",
        LinkCondition::AnyDirection => "anylink",
    }
}

/// One motif, fully specified: link reciprocity × category containment
/// depth × multiplicity weighting. Compiles to the same CSR traversals
/// the paper's hand-written motifs used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MotifSpec {
    /// Link requirement between query node and expansion candidate.
    pub link: LinkCondition,
    /// Category requirement between their category sets.
    pub category: CategoryScope,
    /// How instance counts become multiplicities.
    pub weight: WeightRule,
}

impl MotifSpec {
    /// The paper's triangular motif: mutual link, category superset,
    /// counted multiplicities.
    pub fn triangular() -> Self {
        MotifSpec {
            link: LinkCondition::Mutual,
            category: CategoryScope::Superset,
            weight: WeightRule::Counted,
        }
    }

    /// The paper's square motif: mutual link, hierarchy-adjacent
    /// categories, counted multiplicities.
    pub fn square() -> Self {
        MotifSpec {
            link: LinkCondition::Mutual,
            category: CategoryScope::Adjacent,
            weight: WeightRule::Counted,
        }
    }

    /// Number of specs in the enumerable space
    /// (`LINKS × CategoryScope::ALL × WeightRule::ALL`).
    pub const COUNT: usize = LINKS.len() * CategoryScope::ALL.len() * WeightRule::ALL.len();

    /// Every spec in the space, in canonical enumeration order
    /// (link-major, then category scope, then weight rule). Indexes into
    /// this list are the bit positions of [`MotifFingerprint`].
    pub fn all() -> Vec<MotifSpec> {
        let mut out = Vec::with_capacity(LINKS.len() * CategoryScope::ALL.len() * 2);
        for &link in &LINKS {
            for &category in &CategoryScope::ALL {
                for &weight in &WeightRule::ALL {
                    out.push(MotifSpec { link, category, weight });
                }
            }
        }
        out
    }

    /// The canonical enumeration index of this spec (the fingerprint bit
    /// it occupies).
    pub fn index(self) -> usize {
        let l = match self.link {
            LinkCondition::Mutual => 0,
            LinkCondition::OutLink => 1,
            LinkCondition::AnyDirection => 2,
        };
        let c = match self.category {
            CategoryScope::Superset => 0,
            CategoryScope::SharedAny => 1,
            CategoryScope::Adjacent => 2,
            CategoryScope::Cousin => 3,
            CategoryScope::Unconstrained => 4,
        };
        let w = match self.weight {
            WeightRule::Counted => 0,
            WeightRule::Unit => 1,
        };
        (l * CategoryScope::ALL.len() + c) * WeightRule::ALL.len() + w
    }

    /// The spec at canonical index `i`, if in range.
    pub fn from_index(i: usize) -> Option<MotifSpec> {
        let w = i % WeightRule::ALL.len();
        let rest = i / WeightRule::ALL.len();
        let c = rest % CategoryScope::ALL.len();
        let l = rest / CategoryScope::ALL.len();
        Some(MotifSpec {
            link: *LINKS.get(l)?,
            category: *CategoryScope::ALL.get(c)?,
            weight: *WeightRule::ALL.get(w)?,
        })
    }

    /// The cycle length this spec's motif instances close in the KB
    /// graph (2 for a bare link, 3 for triangles, 4 for squares, 5 for
    /// cousins).
    pub fn cycle_length(self) -> usize {
        match self.category {
            CategoryScope::Unconstrained => 2,
            CategoryScope::Superset | CategoryScope::SharedAny => 3,
            CategoryScope::Adjacent => 4,
            CategoryScope::Cousin => 5,
        }
    }

    /// Stable display form, e.g. `mutual+superset` (counted) or
    /// `mutual+superset+unit`. Parseable by [`MotifSpec::from_name`].
    pub fn name(self) -> String {
        match self.weight {
            WeightRule::Counted => format!("{}+{}", link_name(self.link), self.category.name()),
            WeightRule::Unit => {
                format!("{}+{}+unit", link_name(self.link), self.category.name())
            }
        }
    }

    /// Parses a [`MotifSpec::name`] back into a spec.
    pub fn from_name(name: &str) -> Option<MotifSpec> {
        let mut parts = name.split('+');
        let link = match parts.next()? {
            "mutual" => LinkCondition::Mutual,
            "outlink" => LinkCondition::OutLink,
            "anylink" => LinkCondition::AnyDirection,
            _ => return None,
        };
        let category = match parts.next()? {
            "superset" => CategoryScope::Superset,
            "shared" => CategoryScope::SharedAny,
            "adjacent" => CategoryScope::Adjacent,
            "cousin" => CategoryScope::Cousin,
            "free" => CategoryScope::Unconstrained,
            _ => return None,
        };
        let weight = match parts.next() {
            None => WeightRule::Counted,
            Some("unit") => WeightRule::Unit,
            Some(_) => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(MotifSpec { link, category, weight })
    }

    /// Number of motif instances the candidate closes (0 = no match),
    /// before the weight rule is applied.
    fn instances(self, graph: &KbGraph, query_node: ArticleId, cand: ArticleId) -> u32 {
        match self.category.as_condition() {
            Some(cond) => category_instances(graph, cond, query_node, cand),
            None => cousin_pairs(graph, query_node, cand),
        }
    }
}

/// Number of distinct, non-adjacent category pairs `(cq, cc)` exactly two
/// hierarchy steps apart — each closes one 5-cycle with the article link.
fn cousin_pairs(graph: &KbGraph, query_node: ArticleId, cand: ArticleId) -> u32 {
    let qc = graph.categories_of(query_node);
    let cc = graph.categories_of(cand);
    let mut pairs = 0u32;
    for &a in qc {
        for &b in cc {
            if a == b {
                continue;
            }
            let (ca, cb) = (CategoryId::new(a), CategoryId::new(b));
            if graph.category_adjacent(ca, cb) {
                // Distance 1 is the square scope's territory.
                continue;
            }
            let two_steps = graph
                .parents_of(ca)
                .iter()
                .chain(graph.children_of(ca).iter())
                .any(|&z| graph.category_adjacent(CategoryId::new(z), cb));
            if two_steps {
                pairs += 1;
            }
        }
    }
    pairs
}

impl Motif for MotifSpec {
    fn kind(&self) -> MotifKind {
        // Specs generalize both; report the closest classical kind.
        match self.category {
            CategoryScope::Superset | CategoryScope::SharedAny => MotifKind::Triangular,
            _ => MotifKind::Square,
        }
    }

    fn expansions_into(
        &self,
        graph: &KbGraph,
        query_node: ArticleId,
        out: &mut Vec<(ArticleId, u32)>,
    ) {
        for cand in link_candidates(graph, self.link, query_node) {
            if cand == query_node {
                continue;
            }
            let m = self.instances(graph, query_node, cand);
            if m > 0 {
                let weighted = match self.weight {
                    WeightRule::Counted => m,
                    WeightRule::Unit => 1,
                };
                out.push((cand, weighted));
            }
        }
    }
}

/// The canonical, stable identity of a [`MotifSet`]: a bitmask over the
/// enumeration order of [`MotifSpec::all`]. Equal sets — regardless of
/// construction order or duplicates — have equal fingerprints, so the
/// fingerprint is the cache key and the report identity of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MotifFingerprint(u64);

impl MotifFingerprint {
    /// The raw bitmask (bit *i* = spec at canonical index *i*).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Parses the [`fmt::Display`] rendering (`m<hex bits>`) back.
    pub fn parse(s: &str) -> Option<MotifFingerprint> {
        let hex = s.strip_prefix('m')?;
        u64::from_str_radix(hex, 16).ok().map(MotifFingerprint)
    }
}

impl fmt::Display for MotifFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{:x}", self.0)
    }
}

/// A canonical set of motif specs: sorted by enumeration index with
/// duplicates removed, so two sets built from the same specs in any
/// order compare equal and fingerprint identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MotifSet {
    specs: Vec<MotifSpec>,
}

impl MotifSet {
    /// Canonicalizes `specs` (sort by [`MotifSpec::index`], dedup).
    pub fn new(specs: Vec<MotifSpec>) -> Self {
        let mut specs = specs;
        specs.sort_by_key(|s| s.index());
        specs.dedup();
        MotifSet { specs }
    }

    /// The empty set (no expansion at all).
    pub fn empty() -> Self {
        MotifSet { specs: Vec::new() }
    }

    /// A one-spec set.
    pub fn single(spec: MotifSpec) -> Self {
        MotifSet { specs: vec![spec] }
    }

    /// The paper's `SQE_T` configuration.
    pub fn triangular() -> Self {
        MotifSet::single(MotifSpec::triangular())
    }

    /// The paper's `SQE_S` configuration.
    pub fn square() -> Self {
        MotifSet::single(MotifSpec::square())
    }

    /// The paper's `SQE_T&S` configuration.
    pub fn t_and_s() -> Self {
        MotifSet::new(vec![MotifSpec::triangular(), MotifSpec::square()])
    }

    /// The specs, in canonical order.
    pub fn specs(&self) -> &[MotifSpec] {
        &self.specs
    }

    /// Number of specs in the set.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True for the empty (unexpanded) set.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The canonical, stable fingerprint of this set.
    pub fn fingerprint(&self) -> MotifFingerprint {
        let mut bits = 0u64;
        for spec in &self.specs {
            bits |= 1u64 << spec.index();
        }
        MotifFingerprint(bits)
    }

    /// Reconstructs the set a fingerprint identifies. Bits beyond the
    /// spec space are ignored.
    pub fn from_fingerprint(fp: MotifFingerprint) -> MotifSet {
        let specs = MotifSpec::all()
            .into_iter()
            .filter(|s| fp.bits() & (1u64 << s.index()) != 0)
            .collect();
        // `all()` enumerates in index order, so the result is canonical.
        MotifSet { specs }
    }

    /// Stable display form: spec names joined by `&` (`none` when
    /// empty), e.g. `mutual+superset&mutual+adjacent` for `SQE_T&S`.
    pub fn name(&self) -> String {
        if self.specs.is_empty() {
            return "none".to_owned();
        }
        let names: Vec<String> = self.specs.iter().map(|s| s.name()).collect();
        names.join("&")
    }

    /// Compiles the set into boxed [`Motif`] traversals for
    /// [`crate::QueryGraphBuilder`].
    pub fn compile(&self) -> Vec<Box<dyn Motif>> {
        self.specs
            .iter()
            .map(|&s| Box::new(s) as Box<dyn Motif>)
            .collect()
    }
}

/// One rung of a degraded-mode ladder: a stable name plus either a motif
/// set to expand with, or `None` for the unexpanded query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotifRung {
    name: Arc<str>,
    motifs: Option<MotifSet>,
}

impl MotifRung {
    /// A rung that expands with `motifs`.
    pub fn expanded(name: &str, motifs: MotifSet) -> Self {
        MotifRung {
            name: Arc::from(name),
            motifs: Some(motifs),
        }
    }

    /// A rung that ranks the unexpanded user query.
    pub fn unexpanded(name: &str) -> Self {
        MotifRung {
            name: Arc::from(name),
            motifs: None,
        }
    }

    /// The rung's stable name (shared, so outcome labels clone an `Arc`).
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The motif set this rung expands with, or `None` for the
    /// unexpanded query.
    pub fn motifs(&self) -> Option<&MotifSet> {
        self.motifs.as_ref()
    }
}

/// An ordered degraded-mode ladder: rung 0 is full quality, later rungs
/// are progressively cheaper. The serving layer sizes its per-rung cost
/// histograms from [`MotifLadder::len`] and the admission layer's
/// `select_rung` walks the rungs top-down against the remaining deadline
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotifLadder {
    rungs: Vec<MotifRung>,
}

impl MotifLadder {
    /// Builds a ladder from ordered rungs. An empty list falls back to
    /// [`MotifLadder::default_sqe`] — a service always has at least one
    /// rung to serve at.
    pub fn new(rungs: Vec<MotifRung>) -> Self {
        if rungs.is_empty() {
            return MotifLadder::default_sqe();
        }
        MotifLadder { rungs }
    }

    /// The paper-shaped default: `full` (SQE_T&S) → `triangular` (SQE_T)
    /// → `unexpanded`.
    pub fn default_sqe() -> Self {
        MotifLadder {
            rungs: vec![
                MotifRung::expanded("full", MotifSet::t_and_s()),
                MotifRung::expanded("triangular", MotifSet::triangular()),
                MotifRung::unexpanded("unexpanded"),
            ],
        }
    }

    /// The rungs, quality-descending.
    pub fn rungs(&self) -> &[MotifRung] {
        &self.rungs
    }

    /// Number of rungs (≥ 1).
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Always false — construction guarantees at least one rung.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The rung at `index`, if in range.
    pub fn rung(&self, index: usize) -> Option<&MotifRung> {
        self.rungs.get(index)
    }

    /// The stable rung names, in ladder order.
    pub fn names(&self) -> Vec<&str> {
        self.rungs.iter().map(|r| r.name().as_ref()).collect()
    }
}

impl Default for MotifLadder {
    fn default() -> Self {
        MotifLadder::default_sqe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbgraph::GraphBuilder;

    /// Paper's Figure 4a example: "cable car" ↔ "funicular", both in the
    /// same categories ⇒ triangular expansion. Pinned against the exact
    /// output the hand-written `Triangular` motif produced before the
    /// generalized engine replaced it.
    #[test]
    fn triangular_spec_fires_on_figure_4a() {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let rail = b.add_category("rail transport");
        let mountain = b.add_category("mountain transport");
        b.add_mutual_link(cable, funi);
        b.add_membership(cable, rail);
        b.add_membership(funi, rail);
        b.add_membership(cable, mountain);
        b.add_membership(funi, mountain);
        let g = b.build();
        let exp = MotifSpec::triangular().expansions(&g, cable);
        assert_eq!(exp, vec![(funi, 2)], "two shared categories, two triangles");
    }

    /// Paper's Figure 4b example: "graffiti" ↔ "Banksy", one category
    /// inside the other ⇒ square expansion (symmetric), pinned against
    /// the legacy `Square` output.
    #[test]
    fn square_spec_fires_on_figure_4b() {
        let mut b = GraphBuilder::new();
        let graffiti = b.add_article("graffiti");
        let banksy = b.add_article("banksy");
        let street_art = b.add_category("street art");
        let artists = b.add_category("graffiti artists");
        b.add_mutual_link(graffiti, banksy);
        b.add_membership(graffiti, street_art);
        b.add_membership(banksy, artists);
        b.add_subcategory(artists, street_art);
        let g = b.build();
        assert_eq!(MotifSpec::square().expansions(&g, graffiti), vec![(banksy, 1)]);
        assert_eq!(MotifSpec::square().expansions(&g, banksy), vec![(graffiti, 1)]);
    }

    #[test]
    fn triangular_spec_requires_double_link_and_superset() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let y = b.add_article("y");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_article_link(a, x); // one-way only
        b.add_membership(a, c1);
        b.add_membership(x, c1);
        b.add_mutual_link(a, y);
        b.add_membership(y, c2); // not a superset of {c1}
        let g = b.build();
        assert!(MotifSpec::triangular().expansions(&g, a).is_empty());
    }

    #[test]
    fn uncategorized_query_node_yields_nothing() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        b.add_mutual_link(a, x);
        let g = b.build();
        assert!(MotifSpec::triangular().expansions(&g, a).is_empty());
        assert!(MotifSpec::square().expansions(&g, a).is_empty());
    }

    #[test]
    fn square_spec_counts_each_category_pair() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        let d1 = b.add_category("d1");
        let d2 = b.add_category("d2");
        b.add_mutual_link(a, x);
        b.add_membership(a, c1);
        b.add_membership(a, d1);
        b.add_membership(x, c2);
        b.add_membership(x, d2);
        b.add_subcategory(c2, c1);
        b.add_subcategory(d1, d2);
        let g = b.build();
        assert_eq!(MotifSpec::square().expansions(&g, a), vec![(x, 2)]);
    }

    #[test]
    fn unit_weight_flattens_multiplicities() {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let rail = b.add_category("rail");
        let mountain = b.add_category("mountain");
        b.add_mutual_link(cable, funi);
        for c in [rail, mountain] {
            b.add_membership(cable, c);
            b.add_membership(funi, c);
        }
        let g = b.build();
        let unit = MotifSpec {
            weight: WeightRule::Unit,
            ..MotifSpec::triangular()
        };
        assert_eq!(unit.expansions(&g, cable), vec![(funi, 1)]);
        assert_eq!(MotifSpec::triangular().expansions(&g, cable), vec![(funi, 2)]);
    }

    /// A category chain c_q → mid → c_x: the categories of the linked
    /// pair are two steps apart, closing a 5-cycle — invisible to the
    /// square (distance-1) scope.
    #[test]
    fn cousin_scope_finds_depth_two_category_pairs() {
        let mut b = GraphBuilder::new();
        let q = b.add_article("q");
        let x = b.add_article("x");
        let cq = b.add_category("cq");
        let mid = b.add_category("mid");
        let cx = b.add_category("cx");
        b.add_mutual_link(q, x);
        b.add_membership(q, cq);
        b.add_membership(x, cx);
        b.add_subcategory(cq, mid);
        b.add_subcategory(cx, mid);
        let g = b.build();
        let cousin = MotifSpec {
            link: LinkCondition::Mutual,
            category: CategoryScope::Cousin,
            weight: WeightRule::Counted,
        };
        assert_eq!(cousin.expansions(&g, q), vec![(x, 1)]);
        assert_eq!(cousin.expansions(&g, x), vec![(q, 1)], "cousin scope is symmetric");
        assert!(MotifSpec::square().expansions(&g, q).is_empty(), "not adjacent");
    }

    #[test]
    fn cousin_scope_excludes_adjacent_pairs() {
        let mut b = GraphBuilder::new();
        let q = b.add_article("q");
        let x = b.add_article("x");
        let cq = b.add_category("cq");
        let cx = b.add_category("cx");
        b.add_mutual_link(q, x);
        b.add_membership(q, cq);
        b.add_membership(x, cx);
        b.add_subcategory(cx, cq);
        let g = b.build();
        let cousin = MotifSpec {
            link: LinkCondition::Mutual,
            category: CategoryScope::Cousin,
            weight: WeightRule::Counted,
        };
        assert!(cousin.expansions(&g, q).is_empty(), "distance-1 pairs are squares");
    }

    #[test]
    fn spec_space_is_complete_and_indexed() {
        let all = MotifSpec::all();
        assert_eq!(all.len(), 30);
        assert!(all.contains(&MotifSpec::triangular()));
        assert!(all.contains(&MotifSpec::square()));
        for (i, spec) in all.iter().enumerate() {
            assert_eq!(spec.index(), i, "enumeration order is the index order");
            assert_eq!(MotifSpec::from_index(i), Some(*spec));
            assert_eq!(MotifSpec::from_name(&spec.name()), Some(*spec), "{}", spec.name());
        }
        assert_eq!(MotifSpec::from_index(all.len()), None);
        let names: std::collections::HashSet<String> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 30, "names must be distinct");
    }

    #[test]
    fn cycle_lengths_cover_two_through_five() {
        let lengths: std::collections::BTreeSet<usize> =
            MotifSpec::all().iter().map(|s| s.cycle_length()).collect();
        assert_eq!(lengths.into_iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        assert_eq!(MotifSpec::triangular().cycle_length(), 3);
        assert_eq!(MotifSpec::square().cycle_length(), 4);
    }

    #[test]
    fn motif_sets_canonicalize_order_and_duplicates() {
        let forward = MotifSet::new(vec![MotifSpec::triangular(), MotifSpec::square()]);
        let backward = MotifSet::new(vec![
            MotifSpec::square(),
            MotifSpec::triangular(),
            MotifSpec::square(),
        ]);
        assert_eq!(forward, backward);
        assert_eq!(forward.fingerprint(), backward.fingerprint());
        assert_eq!(forward, MotifSet::t_and_s());
        assert_eq!(forward.len(), 2);
    }

    #[test]
    fn fingerprints_are_distinct_and_reversible() {
        let t = MotifSet::triangular();
        let s = MotifSet::square();
        let ts = MotifSet::t_and_s();
        let none = MotifSet::empty();
        let prints = [t.fingerprint(), s.fingerprint(), ts.fingerprint(), none.fingerprint()];
        let distinct: std::collections::HashSet<_> = prints.iter().collect();
        assert_eq!(distinct.len(), 4);
        for set in [t, s, ts, none] {
            assert_eq!(MotifSet::from_fingerprint(set.fingerprint()), set);
            let rendered = set.fingerprint().to_string();
            assert_eq!(MotifFingerprint::parse(&rendered), Some(set.fingerprint()));
        }
    }

    #[test]
    fn set_names_are_stable() {
        assert_eq!(MotifSet::empty().name(), "none");
        assert_eq!(MotifSet::triangular().name(), "mutual+superset");
        assert_eq!(MotifSet::t_and_s().name(), "mutual+superset&mutual+adjacent");
    }

    #[test]
    fn compiled_set_runs_every_spec() {
        let mut b = GraphBuilder::new();
        let q = b.add_article("q");
        let x = b.add_article("x");
        let c = b.add_category("c");
        let sub = b.add_category("sub");
        b.add_membership(q, c);
        b.add_membership(x, c);
        b.add_membership(x, sub);
        b.add_subcategory(sub, c);
        b.add_mutual_link(q, x);
        let g = b.build();
        let compiled = MotifSet::t_and_s().compile();
        assert_eq!(compiled.len(), 2);
        let mut out = Vec::new();
        for m in &compiled {
            m.expansions_into(&g, q, &mut out);
        }
        // One triangle (shared c) and one square (sub inside c).
        assert_eq!(out, vec![(x, 1), (x, 1)]);
    }

    #[test]
    fn default_ladder_matches_the_paper() {
        let ladder = MotifLadder::default_sqe();
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder.names(), vec!["full", "triangular", "unexpanded"]);
        assert_eq!(ladder.rung(0).and_then(MotifRung::motifs), Some(&MotifSet::t_and_s()));
        assert_eq!(
            ladder.rung(1).and_then(MotifRung::motifs),
            Some(&MotifSet::triangular())
        );
        assert_eq!(ladder.rung(2).and_then(MotifRung::motifs), None);
        assert_eq!(ladder.rung(3), None);
        assert!(!ladder.is_empty());
    }

    #[test]
    fn empty_ladder_falls_back_to_default() {
        assert_eq!(MotifLadder::new(Vec::new()), MotifLadder::default_sqe());
        assert_eq!(MotifLadder::default(), MotifLadder::default_sqe());
    }
}
