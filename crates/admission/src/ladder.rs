//! The degraded-mode ladder selection rule.

use crate::outcome::DegradeLevel;

/// Pick the highest-quality ladder rung whose estimated cost fits the
/// remaining deadline budget.
///
/// * `remaining` — nanoseconds of budget left (`None` = unbounded, which
///   always selects [`DegradeLevel::Full`]).
/// * `costs` — per-rung cost estimates in nanoseconds, indexed by
///   [`DegradeLevel::index`] (the service maintains these from its
///   latency histograms; an unobserved rung estimates 0, which makes the
///   selector optimistic until real costs arrive — the deadline checks
///   at stage boundaries backstop that optimism).
///
/// Returns `None` when even the cheapest rung does not fit — the caller
/// sheds with `BudgetExhausted` rather than starting doomed work.
pub fn select_level(remaining: Option<u64>, costs: [u64; 3]) -> Option<DegradeLevel> {
    let Some(budget) = remaining else {
        return Some(DegradeLevel::Full);
    };
    DegradeLevel::LADDER
        .into_iter()
        .find(|level| costs.get(level.index()).copied().unwrap_or(u64::MAX) <= budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COSTS: [u64; 3] = [10_000, 4_000, 1_000];

    #[test]
    fn unbounded_budget_selects_full() {
        assert_eq!(select_level(None, COSTS), Some(DegradeLevel::Full));
    }

    #[test]
    fn budget_walks_the_ladder_downward() {
        assert_eq!(select_level(Some(20_000), COSTS), Some(DegradeLevel::Full));
        assert_eq!(select_level(Some(10_000), COSTS), Some(DegradeLevel::Full));
        assert_eq!(select_level(Some(9_999), COSTS), Some(DegradeLevel::Triangular));
        assert_eq!(select_level(Some(4_000), COSTS), Some(DegradeLevel::Triangular));
        assert_eq!(select_level(Some(3_999), COSTS), Some(DegradeLevel::Unexpanded));
        assert_eq!(select_level(Some(1_000), COSTS), Some(DegradeLevel::Unexpanded));
        assert_eq!(select_level(Some(999), COSTS), None);
        assert_eq!(select_level(Some(0), COSTS), None);
    }

    #[test]
    fn unobserved_costs_are_optimistic() {
        // No observations yet: every rung estimates 0, so even a tiny
        // budget tries Full. Stage-boundary deadline checks backstop it.
        assert_eq!(select_level(Some(1), [0, 0, 0]), Some(DegradeLevel::Full));
    }
}
