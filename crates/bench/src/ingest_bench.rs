//! `experiments ingest-bench`: live-ingestion benchmark for the
//! segmented query service.
//!
//! Measures, per dataset, the three serving regimes of the segmented
//! architecture:
//!
//! * **static** — the corpus fully sealed into its initial segment, no
//!   writes: the pre-refactor baseline throughput;
//! * **ingest** — queries replayed *while* documents stream in and the
//!   buffer seals every `seal_every` additions: queries-per-second under
//!   write load, plus add/seal/merge latency histograms from the
//!   service's [`sqe::IngestHistograms`];
//! * **merged** — after a final [`QueryService::force_merge`] compacts
//!   every segment into one: throughput once the corpus is monolithic
//!   again.
//!
//! Byte-identical scoring across the three regimes is already enforced
//! by the determinism wall (`tests/serve_determinism.rs`); this bench
//! only measures cost. The report is written to `BENCH_ingest.json`;
//! CI runs `--smoke` on the small bed and archives the file.

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use kbgraph::ArticleId;
use serde::Serialize;
use sqe::{MonotonicClock, QueryService, ServeConfig, INGEST_STAGE_NAMES};

use crate::context::ExperimentContext;
use crate::serve_bench::StageStats;

/// Ingest-bench options.
#[derive(Debug, Clone, Copy)]
pub struct IngestBenchOptions {
    /// How many times the query set is replayed per measured batch.
    pub repeat: usize,
    /// Worker threads for the batch executor.
    pub workers: usize,
    /// Documents streamed in during the ingest phase.
    pub ingest_docs: usize,
    /// A seal is forced every this many added documents.
    pub seal_every: usize,
    /// Expansion-cache capacity handed to the service.
    pub cache_capacity: usize,
}

impl Default for IngestBenchOptions {
    fn default() -> Self {
        IngestBenchOptions {
            repeat: 4,
            workers: 4,
            ingest_docs: 400,
            seal_every: 50,
            cache_capacity: 4096,
        }
    }
}

impl IngestBenchOptions {
    /// The CI smoke preset: minimal load, same phase coverage.
    pub fn smoke() -> Self {
        IngestBenchOptions {
            repeat: 1,
            workers: 2,
            ingest_docs: 40,
            seal_every: 10,
            cache_capacity: 4096,
        }
    }
}

/// One measured regime (static, ingest or merged) of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct IngestPhaseReport {
    /// `"static"`, `"ingest"` or `"merged"`.
    pub phase: String,
    /// Queries served in this phase.
    pub queries: u64,
    /// Wall-clock time of the whole phase (ms), including writes.
    pub wall_ms: f64,
    /// Queries per second over the phase wall time.
    pub throughput_qps: f64,
    /// Segment-set epoch at the end of the phase.
    pub epoch: u64,
    /// Segments at the end of the phase.
    pub segments: usize,
    /// Documents added in this phase.
    pub docs_ingested: u64,
    /// Seals performed in this phase.
    pub seals: u64,
    /// Merge operations performed in this phase.
    pub merges: u64,
    /// add/seal/merge latency statistics for this phase.
    pub ingest_stages: Vec<StageStats>,
}

/// All three phases of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct IngestCellReport {
    /// Dataset name.
    pub dataset: String,
    /// Queries per replayed batch.
    pub load: usize,
    /// static → ingest → merged, in order.
    pub phases: Vec<IngestPhaseReport>,
}

/// The whole ingest-bench report (`BENCH_ingest.json`).
#[derive(Debug, Clone, Serialize)]
pub struct IngestBenchReport {
    /// `"small"` or `"full"` test bed.
    pub context: String,
    /// Replays per measured batch.
    pub repeat: usize,
    /// Worker threads used by the batch executor.
    pub workers: usize,
    /// Documents streamed during each ingest phase.
    pub ingest_docs: usize,
    /// Forced seal cadence (documents per seal).
    pub seal_every: usize,
    /// One cell per dataset.
    pub cells: Vec<IngestCellReport>,
}

fn nanos_to_ms(n: u64) -> f64 {
    n as f64 / 1e6
}

/// Converts the phase-scoped metrics snapshot into a report entry.
fn phase_report(
    service: &QueryService<'_>,
    phase: &str,
    wall_ms: f64,
) -> IngestPhaseReport {
    let snap = service.metrics_snapshot();
    let ingest_stages = INGEST_STAGE_NAMES
        .iter()
        .zip(snap.ingest.iter())
        .map(|(name, h)| StageStats {
            stage: (*name).to_owned(),
            count: h.count,
            mean_ms: h.mean_nanos / 1e6,
            p50_ms: nanos_to_ms(h.p50_nanos),
            p95_ms: nanos_to_ms(h.p95_nanos),
            p99_ms: nanos_to_ms(h.p99_nanos),
        })
        .collect();
    IngestPhaseReport {
        phase: phase.to_owned(),
        queries: snap.queries,
        wall_ms,
        throughput_qps: if wall_ms > 0.0 {
            snap.queries as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        epoch: snap.epoch,
        segments: service.num_segments(),
        docs_ingested: snap.docs_ingested,
        seals: snap.seals,
        merges: snap.merges,
        ingest_stages,
    }
}

/// Runs the three-regime measurement over every dataset.
pub fn run_ingest_bench(
    ctx: &ExperimentContext,
    context_name: &str,
    opts: &IngestBenchOptions,
) -> IngestBenchReport {
    let mut cells = Vec::new();
    for dataset in ["imageclef", "chic2012", "chic2013"] {
        let runner = ctx.runner(dataset);
        let ds = runner.dataset();
        let index = &ctx.indexes[ds.collection];
        let coll = ctx.bed.collection_of(ds);
        let mut load: Vec<(String, Vec<ArticleId>)> = Vec::new();
        for _ in 0..opts.repeat.max(1) {
            for q in &ds.queries {
                load.push((q.text.clone(), runner.manual_nodes(q)));
            }
        }
        let service = QueryService::with_clock(
            &ctx.bed.kb.graph,
            index,
            ctx.sqe_config,
            ServeConfig {
                workers: opts.workers,
                cache_capacity: opts.cache_capacity,
            },
            Arc::new(MonotonicClock::new()),
        );

        // Phase 1: static — the sealed corpus, no writes.
        let start = Instant::now();
        std::hint::black_box(service.run_batch_sqe_c(&load).len());
        let static_phase =
            phase_report(&service, "static", start.elapsed().as_secs_f64() * 1e3);

        // Phase 2: ingest — queries interleaved with adds and seals.
        // Document text is recycled from the collection so the streamed
        // load is statistically representative of the corpus.
        service.reset_metrics();
        let start = Instant::now();
        let seal_every = opts.seal_every.max(1);
        let chunks = opts.ingest_docs.div_ceil(seal_every).max(1);
        let mut added = 0usize;
        for chunk in 0..chunks {
            for _ in 0..seal_every.min(opts.ingest_docs - added) {
                let text = &coll.docs[added % coll.docs.len()].text;
                service
                    .add_document(&format!("ingest-{dataset}-{added}"), text)
                    .expect("streamed ingest ids are unique");
                added += 1;
            }
            service.seal();
            std::hint::black_box(service.run_batch_sqe_c(&load).len());
            std::hint::black_box(chunk);
        }
        let ingest_phase =
            phase_report(&service, "ingest", start.elapsed().as_secs_f64() * 1e3);

        // Phase 3: merged — one compaction, then the same replay.
        service.reset_metrics();
        let start = Instant::now();
        service.force_merge();
        std::hint::black_box(service.run_batch_sqe_c(&load).len());
        let merged_phase =
            phase_report(&service, "merged", start.elapsed().as_secs_f64() * 1e3);

        cells.push(IngestCellReport {
            dataset: dataset.to_owned(),
            load: load.len(),
            phases: vec![static_phase, ingest_phase, merged_phase],
        });
    }
    IngestBenchReport {
        context: context_name.to_owned(),
        repeat: opts.repeat,
        workers: opts.workers,
        ingest_docs: opts.ingest_docs,
        seal_every: opts.seal_every,
        cells,
    }
}

/// Serializes the report to pretty JSON.
pub fn report_json(report: &IngestBenchReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_owned())
}

/// Writes `BENCH_ingest.json` (or any other path).
pub fn write_report(report: &IngestBenchReport, path: &Path) -> io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// A human-readable summary table of the report.
pub fn format_report(report: &IngestBenchReport) -> String {
    let mut s = format!(
        "=== ingest-bench ({} bed, x{} replay, {} docs, seal every {}) ===\n\
         {:<11}{:>8}  {:>9}{:>7}{:>6}{:>7}{:>12}{:>12}\n",
        report.context,
        report.repeat,
        report.ingest_docs,
        report.seal_every,
        "dataset",
        "phase",
        "qps",
        "segs",
        "epoch",
        "seals",
        "seal p95 ms",
        "add p95 ms"
    );
    for cell in &report.cells {
        for phase in &cell.phases {
            let p95 = |n: &str| {
                phase
                    .ingest_stages
                    .iter()
                    .find(|st| st.stage == n)
                    .map_or(0.0, |st| st.p95_ms)
            };
            s.push_str(&format!(
                "{:<11}{:>8}  {:>9.1}{:>7}{:>6}{:>7}{:>12.3}{:>12.3}\n",
                cell.dataset,
                phase.phase,
                phase.throughput_qps,
                phase.segments,
                phase.epoch,
                phase.seals,
                p95("seal"),
                p95("add")
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_covers_all_three_regimes() {
        let ctx = ExperimentContext::small();
        let opts = IngestBenchOptions::smoke();
        let report = run_ingest_bench(&ctx, "small", &opts);
        assert_eq!(report.cells.len(), 3);
        for cell in &report.cells {
            assert_eq!(cell.phases.len(), 3);
            let [st, ing, merged] = &cell.phases[..] else {
                unreachable!("three phases asserted above")
            };
            assert_eq!(st.phase, "static");
            assert_eq!(ing.phase, "ingest");
            assert_eq!(merged.phase, "merged");
            // Static: sealed single segment, no writes, epoch untouched.
            assert_eq!(st.segments, 1);
            assert_eq!(st.epoch, 0);
            assert_eq!(st.docs_ingested, 0);
            assert!(st.throughput_qps > 0.0);
            // Ingest: every streamed doc was added, every chunk sealed,
            // and the epoch is the number of seals.
            assert_eq!(ing.docs_ingested as usize, opts.ingest_docs);
            assert_eq!(
                ing.seals as usize,
                opts.ingest_docs.div_ceil(opts.seal_every)
            );
            assert_eq!(ing.epoch, ing.seals);
            let by_name = |n: &str| {
                ing.ingest_stages
                    .iter()
                    .find(|s| s.stage == n)
                    .cloned()
                    .expect("ingest stage present")
            };
            assert_eq!(by_name("add").count as usize, opts.ingest_docs);
            assert_eq!(by_name("seal").count, ing.seals);
            assert!(by_name("seal").mean_ms > 0.0);
            // Merged: one segment again, queries still flowing.
            assert_eq!(merged.segments, 1);
            assert!(merged.queries > 0);
            assert!(merged.throughput_qps > 0.0);
        }
        let json = report_json(&report);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("report JSON parses");
        assert!(parsed.get("cells").is_some());
        let table = format_report(&report);
        assert!(table.contains("ingest"));
        assert!(table.contains("merged"));
    }
}
