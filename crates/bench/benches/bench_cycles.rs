//! Figure 2 microbenchmark: anchored cycle enumeration over the KB (the
//! offline structural-analysis cost of Section 2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbgraph::{CycleFinder, CycleLimits, Node};
use synthwiki::{TestBed, TestBedConfig};

fn bench_cycles(c: &mut Criterion) {
    let bed = TestBed::generate(&TestBedConfig::small());
    let graph = &bed.kb.graph;
    let anchor = Node::Article(bed.kb.article_of[0]);

    let mut group = c.benchmark_group("cycle_enumeration");
    for max_len in [3usize, 4, 5] {
        let limits = CycleLimits {
            max_len,
            max_expand_degree: 64,
            max_cycles: 100_000,
        };
        group.bench_with_input(BenchmarkId::new("max_len", max_len), &limits, |b, &limits| {
            b.iter(|| {
                let mut finder = CycleFinder::new(graph, limits);
                let mut count = 0usize;
                finder.visit_cycles(std::hint::black_box(anchor), |_| count += 1);
                count
            })
        });
    }
    group.finish();

    c.bench_function("undirected_neighbors", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            graph.undirected_neighbors(std::hint::black_box(anchor), &mut buf);
            buf.len()
        })
    });
}

criterion_group!(benches, bench_cycles);
criterion_main!(benches);
