//! Deterministic linking-error channel.
//!
//! The synthetic aliases already create *intrinsic* ambiguity (the wrong
//! but more common sense wins). This channel adds *extrinsic* error on
//! top — missed mentions and mislinks — so experiments can sweep linking
//! quality, as the paper's discussion of Figure 6 suggests ("improving
//! the techniques used in our system would improve the results").

/// Miss / mislink probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability that a detected mention is dropped entirely.
    pub p_miss: f64,
    /// Probability that a resolved mention is swapped to the next-best
    /// sense (when one exists; otherwise dropped).
    pub p_mislink: f64,
}

impl NoiseModel {
    /// The noiseless channel.
    pub fn none() -> Self {
        NoiseModel {
            p_miss: 0.0,
            p_mislink: 0.0,
        }
    }

    /// True when the channel never alters anything.
    pub fn is_none(&self) -> bool {
        self.p_miss <= 0.0 && self.p_mislink <= 0.0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::none()
    }
}

/// A tiny deterministic PRNG (splitmix64) so noise decisions are a pure
/// function of (seed, draw index) — links never change across runs.
#[derive(Debug, Clone)]
pub struct NoiseRng {
    state: u64,
}

impl NoiseRng {
    /// Seeds the generator; the same seed yields the same decisions.
    pub fn new(seed: u64) -> Self {
        NoiseRng { state: seed }
    }

    /// Seeds from arbitrary text (e.g. the query string) via FNV-1a.
    pub fn from_text(text: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        NoiseRng::new(h)
    }

    /// Next uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_channel_is_none() {
        assert!(NoiseModel::none().is_none());
        assert!(NoiseModel::default().is_none());
        assert!(!NoiseModel {
            p_miss: 0.1,
            p_mislink: 0.0
        }
        .is_none());
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = NoiseRng::new(7);
        let mut b = NoiseRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    #[test]
    fn rng_from_text_stable() {
        let mut a = NoiseRng::from_text("cable cars");
        let mut b = NoiseRng::from_text("cable cars");
        assert_eq!(a.next_f64(), b.next_f64());
        let mut c = NoiseRng::from_text("other");
        assert_ne!(a.next_f64(), c.next_f64());
    }

    #[test]
    fn values_in_unit_interval_and_spread() {
        let mut r = NoiseRng::new(42);
        let mut low = 0;
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                low += 1;
            }
        }
        assert!((350..=650).contains(&low), "roughly balanced: {low}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = NoiseRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
