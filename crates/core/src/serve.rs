//! Concurrent query serving: work-stealing batch execution, expansion
//! caching, and injected-clock latency metrics.
//!
//! The ROADMAP's north star is serving SQE under heavy traffic "as fast
//! as the hardware allows" while staying bit-identical to the paper's
//! sequential pipeline. This module provides:
//!
//! * [`run_indexed`] — a work-stealing executor over `crossbeam`
//!   channels. Each query is one work item pulled by idle workers, so a
//!   pathological query no longer stalls its whole even-sized chunk (the
//!   previous behaviour of `rank_sqe_many` / `build_many`). Results are
//!   written into their input slot, so output order — and therefore every
//!   downstream run file — is independent of scheduling.
//! * [`QueryService`] — the serving facade over [`SqePipeline`](crate::pipeline::SqePipeline): an LRU
//!   [`ExpansionCache`] keyed by the sorted query-node set + motif-set
//!   fingerprint (motif traversal is the dominant per-query cost and is a
//!   pure function of exactly that key), per-worker reusable scratch buffers,
//!   and [`ServeMetrics`] recording cache traffic plus per-stage latency
//!   through an injected [`Clock`] (no wall-clock reads in library code;
//!   tests drive a `ManualClock`).
//!
//! # Determinism contract
//!
//! For any worker count and any cache state, [`QueryService`] output is
//! byte-identical to the sequential uncached [`SqePipeline`](crate::pipeline::SqePipeline): cached
//! expansions are exactly the `QueryGraph::expansions` a fresh build
//! returns (the cache key preserves query-node multiplicity), and a
//! racing double-compute of the same key inserts the same value twice.
//! `tests/serve_determinism.rs` enforces this end-to-end on run files.

use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};

use kbgraph::{ArticleId, KbGraph};
use searchlite::ql::{self, SearchHit};
use searchlite::{DocId, Index, IngestError, SealReport, Searcher, SegmentedIndex};
use sqe_admission::{
    select_rung, AdmissionConfig, AdmissionController, Deadline, RungId, ServeOutcome, ShedReason,
    Stage, Ticket,
};

use crate::cache::{CacheKey, CachedExpansions, ExpansionCache};
use crate::combine;
use crate::expand;
use crate::metrics::{Clock, MetricsSnapshot, NullClock, ServeMetrics};
use crate::pipeline::{SqeConfig, SqeScratch};
use crate::query_graph::QueryGraphBuilder;
use crate::spec::{MotifLadder, MotifSet};

/// Runs `f` over every item on `workers` threads with work stealing:
/// items are fed through an MPMC channel and idle workers pull the next
/// index, so load imbalance between items never idles a thread while work
/// remains. Each worker owns one scratch value from `make_scratch`.
/// Results keep input order (slot `i` holds `f(&items[i])`).
///
/// With `workers <= 1` or fewer than two items the items are processed
/// inline on the caller's thread (still through one scratch value), which
/// is the sequential reference behaviour.
pub fn run_indexed<T, R, S>(
    items: &[T],
    workers: usize,
    make_scratch: impl Fn() -> S + Sync,
    f: impl Fn(&T, &mut S) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    if workers <= 1 || items.len() <= 1 {
        let mut scratch = make_scratch();
        return items.iter().map(|item| f(item, &mut scratch)).collect();
    }
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    for i in 0..items.len() {
        job_tx
            .send(i)
            .expect("invariant: unbounded channel send cannot fail");
    }
    // Close the job queue: workers drain it and then see disconnection.
    drop(job_tx);
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, R)>();
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers.min(items.len()) {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let make_scratch = &make_scratch;
            let f = &f;
            s.spawn(move |_| {
                let mut scratch = make_scratch();
                while let Ok(i) = job_rx.recv() {
                    if let Some(item) = items.get(i) {
                        let r = f(item, &mut scratch);
                        res_tx
                            .send((i, r))
                            .expect("invariant: unbounded channel send cannot fail");
                    }
                }
            });
        }
        // Only workers hold result senders now: when they all finish (or
        // panic, which drops their sender), `recv` disconnects and this
        // loop ends — no deadlock, and the scope re-raises any panic.
        drop(res_tx);
        while let Ok((i, r)) = res_rx.recv() {
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(r);
            }
        }
    })
    .expect("invariant: child panics re-raise inside the scope itself");
    out.into_iter()
        .map(|r| r.expect("invariant: every job index sent exactly one result"))
        .collect()
}

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads for batch entry points (1 = in-caller sequential).
    pub workers: usize,
    /// Seeded capacity of the expansion cache (0 disables caching).
    pub cache_capacity: usize,
    /// Admission policy for the deadline-aware `serve*` entry points
    /// (the plain `rank_sqe*` paths bypass admission entirely). The
    /// default is unlimited: every request is admitted.
    pub admission: AdmissionConfig,
    /// The degraded-mode ladder the deadline-aware `serve*` entry points
    /// walk: rung 0 is full quality, later rungs expand with cheaper
    /// motif sets (or not at all). The default is the paper's
    /// `SQE_T&S` → `SQE_T` → unexpanded ladder.
    pub ladder: MotifLadder,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            cache_capacity: 4096,
            admission: AdmissionConfig::unlimited(),
            ladder: MotifLadder::default_sqe(),
        }
    }
}

/// One request to the admission-controlled batch entry point
/// ([`QueryService::serve_batch`]): the query text, its linked KB
/// nodes, and an absolute completion deadline (use [`Deadline::NONE`]
/// for best-effort requests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// The raw query text.
    pub text: String,
    /// KB nodes the entity linker resolved from the text.
    pub nodes: Vec<ArticleId>,
    /// Completion deadline on the service's injected clock.
    pub deadline: Deadline,
}

/// The concurrent SQE query service: [`SqePipeline`](crate::pipeline::SqePipeline) semantics behind an
/// expansion cache, a work-stealing batch executor, live ingestion, and
/// latency metrics.
///
/// # Live ingestion
///
/// The service owns a [`SegmentedIndex`]: [`QueryService::add_document`]
/// feeds its buffer (invisible to queries), [`QueryService::seal`]
/// freezes the buffer into a new immutable segment and atomically
/// publishes a refreshed [`Searcher`] view. Publication compares the
/// segment-set epoch, so each seal invalidates the expansion cache
/// **exactly once** — auto-merges triggered by the seal ride the same
/// epoch bump. Queries already in flight keep the view they started
/// with (a cheap `Arc` clone), so a seal never tears a batch.
pub struct QueryService<'a> {
    graph: &'a KbGraph,
    cfg: SqeConfig,
    serve_cfg: ServeConfig,
    /// Serializes maintenance (seal / force-merge) so expensive segment
    /// builds never race each other, while `live` stays free for
    /// ingestion. Lock order: `maint` → `live` → `view`, always.
    maint: Mutex<()>,
    /// The mutable corpus: sealed segments plus the live ingest buffer.
    /// Held only for cheap phases — segment builds and merges run on
    /// detached state (see [`QueryService::seal`]).
    live: Mutex<SegmentedIndex>,
    /// The published immutable view queries read (swapped on seal/merge).
    view: RwLock<Searcher>,
    cache: ExpansionCache,
    metrics: ServeMetrics,
    clock: Arc<dyn Clock>,
    /// Gatekeeper for the deadline-aware `serve*` entry points. Holds no
    /// clock of its own: every decision takes this service's clock
    /// reading as a parameter, keeping the whole path deterministic
    /// under a `ManualClock`.
    admission: AdmissionController,
}

impl<'a> QueryService<'a> {
    /// Creates a service with the no-op [`NullClock`] (counters work,
    /// latency histograms record zeros). The index is cloned in as
    /// segment 0 of the live corpus.
    pub fn new(graph: &'a KbGraph, index: &Index, cfg: SqeConfig, serve_cfg: ServeConfig) -> Self {
        QueryService::with_clock(graph, index, cfg, serve_cfg, Arc::new(NullClock))
    }

    /// Creates a service over a loaded binary snapshot — the cold-start
    /// path a restarting deployment takes. The snapshot's segments are
    /// adopted as-is (no merge, no re-analysis); the snapshot was fully
    /// verified and audited at decode time.
    pub fn from_snapshot(
        snapshot: &'a sqe_store::Snapshot,
        collection: &str,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
    ) -> Result<Self, sqe_store::StoreError> {
        let searcher = snapshot.searcher(collection)?;
        let live =
            SegmentedIndex::from_segments(searcher.analyzer().clone(), searcher.segments().to_vec());
        Ok(QueryService::from_segmented(snapshot.graph(), live, cfg, serve_cfg))
    }

    /// Creates a service with an injected clock — a `MonotonicClock` in
    /// the bench harness, a `ManualClock` in tests.
    pub fn with_clock(
        graph: &'a KbGraph,
        index: &Index,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        QueryService::from_segmented_with_clock(
            graph,
            SegmentedIndex::from_index(index.clone()),
            cfg,
            serve_cfg,
            clock,
        )
    }

    /// Creates a service over an existing segmented corpus (buffered
    /// documents stay buffered until the first [`QueryService::seal`]).
    pub fn from_segmented(
        graph: &'a KbGraph,
        live: SegmentedIndex,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
    ) -> Self {
        QueryService::from_segmented_with_clock(graph, live, cfg, serve_cfg, Arc::new(NullClock))
    }

    /// [`QueryService::from_segmented`] with an injected clock.
    pub fn from_segmented_with_clock(
        graph: &'a KbGraph,
        live: SegmentedIndex,
        cfg: SqeConfig,
        serve_cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let view = live.searcher();
        #[cfg(all(debug_assertions, feature = "validate"))]
        {
            kbgraph::audit::GraphAudit::run(graph).assert_clean("QueryService");
            for seg in view.segments() {
                searchlite::audit::IndexAudit::run(seg.index()).assert_clean("QueryService");
            }
        }
        let cache = ExpansionCache::new(serve_cfg.cache_capacity);
        let metrics = ServeMetrics::new(serve_cfg.ladder.len());
        let admission = AdmissionController::new(serve_cfg.admission);
        QueryService {
            graph,
            cfg,
            serve_cfg,
            maint: Mutex::new(()),
            live: Mutex::new(live),
            view: RwLock::new(view),
            cache,
            metrics,
            clock,
            admission,
        }
    }

    /// Locks the maintenance mutex, serializing seal/merge against each
    /// other without blocking ingestion or queries. A poisoned lock means
    /// a previous maintenance op panicked mid-build; the corpus itself is
    /// still consistent (detached state was simply dropped), so proceed.
    fn maint_lock(&self) -> MutexGuard<'_, ()> {
        match self.maint.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Locks the live corpus; a poisoned mutex still yields usable state
    /// (the segmented index never holds partial updates across panics
    /// that matter to readers — sealed segments are immutable).
    fn live_lock(&self) -> MutexGuard<'_, SegmentedIndex> {
        match self.live.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Read-locks the published view.
    fn view_read(&self) -> RwLockReadGuard<'_, Searcher> {
        match self.view.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Swaps in a freshly published searcher. Invalidates the expansion
    /// cache exactly once per epoch advance: republishing the same epoch
    /// (or an older one) leaves the cache warm.
    fn publish(&self, searcher: Searcher) {
        let advanced = {
            let mut view = match self.view.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let advanced = searcher.epoch() > view.epoch();
            if advanced || searcher.epoch() == view.epoch() {
                *view = searcher;
            }
            advanced
        };
        if advanced {
            self.cache.invalidate();
            self.metrics.invalidations.inc();
        }
    }

    /// The KB graph.
    pub fn graph(&self) -> &KbGraph {
        self.graph
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SqeConfig {
        &self.cfg
    }

    /// The serving configuration.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve_cfg
    }

    /// A clone of the currently published searcher view (cheap: one
    /// `Arc`). Queries served through it are stable across later seals.
    pub fn searcher(&self) -> Searcher {
        self.view_read().clone()
    }

    /// The segment-set epoch of the published view.
    pub fn epoch(&self) -> u64 {
        self.view_read().epoch()
    }

    /// Sealed segments visible to queries.
    pub fn num_segments(&self) -> usize {
        self.view_read().num_segments()
    }

    /// Documents waiting in the ingest buffer (invisible until sealed).
    pub fn num_buffered_docs(&self) -> usize {
        self.live_lock().num_buffered_docs()
    }

    // ------------------------------------------------------- ingestion --

    /// Adds a document to the live ingest buffer; it becomes searchable
    /// at the next [`QueryService::seal`]. Duplicate external ids are
    /// rejected against the whole corpus, sealed and buffered alike.
    pub fn add_document(&self, external_id: &str, text: &str) -> Result<DocId, IngestError> {
        let t0 = self.clock.now_nanos();
        let result = self.live_lock().add_document(external_id, text);
        if result.is_ok() {
            let t1 = self.clock.now_nanos();
            self.metrics.docs_ingested.inc();
            self.metrics.ingest.add.record(t1.saturating_sub(t0));
        }
        result
    }

    /// Seals the ingest buffer into a new immutable segment, runs the
    /// merge policy, and publishes the refreshed view. Returns `None`
    /// (and changes nothing) when the buffer is empty. The expansion
    /// cache is invalidated exactly once per successful seal.
    ///
    /// The expensive work — building the segment, running policy merges —
    /// happens on state detached from the `live` mutex, so concurrent
    /// `add_document` calls and queries never block behind it. Only the
    /// cheap begin/commit/install phases take the lock; `maint`
    /// serializes whole maintenance ops against each other, so the merge
    /// outcome is never stale.
    pub fn seal(&self) -> Option<SealReport> {
        let t0 = self.clock.now_nanos();
        let _maint = self.maint_lock();
        let pending = self.live_lock().begin_seal()?;
        // lint:allow(must-audit-after-mutation) — IndexAudit runs inside PendingSeal::build
        let built = pending.build();
        let (mut report, task) = {
            let mut live = self.live_lock();
            let report = live.commit_seal(built);
            (report, live.merge_task())
        };
        let outcome = task.run_policy();
        let searcher = {
            let mut live = self.live_lock();
            if let Some(merges) = live.install_merge(outcome) {
                report.merges = merges;
            }
            live.searcher()
        };
        self.publish(searcher);
        self.metrics.seals.inc();
        self.metrics
            .merges
            .add(u64::try_from(report.merges).expect("invariant: merge count fits in u64"));
        let t1 = self.clock.now_nanos();
        self.metrics.ingest.seal.record(t1.saturating_sub(t0));
        Some(report)
    }

    /// Compacts every sealed segment into one and publishes the merged
    /// view. Returns `false` (a no-op) with fewer than two segments.
    /// Like [`QueryService::seal`], the merge itself runs on a detached
    /// snapshot under `maint` only — the `live` mutex is held just to
    /// snapshot and to install the result.
    pub fn force_merge(&self) -> bool {
        let t0 = self.clock.now_nanos();
        let _maint = self.maint_lock();
        let task = self.live_lock().merge_task();
        let Some(outcome) = task.run_full() else {
            return false;
        };
        let searcher = {
            let mut live = self.live_lock();
            if live.install_merge(outcome).is_none() {
                // Unreachable while `maint` serializes maintenance, but a
                // stale outcome must never clobber a newer segment set.
                return false;
            }
            live.searcher()
        };
        self.publish(searcher);
        self.metrics.merges.inc();
        let t1 = self.clock.now_nanos();
        self.metrics.ingest.merge.record(t1.saturating_sub(t0));
        true
    }

    /// Converts hits to external document ids (against the currently
    /// published view).
    pub fn external_ids(&self, hits: &[SearchHit]) -> Vec<String> {
        let view = self.view_read();
        ids_of(&view, hits)
    }

    /// Bumps the cache generation: every cached expansion becomes stale.
    /// Call when the graph content behind the service changes out of
    /// band; seals and merges invalidate automatically.
    pub fn invalidate_cache(&self) {
        self.cache.invalidate();
        self.metrics.invalidations.inc();
    }

    /// Occupied cache entries (live and stale-but-unreclaimed).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Point-in-time copy of every metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.evictions(), self.epoch())
    }

    /// Zeroes counters and histograms without touching the cache: the
    /// bench harness resets between its cold and warm phases so the warm
    /// numbers are not polluted by cold-phase latencies.
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// The expansion features for one query under one motif set:
    /// cache hit, or a fresh motif traversal that seeds the cache. Two
    /// workers racing on the same cold key both compute the same value,
    /// so the outcome is order-independent.
    fn expansions_for(
        &self,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        scratch: &mut SqeScratch,
    ) -> CachedExpansions {
        let key = CacheKey::new(nodes, motifs.fingerprint());
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.cache_hits.inc();
            return hit;
        }
        self.metrics.cache_misses.inc();
        let builder = QueryGraphBuilder::from_set(self.graph, motifs);
        let qg = builder.build_with_scratch(nodes, &mut scratch.qg);
        let expansions: CachedExpansions = Arc::new(qg.expansions);
        self.cache.insert(key, Arc::clone(&expansions));
        expansions
    }

    /// Expand + rank for one motif set, recording the two stage
    /// histograms but not the per-query totals (SQE_C runs this three
    /// times per query). `searcher` is the view pinned at query entry,
    /// so a concurrent seal cannot change the corpus mid-query.
    fn stage_run(
        &self,
        searcher: &Searcher,
        text: &str,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        scratch: &mut SqeScratch,
    ) -> Vec<SearchHit> {
        let cfg = &self.cfg;
        let t0 = self.clock.now_nanos();
        let expansions = self.expansions_for(nodes, motifs, scratch);
        let t1 = self.clock.now_nanos();
        let query = expand::build_query(
            self.graph,
            text,
            nodes,
            &expansions,
            searcher.analyzer(),
            &cfg.expand,
        );
        let hits = ql::rank_with_scratch(searcher, &query, cfg.ql, cfg.depth, &mut scratch.ql);
        let t2 = self.clock.now_nanos();
        self.metrics.stages.expand.record(t1.saturating_sub(t0));
        self.metrics.stages.rank.record(t2.saturating_sub(t1));
        hits
    }

    /// Retrieval with an arbitrary [`MotifSet`] through the cache;
    /// identical output to [`crate::pipeline::SqePipeline::rank_sqe`].
    pub fn rank_sqe(&self, text: &str, nodes: &[ArticleId], motifs: &MotifSet) -> Vec<SearchHit> {
        let searcher = self.searcher();
        self.rank_sqe_with_scratch(&searcher, text, nodes, motifs, &mut SqeScratch::new())
    }

    fn rank_sqe_with_scratch(
        &self,
        searcher: &Searcher,
        text: &str,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        scratch: &mut SqeScratch,
    ) -> Vec<SearchHit> {
        let t0 = self.clock.now_nanos();
        let hits = self.stage_run(searcher, text, nodes, motifs, scratch);
        let t1 = self.clock.now_nanos();
        self.metrics.stages.total.record(t1.saturating_sub(t0));
        self.metrics.queries.inc();
        hits
    }

    /// `SQE_C` rank-range combination through the cache; identical output
    /// to [`SqePipeline::rank_sqe_c`].
    pub fn rank_sqe_c(&self, text: &str, nodes: &[ArticleId]) -> Vec<String> {
        let searcher = self.searcher();
        self.rank_sqe_c_with_scratch(&searcher, text, nodes, &mut SqeScratch::new())
    }

    fn rank_sqe_c_with_scratch(
        &self,
        searcher: &Searcher,
        text: &str,
        nodes: &[ArticleId],
        scratch: &mut SqeScratch,
    ) -> Vec<String> {
        let t0 = self.clock.now_nanos();
        let t = self.stage_run(searcher, text, nodes, &MotifSet::triangular(), scratch);
        let ts = self.stage_run(searcher, text, nodes, &MotifSet::t_and_s(), scratch);
        let s = self.stage_run(searcher, text, nodes, &MotifSet::square(), scratch);
        let c0 = self.clock.now_nanos();
        let ids = combine::sqe_c(
            &ids_of(searcher, &t),
            &ids_of(searcher, &ts),
            &ids_of(searcher, &s),
            self.cfg.depth,
        );
        let c1 = self.clock.now_nanos();
        self.metrics.stages.combine.record(c1.saturating_sub(c0));
        self.metrics.stages.total.record(c1.saturating_sub(t0));
        self.metrics.queries.inc();
        ids
    }

    /// Batch `SQE` retrieval over the configured worker pool; results
    /// keep input order and match [`crate::pipeline::SqePipeline::rank_sqe_many`]. The
    /// whole batch is served from one pinned view: a seal landing
    /// mid-batch affects the *next* batch, never this one.
    pub fn run_batch(
        &self,
        queries: &[(String, Vec<ArticleId>)],
        motifs: &MotifSet,
    ) -> Vec<Vec<SearchHit>> {
        let searcher = self.searcher();
        run_indexed(
            queries,
            self.serve_cfg.workers,
            SqeScratch::new,
            |(text, nodes), scratch| {
                self.rank_sqe_with_scratch(&searcher, text, nodes, motifs, scratch)
            },
        )
    }

    /// Batch `SQE_C` retrieval over the configured worker pool; results
    /// keep input order (same pinned-view guarantee as
    /// [`QueryService::run_batch`]).
    pub fn run_batch_sqe_c(&self, queries: &[(String, Vec<ArticleId>)]) -> Vec<Vec<String>> {
        let searcher = self.searcher();
        run_indexed(
            queries,
            self.serve_cfg.workers,
            SqeScratch::new,
            |(text, nodes), scratch| self.rank_sqe_c_with_scratch(&searcher, text, nodes, scratch),
        )
    }

    // ------------------------------------ admission & degraded serving --

    /// The admission controller guarding the `serve*` entry points.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Asks the admission controller for a ticket at the current clock
    /// reading — the first thing that happens to a request, before any
    /// work is enqueued. Rejections are counted in `sheds`.
    pub fn admit(&self) -> Result<Ticket, ShedReason> {
        let decision = self.admission.try_admit(self.clock.now_nanos());
        if decision.is_err() {
            self.metrics.sheds.inc();
        }
        decision
    }

    /// Feeds one cost observation into the degraded-mode ladder's
    /// per-rung estimates — the same thing every served request does.
    /// Benchmarks and tests use this to prime the selector before the
    /// first real traffic arrives.
    pub fn record_ladder_cost(&self, rung: usize, nanos: u64) {
        self.metrics.ladder.record_cost(rung, nanos);
    }

    /// Admission-controlled, deadline-aware serve of one request:
    /// admit, pick the highest ladder rung that fits the remaining
    /// budget, execute it with deadline checks at stage boundaries.
    pub fn serve(
        &self,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
    ) -> ServeOutcome<Vec<SearchHit>> {
        match self.admit() {
            Err(reason) => ServeOutcome::Shed(reason),
            Ok(ticket) => self.serve_admitted(ticket, text, nodes, deadline),
        }
    }

    /// Serves a request that already holds an admission ticket (the
    /// open-loop bench admits at arrival time on its dispatcher thread,
    /// then starts work on a pool thread).
    pub fn serve_admitted(
        &self,
        ticket: Ticket,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
    ) -> ServeOutcome<Vec<SearchHit>> {
        let searcher = self.searcher();
        self.serve_admitted_with_scratch(
            &searcher,
            ticket,
            text,
            nodes,
            deadline,
            &mut SqeScratch::new(),
        )
    }

    fn serve_admitted_with_scratch(
        &self,
        searcher: &Searcher,
        ticket: Ticket,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
        scratch: &mut SqeScratch,
    ) -> ServeOutcome<Vec<SearchHit>> {
        let now = self.clock.now_nanos();
        if let Err(reason) = self.admission.on_start(ticket, now) {
            self.metrics.sheds.inc();
            return ServeOutcome::Shed(reason);
        }
        let remaining = deadline.remaining(now);
        if remaining == Some(0) {
            self.metrics.deadline_exceeded.inc();
            return ServeOutcome::DeadlineExceeded(Stage::Queue);
        }
        let Some(rung) = select_rung(remaining, &self.metrics.ladder.cost_estimates()) else {
            self.metrics.sheds.inc();
            return ServeOutcome::Shed(ShedReason::BudgetExhausted);
        };
        self.run_rung(searcher, rung, text, nodes, deadline, scratch)
    }

    /// Runs one request at a forced ladder rung with no admission and no
    /// deadline — the calibration entry benchmarks use to measure (and
    /// prime, via the recorded cost histogram) per-rung costs.
    pub fn serve_at_rung(&self, rung: usize, text: &str, nodes: &[ArticleId]) -> Vec<SearchHit> {
        let searcher = self.searcher();
        self.run_rung(&searcher, rung, text, nodes, Deadline::NONE, &mut SqeScratch::new())
            .into_value()
            .unwrap_or_default()
    }

    /// Executes one ladder rung under `deadline`. The elapsed cost is
    /// recorded into the rung's histogram even when the deadline blows
    /// mid-run: a too-slow attempt is exactly the observation the
    /// estimator needs to stop selecting that rung.
    fn run_rung(
        &self,
        searcher: &Searcher,
        rung: usize,
        text: &str,
        nodes: &[ArticleId],
        deadline: Deadline,
        scratch: &mut SqeScratch,
    ) -> ServeOutcome<Vec<SearchHit>> {
        let rung_def = self
            .serve_cfg
            .ladder
            .rung(rung)
            .expect("invariant: rung index is within the configured ladder");
        let t0 = self.clock.now_nanos();
        let staged = match rung_def.motifs() {
            Some(motifs) => {
                self.stage_run_deadline(searcher, text, nodes, motifs, deadline, scratch)
            }
            None => {
                // No expansion: rank the user part of the query directly
                // (the paper's unexpanded QL baseline).
                let query = expand::user_part(text, searcher.analyzer());
                let hits =
                    ql::rank_with_scratch(searcher, &query, self.cfg.ql, self.cfg.depth, &mut scratch.ql);
                let t1 = self.clock.now_nanos();
                self.metrics.stages.rank.record(t1.saturating_sub(t0));
                Ok(hits)
            }
        };
        let t1 = self.clock.now_nanos();
        let elapsed = t1.saturating_sub(t0);
        self.metrics.ladder.record_cost(rung, elapsed);
        self.metrics.stages.total.record(elapsed);
        self.metrics.queries.inc();
        let hits = match staged {
            Ok(hits) => hits,
            Err(stage) => {
                self.metrics.deadline_exceeded.inc();
                return ServeOutcome::DeadlineExceeded(stage);
            }
        };
        if deadline.expired(t1) {
            self.metrics.deadline_exceeded.inc();
            return ServeOutcome::DeadlineExceeded(Stage::Rank);
        }
        if let Some(counter) = self.metrics.ladder.served.get(rung) {
            counter.inc();
        }
        if rung == 0 {
            ServeOutcome::Ok(hits)
        } else {
            ServeOutcome::Degraded(RungId::new(rung, Arc::clone(rung_def.name())), hits)
        }
    }

    /// [`QueryService::stage_run`] with a deadline check between the
    /// expand and rank stages: when expansion alone blows the deadline,
    /// ranking is skipped entirely.
    #[allow(clippy::too_many_arguments)]
    fn stage_run_deadline(
        &self,
        searcher: &Searcher,
        text: &str,
        nodes: &[ArticleId],
        motifs: &MotifSet,
        deadline: Deadline,
        scratch: &mut SqeScratch,
    ) -> Result<Vec<SearchHit>, Stage> {
        let cfg = &self.cfg;
        let t0 = self.clock.now_nanos();
        let expansions = self.expansions_for(nodes, motifs, scratch);
        let t1 = self.clock.now_nanos();
        self.metrics.stages.expand.record(t1.saturating_sub(t0));
        if deadline.expired(t1) {
            return Err(Stage::Expand);
        }
        let query = expand::build_query(
            self.graph,
            text,
            nodes,
            &expansions,
            searcher.analyzer(),
            &cfg.expand,
        );
        let hits = ql::rank_with_scratch(searcher, &query, cfg.ql, cfg.depth, &mut scratch.ql);
        let t2 = self.clock.now_nanos();
        self.metrics.stages.rank.record(t2.saturating_sub(t1));
        Ok(hits)
    }

    /// Admission-controlled batch serving. Admission decisions are taken
    /// in a **sequential pre-pass in input order on the caller's
    /// thread**: queue-bound and token-bucket state evolve with arrival
    /// order alone, never with worker scheduling, so for a fixed clock
    /// schedule the outcome sequence is byte-identical at any worker
    /// count (the determinism wall in `tests/serve_determinism.rs`
    /// enforces this). Execution then fans out over the worker pool into
    /// order-preserving slots, same as [`QueryService::run_batch`].
    pub fn serve_batch(&self, requests: &[ServeRequest]) -> Vec<ServeOutcome<Vec<SearchHit>>> {
        let searcher = self.searcher();
        let plans: Vec<(usize, Result<Ticket, ShedReason>)> = requests
            .iter()
            .enumerate()
            .map(|(i, _)| (i, self.admit()))
            .collect();
        run_indexed(
            &plans,
            self.serve_cfg.workers,
            SqeScratch::new,
            |(i, plan), scratch| {
                let req = requests
                    .get(*i)
                    .expect("invariant: plans index requests one-to-one");
                match plan {
                    Err(reason) => ServeOutcome::Shed(*reason),
                    Ok(ticket) => self.serve_admitted_with_scratch(
                        &searcher,
                        *ticket,
                        &req.text,
                        &req.nodes,
                        req.deadline,
                        scratch,
                    ),
                }
            },
        )
    }
}

/// External ids of `hits` against one pinned searcher view.
fn ids_of(searcher: &Searcher, hits: &[SearchHit]) -> Vec<String> {
    hits.iter()
        .map(|h| searcher.external_id(h.doc).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ManualClock;
    use crate::pipeline::SqePipeline;
    use kbgraph::GraphBuilder;
    use searchlite::{Analyzer, IndexBuilder};

    fn world() -> (KbGraph, Index, ArticleId) {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let cat = b.add_category("mountain railways");
        b.add_mutual_link(cable, funi);
        b.add_membership(cable, cat);
        b.add_membership(funi, cat);
        let graph = b.build();

        let mut ib = IndexBuilder::new(Analyzer::plain());
        ib.add_document("d-cable-0", "cable car climbing the peak").expect("unique test ids");
        ib.add_document("d-funi-0", "old funicular near the village").expect("unique test ids");
        ib.add_document("d-funi-1", "the funicular station entrance").expect("unique test ids");
        ib.add_document("d-noise-0", "a market square with fruit").expect("unique test ids");
        let index = ib.build();
        (graph, index, cable)
    }

    fn queries(cable: ArticleId) -> Vec<(String, Vec<ArticleId>)> {
        vec![
            ("cable car".into(), vec![cable]),
            ("funicular station".into(), vec![cable]),
            ("market fruit".into(), vec![]),
            ("cable car".into(), vec![cable]), // repeat: cache hit
        ]
    }

    #[test]
    fn run_indexed_keeps_input_order_at_any_worker_count() {
        let items: Vec<u32> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for workers in [0, 1, 2, 8, 64] {
            let got = run_indexed(&items, workers, || (), |&x, ()| u64::from(x) * 3);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn run_indexed_empty_and_singleton() {
        let none: Vec<u8> = Vec::new();
        assert!(run_indexed(&none, 4, || (), |&x, ()| x).is_empty());
        assert_eq!(run_indexed(&[9u8], 4, || (), |&x, ()| x), vec![9]);
    }

    #[test]
    fn run_indexed_scratch_is_per_worker_state() {
        // Scratch values accumulate across items without cross-talk: the
        // per-item result only depends on the item, never on scheduling.
        let items: Vec<u32> = (0..16).collect();
        let got = run_indexed(
            &items,
            4,
            Vec::<u32>::new,
            |&x, scratch: &mut Vec<u32>| {
                scratch.push(x);
                x + 1
            },
        );
        assert_eq!(got, (1..=16).collect::<Vec<u32>>());
    }

    #[test]
    fn service_matches_pipeline_for_each_motif_config() {
        let (graph, index, cable) = world();
        let pipeline = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        for motifs in [MotifSet::triangular(), MotifSet::square(), MotifSet::t_and_s()] {
            for (text, nodes) in queries(cable) {
                let want = pipeline.rank_sqe(&text, &nodes, &motifs).0;
                // Twice: cold then warm cache.
                assert_eq!(service.rank_sqe(&text, &nodes, &motifs), want);
                assert_eq!(service.rank_sqe(&text, &nodes, &motifs), want);
            }
        }
    }

    #[test]
    fn service_sqe_c_matches_pipeline() {
        let (graph, index, cable) = world();
        let pipeline = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        for (text, nodes) in queries(cable) {
            let want = pipeline.rank_sqe_c(&text, &nodes);
            assert_eq!(service.rank_sqe_c(&text, &nodes), want);
            assert_eq!(service.rank_sqe_c(&text, &nodes), want, "warm");
        }
    }

    #[test]
    fn batch_matches_sequential_at_every_worker_count() {
        let (graph, index, cable) = world();
        let pipeline = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let qs = queries(cable);
        let want: Vec<Vec<SearchHit>> = qs
            .iter()
            .map(|(text, nodes)| pipeline.rank_sqe(text, nodes, &MotifSet::t_and_s()).0)
            .collect();
        for workers in [1, 2, 8] {
            let serve_cfg = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let service = QueryService::new(&graph, &index, SqeConfig::default(), serve_cfg);
            assert_eq!(service.run_batch(&qs, &MotifSet::t_and_s()), want, "cold workers={workers}");
            assert_eq!(service.run_batch(&qs, &MotifSet::t_and_s()), want, "warm workers={workers}");
        }
    }

    #[test]
    fn cache_counters_track_hits_and_misses() {
        let (graph, index, cable) = world();
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        let qs = queries(cable);
        service.run_batch(&qs, &MotifSet::triangular());
        let snap = service.metrics_snapshot();
        // 4 queries but only 2 distinct keys: the key is the node set +
        // motif config, so the three `[cable]` queries share one entry
        // regardless of their text.
        assert_eq!(snap.queries, 4);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.cache_hits, 2);
        service.run_batch(&qs, &MotifSet::triangular());
        let snap = service.metrics_snapshot();
        assert_eq!(snap.cache_misses, 2, "second pass is fully warm");
        assert_eq!(snap.cache_hits, 6);
        assert!(snap.cache_hit_rate > 0.7);
    }

    #[test]
    fn invalidation_forces_recompute() {
        let (graph, index, cable) = world();
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        let hits = service.rank_sqe("cable car", &[cable], &MotifSet::triangular());
        service.invalidate_cache();
        assert_eq!(service.rank_sqe("cable car", &[cable], &MotifSet::triangular()), hits);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.cache_misses, 2, "post-invalidation lookup misses");
        assert_eq!(snap.invalidations, 1);
    }

    #[test]
    fn zero_capacity_cache_still_serves_correctly() {
        let (graph, index, cable) = world();
        let pipeline = SqePipeline::from_index(&graph, &index, SqeConfig::default());
        let serve_cfg = ServeConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let service = QueryService::new(&graph, &index, SqeConfig::default(), serve_cfg);
        for _ in 0..2 {
            assert_eq!(
                service.rank_sqe("cable car", &[cable], &MotifSet::t_and_s()),
                pipeline.rank_sqe("cable car", &[cable], &MotifSet::t_and_s()).0
            );
        }
        let snap = service.metrics_snapshot();
        assert_eq!(snap.cache_hits, 0, "capacity 0 never hits");
        assert_eq!(snap.cache_misses, 2);
    }

    #[test]
    fn manual_clock_drives_stage_histograms() {
        let (graph, index, cable) = world();
        let clock = Arc::new(ManualClock::new());
        // Tick 100ns at every read. One rank_sqe reads five times (outer
        // t0, stage t0/t1/t2, outer t1): expand = 100, rank = 100,
        // total = 400 (spans the four inner ticks).
        struct Ticking(Arc<ManualClock>);
        impl Clock for Ticking {
            fn now_nanos(&self) -> u64 {
                self.0.advance(100);
                self.0.now_nanos()
            }
        }
        let service = QueryService::with_clock(
            &graph,
            &index,
            SqeConfig::default(),
            ServeConfig::default(),
            Arc::new(Ticking(Arc::clone(&clock))),
        );
        service.rank_sqe("cable car", &[cable], &MotifSet::triangular());
        let snap = service.metrics_snapshot();
        let stage = |i: usize| snap.stages.get(i).copied().expect("four stages");
        assert_eq!(stage(0).count, 1); // expand
        assert_eq!(stage(0).sum_nanos, 100);
        assert_eq!(stage(1).sum_nanos, 100); // rank
        assert_eq!(stage(3).sum_nanos, 400); // total spans 4 ticks
        assert_eq!(stage(2).count, 0, "no combine stage for plain SQE");
    }

    #[test]
    fn seal_publishes_and_invalidates_exactly_once() {
        let (graph, index, cable) = world();
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        assert_eq!(service.epoch(), 0);
        assert_eq!(service.num_segments(), 1);

        // Warm the cache, then ingest: the buffered doc stays invisible.
        let before = service.rank_sqe("funicular", &[cable], &MotifSet::triangular());
        service
            .add_document("d-funi-2", "a brand new funicular carriage")
            .expect("fresh external id");
        assert_eq!(service.num_buffered_docs(), 1);
        assert_eq!(service.searcher().num_docs(), 4);
        assert_eq!(
            service.rank_sqe("funicular", &[cable], &MotifSet::triangular()),
            before,
            "buffered documents must not affect results"
        );

        // Seal: one epoch bump, one invalidation, doc becomes visible.
        let report = service.seal().expect("non-empty buffer seals");
        assert_eq!(report.epoch, 1);
        assert_eq!(service.epoch(), 1);
        assert_eq!(service.num_buffered_docs(), 0);
        assert_eq!(service.searcher().num_docs(), 5);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.docs_ingested, 1);
        assert_eq!(snap.seals, 1);
        assert_eq!(snap.invalidations, 1, "exactly one invalidation per seal");
        assert_eq!(snap.ingest[0].count, 1, "one add recorded");
        assert_eq!(snap.ingest[1].count, 1, "one seal recorded");

        // The post-seal query sees the new doc and recomputes expansions.
        let after = service.rank_sqe("funicular", &[cable], &MotifSet::triangular());
        assert_eq!(after.len(), before.len() + 1);
        assert!(service.external_ids(&after).contains(&"d-funi-2".to_owned()));

        // Empty-buffer seal: no epoch bump, no invalidation.
        assert!(service.seal().is_none());
        let snap = service.metrics_snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.invalidations, 1, "no-op seal must not invalidate");

        // Duplicate ids are rejected against the sealed corpus.
        assert!(service.add_document("d-funi-2", "again").is_err());
        assert_eq!(service.metrics_snapshot().docs_ingested, 1);
    }

    #[test]
    fn force_merge_compacts_without_changing_results() {
        let (graph, index, cable) = world();
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        // Two seals on top of segment 0 → 3 segments (default merge
        // factor 4 leaves them unmerged).
        for (id, text) in [
            ("d-extra-0", "another cable car story"),
            ("d-extra-1", "the funicular opens at dawn"),
        ] {
            service.add_document(id, text).expect("fresh external id");
            service.seal().expect("seals");
        }
        assert_eq!(service.num_segments(), 3);
        let before = service.rank_sqe("cable car funicular", &[cable], &MotifSet::triangular());
        let epoch_before = service.epoch();

        assert!(service.force_merge());
        assert_eq!(service.num_segments(), 1);
        assert_eq!(service.epoch(), epoch_before + 1);
        let after = service.rank_sqe("cable car funicular", &[cable], &MotifSet::triangular());
        assert_eq!(before, after, "merge must not change scores or order");
        let snap = service.metrics_snapshot();
        assert_eq!(snap.merges, 1);
        assert_eq!(snap.ingest[2].count, 1, "one merge recorded");
        assert!(!service.force_merge(), "single segment: no-op");
        assert_eq!(snap.epoch, service.epoch(), "no-op merge keeps the epoch");
    }

    #[test]
    fn serve_unbounded_matches_rank_sqe_full() {
        let (graph, index, cable) = world();
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        let want = service.rank_sqe("cable car", &[cable], &MotifSet::t_and_s());
        match service.serve("cable car", &[cable], Deadline::NONE) {
            ServeOutcome::Ok(hits) => assert_eq!(hits, want),
            other => panic!("expected Ok, got {}", other.label()),
        }
        let snap = service.metrics_snapshot();
        assert_eq!(snap.ladder_served, [1, 0, 0]);
        assert_eq!(snap.sheds, 0);
    }

    #[test]
    fn ladder_selection_degrades_with_budget() {
        let (graph, index, cable) = world();
        let clock = Arc::new(ManualClock::new());
        let service = QueryService::with_clock(
            &graph,
            &index,
            SqeConfig::default(),
            ServeConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        // Prime per-rung cost estimates: full 10µs, triangular 4µs,
        // unexpanded 1µs. (The frozen clock records no real costs, so
        // these stay authoritative.)
        service.record_ladder_cost(0, 10_000);
        service.record_ladder_cost(1, 4_000);
        service.record_ladder_cost(2, 1_000);
        // Estimates are bucket upper bounds, so re-read them to pick
        // budgets on either side of each rung.
        let est: Vec<u64> = service
            .metrics_snapshot()
            .ladder_cost
            .iter()
            .map(|h| h.p99_nanos)
            .collect();
        let serve_with = |budget: u64| {
            service
                .serve("cable car", &[cable], Deadline::within(clock.now_nanos(), budget))
                .label()
        };
        assert_eq!(serve_with(est[0] + 1), "ok");
        assert_eq!(serve_with(est[0]), "ok", "exact fit still takes the rung");
        assert_eq!(serve_with(est[1]), "degraded:triangular");
        assert_eq!(serve_with(est[2]), "degraded:unexpanded");
        assert_eq!(serve_with(est[2] - 1), "shed:budget_exhausted");
        assert_eq!(serve_with(0), "deadline:queue", "zero budget is dead on arrival");
        let snap = service.metrics_snapshot();
        assert_eq!(snap.ladder_served, [2, 1, 1]);
        assert_eq!(snap.sheds, 1);
        assert_eq!(snap.deadline_exceeded, 1);
    }

    #[test]
    fn queue_and_rate_sheds_are_deterministic() {
        let (graph, index, cable) = world();
        let clock = Arc::new(ManualClock::new());
        let serve_cfg = ServeConfig {
            admission: AdmissionConfig {
                queue_capacity: 2,
                rate_per_sec: 10,
                burst: 2,
                ..AdmissionConfig::unlimited()
            },
            ..ServeConfig::default()
        };
        let service = QueryService::with_clock(
            &graph,
            &index,
            SqeConfig::default(),
            serve_cfg,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        // Two tokens, two queue slots: third admit sheds on the queue
        // bound (checked first).
        let a = service.admit().expect("invariant: first admit fits");
        let _b = service.admit().expect("invariant: second admit fits");
        assert_eq!(service.admit(), Err(ShedReason::QueueFull));
        // Starting one frees its slot, but the bucket is empty now.
        let out = service.serve_admitted(a, "cable car", &[cable], Deadline::NONE);
        assert_eq!(out.label(), "ok");
        assert_eq!(service.admit(), Err(ShedReason::RateLimited));
        // 100ms at 10/s refills one token.
        clock.advance(100_000_000);
        assert!(service.admit().is_ok());
        assert_eq!(service.metrics_snapshot().sheds, 2);
    }

    #[test]
    fn deadline_blows_at_expand_boundary_with_ticking_clock() {
        let (graph, index, cable) = world();
        let clock = Arc::new(ManualClock::new());
        struct Ticking(Arc<ManualClock>);
        impl Clock for Ticking {
            fn now_nanos(&self) -> u64 {
                self.0.advance(100);
                self.0.now_nanos()
            }
        }
        let service = QueryService::with_clock(
            &graph,
            &index,
            SqeConfig::default(),
            ServeConfig::default(),
            Arc::new(Ticking(Arc::clone(&clock))),
        );
        // Every clock read ticks 100ns. A 150ns budget survives the
        // queue check but is expired by the post-expand read; a 10µs
        // budget survives the whole pipeline.
        let t = service.admit().expect("invariant: unlimited admission");
        let out = service.serve_admitted(t, "cable car", &[cable], Deadline::within(clock.now_nanos(), 150));
        assert_eq!(out.label(), "deadline:expand");
        let t = service.admit().expect("invariant: unlimited admission");
        let out = service.serve_admitted(t, "cable car", &[cable], Deadline::within(clock.now_nanos(), 10_000));
        assert_eq!(out.label(), "ok");
        let snap = service.metrics_snapshot();
        assert_eq!(snap.deadline_exceeded, 1);
        // The blown attempt still recorded a full-rung cost observation.
        assert_eq!(snap.ladder_cost[0].count, 2);
    }

    #[test]
    fn serve_batch_outcomes_identical_across_worker_counts() {
        let (graph, index, cable) = world();
        let requests: Vec<ServeRequest> = (0..12)
            .map(|i| ServeRequest {
                text: "cable car".to_owned(),
                nodes: vec![cable],
                deadline: if i % 3 == 2 { Deadline::at(0) } else { Deadline::NONE },
            })
            .collect();
        let mut reference: Option<Vec<String>> = None;
        for workers in [1, 2, 8] {
            let serve_cfg = ServeConfig {
                workers,
                admission: AdmissionConfig {
                    queue_capacity: 5,
                    ..AdmissionConfig::unlimited()
                },
                ..ServeConfig::default()
            };
            let service = QueryService::new(&graph, &index, SqeConfig::default(), serve_cfg);
            let labels: Vec<String> =
                service.serve_batch(&requests).iter().map(|o| o.label()).collect();
            // NullClock: every deadline of 0 at now=0 has remaining 0.
            assert!(labels.iter().any(|l| l == "shed:queue_full"));
            assert!(labels.iter().any(|l| l == "deadline:queue"));
            assert!(labels.iter().any(|l| l == "ok"));
            match &reference {
                None => reference = Some(labels),
                Some(want) => assert_eq!(&labels, want, "workers={workers}"),
            }
        }
    }

    #[test]
    fn batch_pins_view_across_concurrent_seal() {
        // run_batch clones the view once: results match the pre-seal
        // corpus even if a seal lands between construction and the batch.
        let (graph, index, cable) = world();
        let service = QueryService::new(&graph, &index, SqeConfig::default(), ServeConfig::default());
        let qs = queries(cable);
        let want = service.run_batch(&qs, &MotifSet::triangular());
        service.add_document("d-late-0", "late funicular arrival").expect("fresh");
        // The searcher grabbed before the seal keeps serving the old corpus.
        let pinned = service.searcher();
        service.seal().expect("seals");
        assert_eq!(pinned.num_docs(), 4, "pinned view is immutable");
        assert_eq!(service.searcher().num_docs(), 5);
        let again = service.run_batch(&qs, &MotifSet::triangular());
        // Ranked lists may grow by the new doc but the old docs' relative
        // order is stable; spot-check the first query's top hit.
        let top_before = want[0].first().map(|h| h.doc);
        let top_after = again[0].first().map(|h| h.doc);
        assert_eq!(top_before, top_after, "top hit survives the seal");
    }
}
