/root/repo/target/debug/examples/quickstart-675ce939a681964c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-675ce939a681964c: examples/quickstart.rs

examples/quickstart.rs:
