//! The immutable knowledge-base graph.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::csr::{Csr, CsrShapeError};
use crate::ids::{ArticleId, CategoryId, Node};
use crate::stats::GraphStats;

/// A structural inconsistency found while shape-checking a deserialized
/// graph: one of the six adjacencies disagrees with the title arrays
/// about the id spaces. Checked on every decode (JSON and binary), so a
/// corrupted persisted graph is rejected with a typed error instead of
/// deferring to the debug-only auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(persist-types-derive-serde) — decode error, never persisted
pub struct GraphShapeError {
    /// Which adjacency is malformed (`article_links`, `memberships`, ...).
    pub csr: &'static str,
    /// The defect.
    pub error: CsrShapeError,
}

impl fmt::Display for GraphShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph adjacency `{}`: {}", self.csr, self.error)
    }
}

impl std::error::Error for GraphShapeError {}

/// Why [`KbGraph::from_json`] rejected a payload.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — decode error, never persisted
pub enum GraphDecodeError {
    /// The payload is not valid JSON for the graph schema.
    Json(serde_json::Error),
    /// The payload parsed but its sections are structurally inconsistent.
    Shape(GraphShapeError),
}

impl fmt::Display for GraphDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphDecodeError::Json(e) => write!(f, "graph JSON parse: {e}"),
            GraphDecodeError::Shape(e) => write!(f, "graph shape: {e}"),
        }
    }
}

impl std::error::Error for GraphDecodeError {}

impl From<GraphShapeError> for GraphDecodeError {
    fn from(e: GraphShapeError) -> Self {
        GraphDecodeError::Shape(e)
    }
}

/// An immutable knowledge-base graph in CSR form.
///
/// Construct one through [`crate::GraphBuilder`]. All adjacency queries
/// return sorted slices of raw `u32` indices in the appropriate id space
/// (article indices for article lists, category indices for category
/// lists); wrap them back into [`ArticleId`]/[`CategoryId`] as needed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KbGraph {
    article_titles: Vec<String>,
    category_titles: Vec<String>,
    /// article → article hyperlinks.
    article_links: Csr,
    /// Reverse of `article_links` (who links to me).
    article_links_rev: Csr,
    /// article → category membership.
    memberships: Csr,
    /// category → article (reverse membership).
    members: Csr,
    /// child category → parent category.
    subcats: Csr,
    /// parent category → child category.
    subcats_rev: Csr,
}

impl KbGraph {
    /// Assembles a graph from prebuilt parts. Intended for
    /// [`crate::GraphBuilder::build`]; kept `pub(crate)`-ish but exposed for
    /// serialization round-trips.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        article_titles: Vec<String>,
        category_titles: Vec<String>,
        article_links: Csr,
        article_links_rev: Csr,
        memberships: Csr,
        members: Csr,
        subcats: Csr,
        subcats_rev: Csr,
    ) -> Self {
        debug_assert_eq!(article_links.num_rows(), article_titles.len());
        debug_assert_eq!(memberships.num_rows(), article_titles.len());
        debug_assert_eq!(members.num_rows(), category_titles.len());
        debug_assert_eq!(subcats.num_rows(), category_titles.len());
        KbGraph {
            article_titles,
            category_titles,
            article_links,
            article_links_rev,
            memberships,
            members,
            subcats,
            subcats_rev,
        }
    }

    /// Number of articles.
    #[inline]
    pub fn num_articles(&self) -> usize {
        self.article_titles.len()
    }

    /// Number of categories.
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.category_titles.len()
    }

    /// Title of an article.
    #[inline]
    pub fn article_title(&self, a: ArticleId) -> &str {
        &self.article_titles[a.index()]
    }

    /// Title of a category.
    #[inline]
    pub fn category_title(&self, c: CategoryId) -> &str {
        &self.category_titles[c.index()]
    }

    /// All article ids.
    pub fn articles(&self) -> impl Iterator<Item = ArticleId> + '_ {
        (0..self.num_articles() as u32).map(ArticleId::new)
    }

    /// All category ids.
    pub fn categories(&self) -> impl Iterator<Item = CategoryId> + '_ {
        (0..self.num_categories() as u32).map(CategoryId::new)
    }

    /// Outgoing hyperlinks of `a` (sorted article indices).
    #[inline]
    pub fn out_links(&self, a: ArticleId) -> &[u32] {
        self.article_links.neighbors(a.raw())
    }

    /// Incoming hyperlinks of `a` (sorted article indices).
    #[inline]
    pub fn in_links(&self, a: ArticleId) -> &[u32] {
        self.article_links_rev.neighbors(a.raw())
    }

    /// Categories `a` belongs to (sorted category indices).
    #[inline]
    pub fn categories_of(&self, a: ArticleId) -> &[u32] {
        self.memberships.neighbors(a.raw())
    }

    /// Articles belonging to `c` (sorted article indices).
    #[inline]
    pub fn members_of(&self, c: CategoryId) -> &[u32] {
        self.members.neighbors(c.raw())
    }

    /// Parent categories of `c` (sorted category indices).
    #[inline]
    pub fn parents_of(&self, c: CategoryId) -> &[u32] {
        self.subcats.neighbors(c.raw())
    }

    /// Child categories of `c` (sorted category indices).
    #[inline]
    pub fn children_of(&self, c: CategoryId) -> &[u32] {
        self.subcats_rev.neighbors(c.raw())
    }

    /// True if `from` hyperlinks to `to`.
    #[inline]
    pub fn links_to(&self, from: ArticleId, to: ArticleId) -> bool {
        self.article_links.contains(from.raw(), to.raw())
    }

    /// True if the two articles link to each other ("doubly linked" in the
    /// paper's motif definitions).
    #[inline]
    pub fn doubly_linked(&self, a: ArticleId, b: ArticleId) -> bool {
        self.links_to(a, b) && self.links_to(b, a)
    }

    /// True if `a` belongs to category `c`.
    #[inline]
    pub fn belongs_to(&self, a: ArticleId, c: CategoryId) -> bool {
        self.memberships.contains(a.raw(), c.raw())
    }

    /// True if there is a category edge between `x` and `y` in either
    /// direction (sub-category or parent).
    #[inline]
    pub fn category_adjacent(&self, x: CategoryId, y: CategoryId) -> bool {
        self.subcats.contains(x.raw(), y.raw()) || self.subcats.contains(y.raw(), x.raw())
    }

    /// True if every category of `a` is also a category of `b`
    /// (`cats(b) ⊇ cats(a)`), the triangular motif's category condition.
    /// Returns `false` when `a` has no categories: an article outside the
    /// category system gives no structural evidence.
    pub fn categories_superset(&self, a: ArticleId, b: ArticleId) -> bool {
        let ca = self.categories_of(a);
        if ca.is_empty() {
            return false;
        }
        let cb = self.categories_of(b);
        if cb.len() < ca.len() {
            return false;
        }
        // Sorted-merge containment scan.
        let mut i = 0;
        for &c in cb {
            if i == ca.len() {
                break;
            }
            if c == ca[i] {
                i += 1;
            } else if c > ca[i] {
                return false;
            }
        }
        i == ca.len()
    }

    /// Articles that are doubly linked with `a` (computed by intersecting
    /// the sorted out- and in-link lists).
    pub fn mutual_links(&self, a: ArticleId) -> Vec<ArticleId> {
        let out = self.out_links(a);
        let inn = self.in_links(a);
        let mut res = Vec::with_capacity(out.len().min(inn.len()));
        let (mut i, mut j) = (0, 0);
        while i < out.len() && j < inn.len() {
            match out[i].cmp(&inn[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    res.push(ArticleId::new(out[i]));
                    i += 1;
                    j += 1;
                }
            }
        }
        res
    }

    /// Undirected mixed-graph neighbours of `node`, written into `out`
    /// (cleared first). Used by cycle enumeration, which per the paper
    /// treats any edge between two nodes — whatever its direction or type —
    /// as connecting them.
    pub fn undirected_neighbors(&self, node: Node, out: &mut Vec<Node>) {
        out.clear();
        match node {
            Node::Article(a) => {
                out.extend(
                    self.out_links(a)
                        .iter()
                        .map(|&x| Node::Article(ArticleId::new(x))),
                );
                out.extend(
                    self.in_links(a)
                        .iter()
                        .map(|&x| Node::Article(ArticleId::new(x))),
                );
                out.extend(
                    self.categories_of(a)
                        .iter()
                        .map(|&x| Node::Category(CategoryId::new(x))),
                );
            }
            Node::Category(c) => {
                out.extend(
                    self.members_of(c)
                        .iter()
                        .map(|&x| Node::Article(ArticleId::new(x))),
                );
                out.extend(
                    self.parents_of(c)
                        .iter()
                        .map(|&x| Node::Category(CategoryId::new(x))),
                );
                out.extend(
                    self.children_of(c)
                        .iter()
                        .map(|&x| Node::Category(CategoryId::new(x))),
                );
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Number of directed edges between `x` and `y` in the mixed graph
    /// (0, 1 or 2; membership counts once, as does each hyperlink or
    /// category-link direction). Drives the paper's "density of extra
    /// edges" statistic (Figure 2c), where two consecutive cycle nodes can
    /// be connected by up to two edges.
    pub fn edge_multiplicity(&self, x: Node, y: Node) -> u32 {
        match (x, y) {
            (Node::Article(a), Node::Article(b)) => {
                self.links_to(a, b) as u32 + self.links_to(b, a) as u32
            }
            (Node::Article(a), Node::Category(c)) | (Node::Category(c), Node::Article(a)) => {
                // Membership is a single undirected association in the
                // Wikipedia model (article page lists its categories).
                self.belongs_to(a, c) as u32
            }
            (Node::Category(c), Node::Category(d)) => {
                self.subcats.contains(c.raw(), d.raw()) as u32
                    + self.subcats.contains(d.raw(), c.raw()) as u32
            }
        }
    }

    /// True if the two nodes are connected by at least one edge.
    #[inline]
    pub fn connected(&self, x: Node, y: Node) -> bool {
        self.edge_multiplicity(x, y) > 0
    }

    /// Access to the raw article-link CSR (for stats and benches).
    pub fn article_links(&self) -> &Csr {
        &self.article_links
    }

    /// Access to the raw membership CSR.
    pub fn memberships(&self) -> &Csr {
        &self.memberships
    }

    /// Access to the raw category-hierarchy CSR (child → parent).
    pub fn subcategories(&self) -> &Csr {
        &self.subcats
    }

    /// Access to the raw reverse article-link CSR (who links to me).
    pub fn article_links_rev(&self) -> &Csr {
        &self.article_links_rev
    }

    /// Access to the raw reverse-membership CSR (category → article).
    pub fn members(&self) -> &Csr {
        &self.members
    }

    /// Access to the raw reverse category-hierarchy CSR (parent → child).
    pub fn subcats_rev(&self) -> &Csr {
        &self.subcats_rev
    }

    /// The full article-title array (index = dense article id).
    #[inline]
    pub fn article_titles(&self) -> &[String] {
        &self.article_titles
    }

    /// The full category-title array (index = dense category id).
    #[inline]
    pub fn category_titles(&self) -> &[String] {
        &self.category_titles
    }

    /// Shape-checks every adjacency against the title arrays: correct row
    /// counts, monotonic offsets terminating at the edge counts, in-bounds
    /// targets. This is the always-on decode gate; the deeper semantic
    /// audit ([`crate::audit::GraphAudit`] under feature `validate`) also
    /// re-derives sortedness, reciprocity and DAG-ness.
    pub fn validate_shape(&self) -> Result<(), GraphShapeError> {
        let arts = self.article_titles.len();
        let cats = self.category_titles.len();
        let specs: [(&'static str, &Csr, usize, usize); 6] = [
            ("article_links", &self.article_links, arts, arts),
            ("article_links_rev", &self.article_links_rev, arts, arts),
            ("memberships", &self.memberships, arts, cats),
            ("members", &self.members, cats, arts),
            ("subcats", &self.subcats, cats, cats),
            ("subcats_rev", &self.subcats_rev, cats, cats),
        ];
        for (csr, adj, rows, bound) in specs {
            adj.validate_shape(rows, bound)
                .map_err(|error| GraphShapeError { csr, error })?;
        }
        Ok(())
    }

    /// Whole-graph statistics (the counts the paper reports in Section 3).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(self)
    }

    /// Serializes the graph to JSON (persistence / interchange).
    /// Serialization failures are propagated — persistence must never
    /// panic the serving process.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a graph from [`KbGraph::to_json`] output. The decoded
    /// structure is shape-checked before it is returned, so a payload
    /// whose sections are inconsistent (truncated arrays, out-of-range
    /// targets, disagreeing counts) yields a typed error here instead of
    /// panics or wrong answers downstream.
    pub fn from_json(json: &str) -> Result<KbGraph, GraphDecodeError> {
        let graph: KbGraph = serde_json::from_str(json).map_err(GraphDecodeError::Json)?;
        graph.validate_shape()?;
        Ok(graph)
    }

    /// Finds an article by exact title (linear scan; intended for tests and
    /// small examples — production lookup goes through the entity linker's
    /// dictionary).
    pub fn find_article_by_title(&self, title: &str) -> Option<ArticleId> {
        self.article_titles
            .iter()
            .position(|t| t == title)
            .map(|i| ArticleId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// cable-car ↔ funicular, both in "rail transport"; tram links to
    /// cable-car one-way.
    fn toy() -> (KbGraph, ArticleId, ArticleId, ArticleId, CategoryId) {
        let mut b = GraphBuilder::new();
        let cable = b.add_article("cable car");
        let funi = b.add_article("funicular");
        let tram = b.add_article("tram");
        let rail = b.add_category("rail transport");
        b.add_mutual_link(cable, funi);
        b.add_article_link(tram, cable);
        b.add_membership(cable, rail);
        b.add_membership(funi, rail);
        (b.build(), cable, funi, tram, rail)
    }

    #[test]
    fn double_link_detection() {
        let (g, cable, funi, tram, _) = toy();
        assert!(g.doubly_linked(cable, funi));
        assert!(!g.doubly_linked(tram, cable));
    }

    #[test]
    fn mutual_links_intersection() {
        let (g, cable, funi, _, _) = toy();
        assert_eq!(g.mutual_links(cable), vec![funi]);
        assert_eq!(g.mutual_links(funi), vec![cable]);
    }

    #[test]
    fn categories_superset_holds_for_equal_sets() {
        let (g, cable, funi, tram, _) = toy();
        assert!(g.categories_superset(cable, funi));
        assert!(g.categories_superset(funi, cable));
        // tram has no categories → no structural evidence.
        assert!(!g.categories_superset(tram, cable));
    }

    #[test]
    fn categories_superset_strict_subset() {
        let mut b = GraphBuilder::new();
        let a = b.add_article("a");
        let x = b.add_article("x");
        let c1 = b.add_category("c1");
        let c2 = b.add_category("c2");
        b.add_membership(a, c1);
        b.add_membership(x, c1);
        b.add_membership(x, c2);
        let g = b.build();
        // cats(x) = {c1,c2} ⊇ cats(a) = {c1}: superset holds one way only.
        assert!(g.categories_superset(a, x));
        assert!(!g.categories_superset(x, a));
        let _ = c2;
    }

    #[test]
    fn undirected_neighbors_article() {
        let (g, cable, funi, tram, rail) = toy();
        let mut out = Vec::new();
        g.undirected_neighbors(Node::Article(cable), &mut out);
        // funicular (mutual), tram (in-link), rail (category).
        assert!(out.contains(&Node::Article(funi)));
        assert!(out.contains(&Node::Article(tram)));
        assert!(out.contains(&Node::Category(rail)));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn undirected_neighbors_category() {
        let (g, cable, funi, _, rail) = toy();
        let mut out = Vec::new();
        g.undirected_neighbors(Node::Category(rail), &mut out);
        assert!(out.contains(&Node::Article(cable)));
        assert!(out.contains(&Node::Article(funi)));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn edge_multiplicity_counts_directions() {
        let (g, cable, funi, tram, rail) = toy();
        assert_eq!(
            g.edge_multiplicity(Node::Article(cable), Node::Article(funi)),
            2
        );
        assert_eq!(
            g.edge_multiplicity(Node::Article(tram), Node::Article(cable)),
            1
        );
        assert_eq!(
            g.edge_multiplicity(Node::Article(cable), Node::Category(rail)),
            1
        );
        assert_eq!(
            g.edge_multiplicity(Node::Article(tram), Node::Category(rail)),
            0
        );
    }

    #[test]
    fn category_adjacency_either_direction() {
        let mut b = GraphBuilder::new();
        let child = b.add_category("funiculars");
        let parent = b.add_category("rail transport");
        b.add_subcategory(child, parent);
        let g = b.build();
        assert!(g.category_adjacent(child, parent));
        assert!(g.category_adjacent(parent, child));
        assert_eq!(g.parents_of(child), &[parent.raw()]);
        assert_eq!(g.children_of(parent), &[child.raw()]);
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let (g, cable, funi, tram, rail) = toy();
        let restored = KbGraph::from_json(&g.to_json().unwrap()).unwrap();
        assert_eq!(restored.num_articles(), g.num_articles());
        assert_eq!(restored.num_categories(), g.num_categories());
        assert!(restored.doubly_linked(cable, funi));
        assert!(!restored.doubly_linked(tram, cable));
        assert!(restored.belongs_to(cable, rail));
        assert_eq!(restored.stats(), g.stats());
    }

    #[test]
    fn from_json_rejects_inconsistent_sections() {
        let (g, ..) = toy();
        // Rebuild with a membership CSR whose terminal offset lies about
        // the edge count: structurally inconsistent, semantically silent.
        let bad_members = Csr::from_raw_parts(
            {
                let mut o = g.memberships().offsets().to_vec();
                if let Some(last) = o.last_mut() {
                    *last += 1;
                }
                o
            },
            g.memberships().targets().to_vec(),
        );
        let bad = KbGraph::from_parts(
            g.article_titles().to_vec(),
            g.category_titles().to_vec(),
            g.article_links().clone(),
            g.article_links_rev().clone(),
            bad_members,
            g.members().clone(),
            g.subcategories().clone(),
            g.subcats_rev().clone(),
        );
        assert!(bad.validate_shape().is_err());
        let err = KbGraph::from_json(&bad.to_json().unwrap()).unwrap_err();
        assert!(matches!(err, GraphDecodeError::Shape(_)), "{err}");
        // Non-JSON input is the other typed failure mode.
        assert!(matches!(
            KbGraph::from_json("not json").unwrap_err(),
            GraphDecodeError::Json(_)
        ));
    }

    #[test]
    fn find_article_by_title_works() {
        let (g, cable, _, _, _) = toy();
        assert_eq!(g.find_article_by_title("cable car"), Some(cable));
        assert_eq!(g.find_article_by_title("nope"), None);
    }
}
