// Fixture: raw mutation entry points with no structural audit anywhere
// in the mutating functions.

pub fn patch(csr: &mut Csr) {
    let targets = csr.raw_mut();
    targets.push(0);
}

pub fn rebuild(offsets: Vec<u32>, targets: Vec<u32>) -> Csr {
    Csr::from_raw_parts(offsets, targets)
}
