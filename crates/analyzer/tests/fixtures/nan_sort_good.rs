// Fixture: the fixed version of nan_sort_bad.rs — comparators use the
// shared total-order helpers. Also shows that `partial_cmp` outside a
// sort-family call span (the trait impl) is fine.

use std::cmp::Ordering;

pub fn rank(mut hits: Vec<(f64, u32)>) -> Vec<(f64, u32)> {
    hits.sort_by(|a, b| scorecmp::by_score_desc_then_id(a.0, b.0, a.1, b.1));
    hits
}

pub fn best(hits: &[(f64, u32)]) -> Option<&(f64, u32)> {
    hits.iter().max_by(|a, b| a.0.total_cmp(&b.0))
}

pub struct Score(pub f64);

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}
