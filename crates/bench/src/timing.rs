//! Table 4: query-graph construction and total expansion times.

use std::time::Instant;

use crate::context::ExperimentContext;

/// Timing of one dataset.
#[derive(Debug, Clone)]
pub struct DatasetTiming {
    /// Dataset name.
    pub dataset: String,
    /// Milliseconds to build all query graphs with the triangular motif.
    pub sqe_t_ms: f64,
    /// Milliseconds with both motifs.
    pub sqe_ts_ms: f64,
    /// Milliseconds with the square motif.
    pub sqe_s_ms: f64,
    /// Milliseconds for the whole SQE_C pipeline (expansion + retrieval +
    /// combination) over all queries.
    pub total_ms: f64,
}

/// Measures Table 4 for one dataset.
pub fn measure_dataset(ctx: &ExperimentContext, dataset: &str) -> DatasetTiming {
    let r = ctx.runner(dataset);
    let pipeline = r.pipeline();
    let queries = &r.dataset().queries;
    let time_config = |tri: bool, sq: bool| -> f64 {
        let start = Instant::now();
        for q in queries {
            let nodes = r.manual_nodes(q);
            let qg = pipeline.build_query_graph(&nodes, tri, sq);
            std::hint::black_box(qg.num_expansions());
        }
        start.elapsed().as_secs_f64() * 1e3
    };
    let sqe_t_ms = time_config(true, false);
    let sqe_ts_ms = time_config(true, true);
    let sqe_s_ms = time_config(false, true);
    let start = Instant::now();
    for q in queries {
        let nodes = r.manual_nodes(q);
        std::hint::black_box(pipeline.rank_sqe_c(&q.text, &nodes).len());
    }
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    DatasetTiming {
        dataset: dataset.to_owned(),
        sqe_t_ms,
        sqe_ts_ms,
        sqe_s_ms,
        total_ms,
    }
}

/// Formats Table 4 over the three datasets.
pub fn table4(ctx: &ExperimentContext) -> String {
    let mut s = String::from("=== Table 4: execution times (ms, whole query set) ===\n");
    s.push_str(&format!(
        "{:<12}{:>12}{:>12}{:>12}{:>14}\n",
        "", "SQE_T", "SQE_T&S", "SQE_S", "Total Time"
    ));
    for d in ["imageclef", "chic2012", "chic2013"] {
        let t = measure_dataset(ctx, d);
        s.push_str(&format!(
            "{:<12}{:>12.2}{:>12.2}{:>12.2}{:>14.2}\n",
            t.dataset, t.sqe_t_ms, t.sqe_ts_ms, t.sqe_s_ms, t.total_ms
        ));
    }
    s.push_str("(paper, ms: ImageCLEF 47/94/52, CHiC12 74/178/106, CHiC13 52/120/69;\n");
    s.push_str(" totals 1373/8908/5361 — absolute values depend on hardware and scale,\n");
    s.push_str(" the shape to check: T < S < T&S and expansion ≪ total)\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_runs_and_orders() {
        let ctx = ExperimentContext::small();
        let t = measure_dataset(&ctx, "imageclef");
        assert!(t.sqe_t_ms >= 0.0);
        assert!(t.total_ms > 0.0);
        // Building both motifs costs at least as much as the cheaper one
        // (allow generous slack for timer noise on tiny inputs).
        assert!(t.sqe_ts_ms * 20.0 >= t.sqe_t_ms);
    }
}
