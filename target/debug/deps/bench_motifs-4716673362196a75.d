/root/repo/target/debug/deps/bench_motifs-4716673362196a75.d: crates/bench/benches/bench_motifs.rs

/root/repo/target/debug/deps/bench_motifs-4716673362196a75: crates/bench/benches/bench_motifs.rs

crates/bench/benches/bench_motifs.rs:
