//! Immutable index segments and their deterministic merge.
//!
//! A [`Segment`] wraps one sealed [`Index`] covering a contiguous range of
//! the global document space. Segments are never mutated after sealing:
//! live ingestion (`ingest`) appends new segments, the [`crate::Searcher`]
//! merges statistics across them at query time, and [`Segment::merge`]
//! compacts adjacent segments back into one. Because segments cover
//! contiguous, in-order document ranges, merging is pure concatenation —
//! the merged index is byte-for-byte the index a monolithic
//! [`crate::IndexBuilder`] would have produced over the same document
//! stream, which is what keeps run files identical across any partition.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::index::{DocId, Index, IndexShapeError, TermId, TermPostings};

/// One immutable, individually auditable slice of the corpus.
#[derive(Debug)]
// lint:allow(persist-types-derive-serde) — persisted via sqe-store sections
pub struct Segment {
    id: u64,
    index: Index,
}

impl Segment {
    /// Wraps a sealed index as a segment. `id` is the monotonically
    /// increasing sequence number assigned at seal time; it orders
    /// segments deterministically and names snapshot sections.
    pub fn new(id: u64, index: Index) -> Segment {
        Segment { id, index }
    }

    /// The seal-time sequence number.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The segment's local index (doc and term ids are segment-local).
    pub fn index(&self) -> &Index {
        &self.index
    }

    /// Number of documents in this segment.
    pub fn num_docs(&self) -> usize {
        self.index.num_docs()
    }

    /// Total analyzed tokens in this segment.
    pub fn collection_len(&self) -> u64 {
        self.index.collection_len()
    }

    /// Concatenates adjacent segments (ascending, contiguous global doc
    /// ranges, in order) into one segment with sequence number `id`.
    ///
    /// Local term ids of the merged index are assigned by first occurrence
    /// across the inputs in order — exactly the order a monolithic builder
    /// assigns them when the same documents are added in the same
    /// sequence — so every derived structure (postings, forward index,
    /// collection statistics) reproduces the monolithic index.
    pub fn merge(id: u64, segments: &[Arc<Segment>]) -> Result<Segment, IndexShapeError> {
        let analyzer = segments
            .first()
            .expect("invariant: merge callers pass at least one segment")
            .index
            .analyzer()
            .clone();
        // Pass 1: the merged term table, first-occurrence ordered, with a
        // local→merged id remap per input segment.
        let mut dict: FxHashMap<&str, u32> = FxHashMap::default();
        let mut terms: Vec<String> = Vec::new();
        let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(segments.len());
        for seg in segments {
            let idx = &seg.index;
            let mut remap = Vec::with_capacity(idx.num_terms());
            for token in idx.terms() {
                let next = u32::try_from(terms.len())
                    .expect("invariant: merged term count fits in u32 ids");
                let g = *dict.entry(token.as_str()).or_insert(next);
                if g == next && terms.len() == next as usize {
                    terms.push(token.clone());
                }
                remap.push(g);
            }
            remaps.push(remap);
        }
        // Pass 2: concatenate every per-document structure with rebased
        // doc ids, and every per-term structure through the remap.
        let num_terms = terms.len();
        let mut docs: Vec<Vec<u32>> = vec![Vec::new(); num_terms];
        let mut tfs: Vec<Vec<u32>> = vec![Vec::new(); num_terms];
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); num_terms];
        let mut pos_offsets: Vec<Vec<u32>> = vec![vec![0]; num_terms];
        let mut coll_tf = vec![0u64; num_terms];
        let mut external_ids: Vec<String> = Vec::new();
        let mut doc_lens: Vec<u32> = Vec::new();
        let mut collection_len = 0u64;
        let mut fwd_offsets: Vec<u32> = vec![0];
        let mut fwd_terms: Vec<u32> = Vec::new();
        let mut fwd_tfs: Vec<u32> = Vec::new();
        let mut fwd_doc: Vec<(u32, u32)> = Vec::new();
        let mut base = 0u32;
        for (seg, remap) in segments.iter().zip(&remaps) {
            let idx = &seg.index;
            for (local, &g) in remap.iter().enumerate() {
                let p = idx.postings(TermId(
                    u32::try_from(local).expect("invariant: term count fits in u32 ids"),
                ));
                let g = g as usize;
                docs[g].extend(p.docs().iter().map(|&d| d + base));
                tfs[g].extend_from_slice(p.tfs());
                positions[g].extend_from_slice(p.positions_flat());
                let rebase = pos_offsets[g]
                    .last()
                    .copied()
                    .expect("invariant: pos_offsets starts with a 0 sentinel");
                pos_offsets[g].extend(p.pos_offsets().iter().skip(1).map(|&o| o + rebase));
                coll_tf[g] += idx.collection_tf(TermId(
                    u32::try_from(local).expect("invariant: term count fits in u32 ids"),
                ));
            }
            external_ids.extend(idx.external_ids().iter().cloned());
            doc_lens.extend_from_slice(idx.doc_lens());
            collection_len += idx.collection_len();
            // Forward lists stay per-document but must be re-sorted by the
            // *merged* term id (local first-occurrence order differs).
            for d in 0..idx.num_docs() {
                fwd_doc.clear();
                fwd_doc.extend(
                    idx.doc_terms(DocId(
                        u32::try_from(d).expect("invariant: doc count fits in u32 ids"),
                    ))
                    .map(|(t, f)| (remap[t.index()], f)),
                );
                fwd_doc.sort_unstable();
                fwd_terms.extend(fwd_doc.iter().map(|&(t, _)| t));
                fwd_tfs.extend(fwd_doc.iter().map(|&(_, f)| f));
                fwd_offsets.push(
                    u32::try_from(fwd_terms.len())
                        .expect("invariant: forward index length fits in u32"),
                );
            }
            base += u32::try_from(idx.num_docs()).expect("invariant: doc count fits in u32 ids");
        }
        let postings: Vec<TermPostings> = docs
            .into_iter()
            .zip(tfs)
            .zip(pos_offsets)
            .zip(positions)
            .map(|(((d, t), o), p)| TermPostings::from_raw_parts(d, t, o, p))
            .collect();
        let index = Index::from_raw_parts(
            analyzer,
            terms,
            postings,
            external_ids,
            doc_lens,
            collection_len,
            coll_tf,
            fwd_offsets,
            fwd_terms,
            fwd_tfs,
        )?;
        #[cfg(all(debug_assertions, feature = "validate"))]
        {
            let audit = crate::audit::IndexAudit::run(&index);
            debug_assert!(
                audit.is_clean(),
                "segment merge produced a corrupt index: {audit:?}"
            );
        }
        Ok(Segment { id, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::index::IndexBuilder;

    const DOCS: [(&str, &str); 5] = [
        ("d0", "cable car climbs the hill"),
        ("d1", "cable car cable car"),
        ("d2", "the hill of graffiti"),
        ("d3", "funicular railway on the hill"),
        ("d4", "graffiti covers the cable"),
    ];

    fn monolithic() -> Index {
        let mut b = IndexBuilder::new(Analyzer::plain());
        for (id, text) in DOCS {
            b.add_document(id, text).expect("unique test ids");
        }
        b.build()
    }

    fn segment_of(id: u64, docs: &[(&str, &str)]) -> Arc<Segment> {
        let mut b = IndexBuilder::new(Analyzer::plain());
        for (ext, text) in docs {
            b.add_document(ext, text).expect("unique test ids");
        }
        Arc::new(Segment::new(id, b.build()))
    }

    #[test]
    fn merge_of_contiguous_partition_equals_monolithic() {
        let mono = monolithic();
        for split in 1..DOCS.len() {
            let merged = Segment::merge(
                7,
                &[segment_of(0, &DOCS[..split]), segment_of(1, &DOCS[split..])],
            )
            .expect("merge succeeds");
            let m = merged.index();
            assert_eq!(m.to_json().expect("json"), mono.to_json().expect("json"),
                "split at {split} must reproduce the monolithic index exactly");
        }
    }

    #[test]
    fn merge_of_three_way_partition_equals_monolithic() {
        let mono = monolithic();
        let merged = Segment::merge(
            3,
            &[
                segment_of(0, &DOCS[..2]),
                segment_of(1, &DOCS[2..3]),
                segment_of(2, &DOCS[3..]),
            ],
        )
        .expect("merge succeeds");
        assert_eq!(
            merged.index().to_json().expect("json"),
            mono.to_json().expect("json")
        );
        assert_eq!(merged.id(), 3);
    }

    #[test]
    fn merge_single_segment_is_identity() {
        let merged = Segment::merge(1, &[segment_of(0, &DOCS)]).expect("merge succeeds");
        assert_eq!(
            merged.index().to_json().expect("json"),
            monolithic().to_json().expect("json")
        );
    }

    #[test]
    fn merged_segment_passes_audit() {
        let merged = Segment::merge(
            2,
            &[segment_of(0, &DOCS[..3]), segment_of(1, &DOCS[3..])],
        )
        .expect("merge succeeds");
        assert!(crate::audit::IndexAudit::run(merged.index()).is_clean());
    }
}
