/root/repo/target/debug/deps/proptests-9edefff55ba29fe7.d: crates/ireval/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9edefff55ba29fe7: crates/ireval/tests/proptests.rs

crates/ireval/tests/proptests.rs:
